//! Failure-mode integration tests: partitions, downtime, and message loss
//! against the quorum store (the paper evaluates fault-free, but a
//! credible substrate must degrade cleanly).
//!
//! Flakiness audit: every duration here is **virtual** (`SimTime` /
//! `SimDuration` on the deterministic engine) — no wall-clock sleeps or
//! timeouts, so host scheduling cannot change outcomes. Randomized
//! fault coverage beyond these fixed scenarios lives in
//! `tests/oracle_fleet.rs`.

use icg::quorumstore::{Cluster, Key, ReplicaConfig, SystemConfig, Value, WorkloadClient};
use icg::simnet::{EuUsSites, Faults, SimDuration, SimTime, Topology};
use icg::ycsb::{Distribution, Workload};

fn cfg_fast_timeout() -> ReplicaConfig {
    ReplicaConfig {
        op_timeout: SimDuration::from_millis(500),
        ..ReplicaConfig::default()
    }
}

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

fn build(seed: u64) -> (Cluster, EuUsSites) {
    let topo = Topology::ec2_frk_irl_vrg();
    let sites = EuUsSites::resolve(&topo);
    let mut cluster = Cluster::build(topo, &["FRK", "IRL", "VRG"], cfg_fast_timeout(), seed);
    cluster.preload((0..32).map(|i| (Key::plain(i), Value::Opaque(100))));
    (cluster, sites)
}

#[test]
fn quorum_reads_fail_cleanly_when_peers_are_partitioned() {
    let (mut cluster, sites) = build(11);
    // FRK cannot reach either peer: R=2 reads cannot gather a quorum.
    let faults = Faults::none()
        .with_partition(sites.frk, sites.irl, at(0), at(10_000))
        .with_partition(sites.frk, sites.vrg, at(0), at(10_000));
    cluster.engine.set_faults(faults);
    let workload = Workload::c(Distribution::Zipfian, 32);
    let client = WorkloadClient::new(
        cluster.replicas[0],
        SystemConfig::baseline(2),
        &workload,
        2,
        7,
        at(0),
        at(8_000),
    );
    cluster.add_client(sites.frk, client);
    cluster.engine.run_until(at(8_000));
    let id = cluster.clients[0];
    let m = &cluster.engine.node_as::<WorkloadClient>(id).metrics;
    assert_eq!(m.reads, 0, "no quorum read may succeed under the partition");
    assert!(
        m.failed >= 2,
        "operations must fail by timeout, got {}",
        m.failed
    );
}

#[test]
fn weak_reads_survive_the_same_partition() {
    let (mut cluster, sites) = build(12);
    let faults = Faults::none()
        .with_partition(sites.frk, sites.irl, at(0), at(10_000))
        .with_partition(sites.frk, sites.vrg, at(0), at(10_000));
    cluster.engine.set_faults(faults);
    let workload = Workload::c(Distribution::Zipfian, 32);
    let client = WorkloadClient::new(
        cluster.replicas[0],
        SystemConfig::baseline(1),
        &workload,
        2,
        7,
        at(0),
        at(8_000),
    );
    cluster.add_client(sites.frk, client);
    cluster.engine.run_until(at(8_000));
    let id = cluster.clients[0];
    let m = &cluster.engine.node_as::<WorkloadClient>(id).metrics;
    // R=1 reads only involve the coordinator: availability under partition
    // is exactly the weak-consistency selling point.
    assert!(
        m.reads > 100,
        "weak reads should keep flowing, got {}",
        m.reads
    );
    assert_eq!(m.failed, 0);
}

#[test]
fn operations_recover_after_partition_heals() {
    let (mut cluster, sites) = build(13);
    let faults = Faults::none()
        .with_partition(sites.frk, sites.irl, at(0), at(2_000))
        .with_partition(sites.frk, sites.vrg, at(0), at(2_000));
    cluster.engine.set_faults(faults);
    let workload = Workload::c(Distribution::Zipfian, 32);
    let client = WorkloadClient::new(
        cluster.replicas[0],
        SystemConfig::correctable(2),
        &workload,
        2,
        7,
        at(2_500), // measure only after healing
        at(8_000),
    );
    cluster.add_client(sites.frk, client);
    cluster.engine.run_until(at(8_000));
    let id = cluster.clients[0];
    let m = &cluster.engine.node_as::<WorkloadClient>(id).metrics;
    assert!(
        m.reads > 50,
        "ICG reads must flow again after the partition heals, got {}",
        m.reads
    );
}

#[test]
fn replica_downtime_fails_quorums_but_not_weak_reads() {
    let (mut cluster, sites) = build(14);
    // Both non-coordinator replicas down for the whole run.
    let faults = Faults::none()
        .with_downtime(cluster.replicas[1], at(0), at(20_000))
        .with_downtime(cluster.replicas[2], at(0), at(20_000));
    cluster.engine.set_faults(faults);
    let workload = Workload::c(Distribution::Zipfian, 32);
    let strong = WorkloadClient::new(
        cluster.replicas[0],
        SystemConfig::baseline(3),
        &workload,
        1,
        3,
        at(0),
        at(6_000),
    );
    cluster.add_client(sites.irl, strong);
    let weak = WorkloadClient::new(
        cluster.replicas[0],
        SystemConfig::baseline(1),
        &workload,
        1,
        4,
        at(0),
        at(6_000),
    );
    cluster.add_client(sites.irl, weak);
    cluster.engine.run_until(at(6_000));
    let strong_id = cluster.clients[0];
    let weak_id = cluster.clients[1];
    let ms = cluster
        .engine
        .node_as::<WorkloadClient>(strong_id)
        .metrics
        .clone();
    let mw = &cluster.engine.node_as::<WorkloadClient>(weak_id).metrics;
    assert_eq!(ms.reads, 0);
    assert!(ms.failed > 0);
    assert!(mw.reads > 50);
}

#[test]
fn random_message_loss_degrades_throughput_but_not_correctness() {
    let (mut cluster, sites) = build(15);
    cluster
        .engine
        .set_faults(Faults::none().with_drop_probability(0.05));
    let workload = Workload::a(Distribution::Zipfian, 32);
    let client = WorkloadClient::new(
        cluster.replicas[0],
        SystemConfig::correctable(2),
        &workload,
        4,
        9,
        at(0),
        at(10_000),
    );
    cluster.add_client(sites.irl, client);
    cluster.engine.run_until(at(12_000));
    let id = cluster.clients[0];
    let m = &cluster.engine.node_as::<WorkloadClient>(id).metrics;
    // Some operations time out, the rest complete; nothing hangs forever.
    assert!(
        m.completed() > 100,
        "progress despite loss, got {}",
        m.completed()
    );
    assert!(m.failed > 0, "5% loss must surface some timeouts");
    assert!(cluster.engine.dropped_messages() > 0);
}
