//! Integration tests of the multi-view (3+ levels) bindings: the news
//! reader's three levels and the blockchain's six confirmation depths
//! (§4.5 — "Correctables, however, support arbitrarily many views. …
//! this does not add any complexity to the interface").
//!
//! Flakiness audit: all timing below is virtual (`SimDuration` on the
//! deterministic engine); the latency assertions compare virtual
//! timestamps and are reproducible bit-for-bit per seed.

use icg::blockchain::{conf_level, SimChain, FINAL_DEPTH};
use icg::causalstore::{CacheOp, SimCausal};
use icg::correctables::{Client, ConsistencyLevel, LevelSelection, State};
use icg::simnet::SimDuration;

#[test]
fn six_confirmation_views_arrive_in_strictly_increasing_strength() {
    let chain = SimChain::ec2(SimDuration::from_secs(20), "IRL", 17);
    let client = Client::new(chain.binding());
    let c = client.invoke(777u64);
    chain.run_for(SimDuration::from_secs(3600));
    assert_eq!(c.state(), State::Final);
    let mut levels: Vec<ConsistencyLevel> = c.preliminary_views().iter().map(|v| v.level).collect();
    levels.push(c.final_view().unwrap().level);
    for w in levels.windows(2) {
        assert!(
            w[0] < w[1],
            "levels must strengthen monotonically: {levels:?}"
        );
    }
    assert_eq!(*levels.last().unwrap(), conf_level(FINAL_DEPTH));
}

#[test]
fn subset_selection_works_on_multi_level_bindings() {
    // Ask the blockchain binding for only {conf-2, conf-6}: one
    // preliminary, one final, nothing else.
    let chain = SimChain::ec2(SimDuration::from_secs(20), "IRL", 18);
    let client = Client::new(chain.binding());
    let c = client.invoke_with(
        888u64,
        &LevelSelection::only(&[conf_level(2), conf_level(FINAL_DEPTH)]),
    );
    chain.run_for(SimDuration::from_secs(3600));
    assert_eq!(c.state(), State::Final);
    // The binding delivers every depth, but the upcall closes at the
    // strongest requested level; intermediate deliveries below conf-6
    // surface as updates. What matters: the final is conf-6.
    assert_eq!(c.final_view().unwrap().level, conf_level(FINAL_DEPTH));
}

#[test]
fn blockchain_weak_views_are_genuinely_revocable() {
    // Run two independent network seeds; confirmation *times* differ but
    // the view structure is identical — and a depth-1 view always
    // precedes depth-6 by several blocks' worth of virtual time.
    for seed in [3u64, 4] {
        let chain = SimChain::ec2(SimDuration::from_secs(20), "IRL", seed);
        let client = Client::new(chain.binding());
        let _c = client.invoke(1_000 + seed);
        chain.run_for(SimDuration::from_secs(3600));
        let t = &chain.timelines()[0];
        let first = t.confirmations_ms.first().unwrap().1;
        let last = t.confirmations_ms.last().unwrap().1;
        assert!(
            last - first > 30_000.0,
            "finality must lag the first view by minutes: {first} .. {last}"
        );
    }
}

#[test]
fn news_reader_views_strictly_refine_freshness() {
    let store = SimCausal::ec2("VRG", "IRL", 21);
    store.seed("news:latest", 1, vec![1]);
    // Two publications land at the primary; the nearer backup will have
    // caught up with the first but not the second.
    store.publish("news:latest", vec![1, 2]);
    store.advance(SimDuration::from_millis(30));
    store.publish("news:latest", vec![1, 2, 3]);
    store.advance(SimDuration::from_millis(5));
    let client = Client::new(store.binding());
    let c = client.invoke(CacheOp::Get("news:latest".into()));
    store.settle();
    let views = c.preliminary_views();
    let revs: Vec<u64> = views
        .iter()
        .map(|v| v.value.as_ref().map(|i| i.rev).unwrap_or(0))
        .chain(c.final_view().map(|v| v.value.unwrap().rev))
        .collect();
    // cache rev 1 (seeded) ≤ causal rev 2 (first publication) ≤ strong
    // rev 3 (both publications).
    assert_eq!(revs.len(), 3);
    assert!(revs.windows(2).all(|w| w[0] <= w[1]), "revs {revs:?}");
    assert_eq!(revs[2], 3, "the final view must be the freshest");
}
