//! The oracle fleet: a fixed-seed matrix of fault-schedule explorer
//! runs over every simulated stack, as tier-1 tests.
//!
//! Each test is one `(stack, seed)` exploration: a seed-derived fault
//! schedule (partitions, downtime, message loss), a concurrent client
//! workload, and all three checkers — monotonicity, convergence,
//! linearizability — over the recorded history. A failure panics with
//! the shrunk, reproducible `(seed, schedule)` pair.
//!
//! The `#[ignore]`d soak test at the bottom widens the seed range; CI's
//! `oracle-soak` job runs it on schedule/manual trigger.

use icg::oracle::{explore, ExplorerConfig, StackKind};

fn run(stack: StackKind, seed: u64) {
    let cfg = ExplorerConfig::default();
    match explore(stack, seed, &cfg) {
        Ok(summary) => {
            assert!(
                summary.invocations > 0 && summary.lin_entries > 0,
                "vacuous run: {summary:?}"
            );
        }
        Err(report) => panic!("{report}"),
    }
}

macro_rules! fleet {
    ($($name:ident: $stack:expr, $seed:expr;)*) => {
        $(
            #[test]
            fn $name() {
                run($stack, $seed);
            }
        )*
    };
}

// 8 seeds × 4 stacks. The store alternates CC and *CC so both the
// plain final reply and the confirmation path stay covered.
fleet! {
    store_seed0: StackKind::Store { confirm: false }, 0;
    store_seed1: StackKind::Store { confirm: true }, 1;
    store_seed2: StackKind::Store { confirm: false }, 2;
    store_seed3: StackKind::Store { confirm: true }, 3;
    store_seed4: StackKind::Store { confirm: false }, 4;
    store_seed5: StackKind::Store { confirm: true }, 5;
    store_seed6: StackKind::Store { confirm: false }, 6;
    store_seed7: StackKind::Store { confirm: true }, 7;
    queue_seed0: StackKind::Queue, 0;
    queue_seed1: StackKind::Queue, 1;
    queue_seed2: StackKind::Queue, 2;
    queue_seed3: StackKind::Queue, 3;
    queue_seed4: StackKind::Queue, 4;
    queue_seed5: StackKind::Queue, 5;
    queue_seed6: StackKind::Queue, 6;
    queue_seed7: StackKind::Queue, 7;
    causal_seed0: StackKind::Causal, 0;
    causal_seed1: StackKind::Causal, 1;
    causal_seed2: StackKind::Causal, 2;
    causal_seed3: StackKind::Causal, 3;
    causal_seed4: StackKind::Causal, 4;
    causal_seed5: StackKind::Causal, 5;
    causal_seed6: StackKind::Causal, 6;
    causal_seed7: StackKind::Causal, 7;
    sharded_seed0: StackKind::ShardedStore { shards: 2 }, 0;
    sharded_seed1: StackKind::ShardedStore { shards: 2 }, 1;
    sharded_seed2: StackKind::ShardedStore { shards: 3 }, 2;
    sharded_seed3: StackKind::ShardedStore { shards: 2 }, 3;
    sharded_seed4: StackKind::ShardedStore { shards: 2 }, 4;
    sharded_seed5: StackKind::ShardedStore { shards: 3 }, 5;
    sharded_seed6: StackKind::ShardedStore { shards: 2 }, 6;
    sharded_seed7: StackKind::ShardedStore { shards: 2 }, 7;
    spec_reg_seed0: StackKind::SpecRegister, 0;
    spec_reg_seed1: StackKind::SpecRegister, 1;
    spec_reg_seed2: StackKind::SpecRegister, 2;
    spec_reg_seed3: StackKind::SpecRegister, 3;
    spec_reg_seed4: StackKind::SpecRegister, 4;
    spec_reg_seed5: StackKind::SpecRegister, 5;
    spec_reg_seed6: StackKind::SpecRegister, 6;
    spec_reg_seed7: StackKind::SpecRegister, 7;
    spec_ctr_seed0: StackKind::SpecCounter, 0;
    spec_ctr_seed1: StackKind::SpecCounter, 1;
    spec_ctr_seed2: StackKind::SpecCounter, 2;
    spec_ctr_seed3: StackKind::SpecCounter, 3;
    spec_ctr_seed4: StackKind::SpecCounter, 4;
    spec_ctr_seed5: StackKind::SpecCounter, 5;
    spec_ctr_seed6: StackKind::SpecCounter, 6;
    spec_ctr_seed7: StackKind::SpecCounter, 7;
    crdt_seed0: StackKind::Crdt { state_based: false }, 0;
    crdt_seed1: StackKind::Crdt { state_based: true }, 1;
    crdt_seed2: StackKind::Crdt { state_based: false }, 2;
    crdt_seed3: StackKind::Crdt { state_based: true }, 3;
    crdt_seed4: StackKind::Crdt { state_based: false }, 4;
    crdt_seed5: StackKind::Crdt { state_based: true }, 5;
    crdt_seed6: StackKind::Crdt { state_based: false }, 6;
    crdt_seed7: StackKind::Crdt { state_based: true }, 7;
    escrow_seed0: StackKind::TicketsEscrow, 0;
    escrow_seed1: StackKind::TicketsEscrow, 1;
    escrow_seed2: StackKind::TicketsEscrow, 2;
    escrow_seed3: StackKind::TicketsEscrow, 3;
    escrow_seed4: StackKind::TicketsEscrow, 4;
    escrow_seed5: StackKind::TicketsEscrow, 5;
    escrow_seed6: StackKind::TicketsEscrow, 6;
    escrow_seed7: StackKind::TicketsEscrow, 7;
}

/// Wide-range soak: 64 seeds per stack. Run with
/// `cargo test --test oracle_fleet -- --ignored` (CI: `oracle-soak`).
#[test]
#[ignore = "soak: wide seed range, run on schedule/manual trigger"]
fn oracle_soak_wide_seed_range() {
    let cfg = ExplorerConfig::default();
    let mut failures = Vec::new();
    for stack in [
        StackKind::Store { confirm: false },
        StackKind::Store { confirm: true },
        StackKind::Queue,
        StackKind::Causal,
        StackKind::ShardedStore { shards: 2 },
        StackKind::SpecRegister,
        StackKind::SpecCounter,
        StackKind::Crdt { state_based: false },
        StackKind::Crdt { state_based: true },
        StackKind::TicketsEscrow,
    ] {
        for seed in 0..64u64 {
            if let Err(report) = explore(stack, seed, &cfg) {
                failures.push(report.to_string());
            }
        }
    }
    assert!(
        failures.is_empty(),
        "soak failures:\n{}",
        failures.join("\n")
    );
}
