//! End-to-end coverage of the sharding layer over the simulated
//! substrates: routing through real multi-shard SimStore/SimCausal
//! fleets, per-level re-emission, scatter/gather close semantics, the
//! batching pipeline across threads, and bounded rebalancing.

use icg::causalstore::CacheOp;
use icg::correctables::{Client, ConsistencyLevel, KeyedOp, ObjectId, State};
use icg::quorumstore::{Key, StoreOp, Value};
use icg::shard::{HashRing, PipelineConfig, RebalancePlan, ShardId};
use icg::sharded::{ShardedSimCausal, ShardedSimStore};

#[test]
fn sharded_quorum_store_routes_and_reemits_every_level() {
    let fleet = ShardedSimStore::ec2(4, 2, false, 77);
    fleet.preload((0..64).map(|i| (Key::plain(i), Value::Opaque(100 + i as u32))));
    let client = Client::new(fleet.binding());

    let reads: Vec<_> = (0..64)
        .map(|i| client.invoke(StoreOp::Read(Key::plain(i))))
        .collect();
    fleet.settle();
    for (i, c) in reads.iter().enumerate() {
        assert_eq!(c.state(), State::Final, "key {i}");
        // The owning shard's ICG pipeline flows through unchanged:
        // preliminary at Weak, close at Strong.
        assert_eq!(c.preliminary_views().len(), 1, "key {i}");
        assert_eq!(c.preliminary_views()[0].level, ConsistencyLevel::WEAK);
        let fin = c.final_view().unwrap();
        assert_eq!(fin.level, ConsistencyLevel::STRONG);
        assert_eq!(fin.value.value, Value::Opaque(100 + i as u32));
    }
    // The keyspace actually spread across the fleet.
    let routed = fleet.binding().routed_per_shard();
    assert_eq!(routed.iter().sum::<u64>(), 64);
    assert!(
        routed.iter().all(|&r| r > 0),
        "unbalanced fleet: {routed:?}"
    );
}

#[test]
fn sharded_write_then_read_is_shard_local() {
    let fleet = ShardedSimStore::ec2(4, 2, false, 3);
    let client = Client::new(fleet.binding());
    let w = client.invoke_strong(StoreOp::Write(Key::plain(9), Value::Opaque(55)));
    fleet.settle();
    assert_eq!(w.state(), State::Final);
    let r = client.invoke_strong(StoreOp::Read(Key::plain(9)));
    fleet.settle();
    assert_eq!(r.final_view().unwrap().value.value, Value::Opaque(55));
    // Both ops hit the same single shard.
    let routed = fleet.binding().routed_per_shard();
    assert_eq!(routed.iter().filter(|&&r| r > 0).count(), 1);
    assert_eq!(routed.iter().sum::<u64>(), 2);
}

#[test]
fn scatter_closes_when_every_shard_delivered_strongest() {
    let fleet = ShardedSimStore::ec2(4, 2, false, 21);
    fleet.preload((0..16).map(|i| (Key::plain(i), Value::Opaque(10 + i as u32))));
    let c = fleet
        .binding()
        .scatter((0..16).map(|i| StoreOp::Read(Key::plain(i))).collect());
    fleet.settle();
    assert_eq!(c.state(), State::Final);
    // Intermediate view at the weakest common level once every touched
    // shard flushed a preliminary, then the close at Strong.
    let prelims = c.preliminary_views();
    assert!(!prelims.is_empty());
    assert_eq!(prelims[0].level, ConsistencyLevel::WEAK);
    let fin = c.final_view().unwrap();
    assert_eq!(fin.level, ConsistencyLevel::STRONG);
    let values: Vec<Value> = fin.value.iter().map(|v| v.value.clone()).collect();
    assert_eq!(
        values,
        (0..16)
            .map(|i| Value::Opaque(10 + i as u32))
            .collect::<Vec<_>>()
    );
}

#[test]
fn pipelined_sharded_store_settles_across_threads() {
    let fleet = ShardedSimStore::ec2_with(
        4,
        2,
        false,
        5,
        Some(PipelineConfig {
            queue_cap: 64,
            batch_max: 8,
        }),
    );
    fleet.preload((0..32).map(|i| (Key::plain(i), Value::Opaque(7))));
    let client = Client::new(fleet.binding());
    let reads: Vec<_> = (0..32)
        .map(|i| client.invoke(StoreOp::Read(Key::plain(i))))
        .collect();
    fleet.settle();
    for c in &reads {
        assert_eq!(c.final_view().unwrap().value.value, Value::Opaque(7));
    }
}

#[test]
fn sharded_causal_store_keeps_three_level_pipeline() {
    let fleet = ShardedSimCausal::ec2(3, 13);
    for k in 0..9 {
        fleet.seed(&format!("news-{k}"), 1, vec![k]);
    }
    let client = Client::new(fleet.binding());
    let reads: Vec<_> = (0..9)
        .map(|k| client.invoke(CacheOp::Get(format!("news-{k}"))))
        .collect();
    fleet.settle();
    for (k, c) in reads.iter().enumerate() {
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 2, "key {k}");
        assert_eq!(prelims[0].level, ConsistencyLevel::CACHE);
        assert_eq!(prelims[1].level, ConsistencyLevel::CAUSAL);
        let fin = c.final_view().unwrap();
        assert_eq!(fin.level, ConsistencyLevel::STRONG);
        assert_eq!(fin.value.map(|i| i.items), Some(vec![k as u64]));
    }
}

#[test]
fn adding_a_shard_to_the_facade_ring_moves_bounded_keys() {
    // The facade stacks route with VNODES vnodes; verify the operational
    // claim end to end: growing 8 → 9 shards relocates at most 2/9 of a
    // key sample, all of it onto the new shard.
    let old = HashRing::new(8, icg::sharded::VNODES, 42);
    let new = old.with_added(ShardId(8));
    let plan = RebalancePlan::diff(&old, &new);
    assert!(plan.moved.iter().all(|r| r.to == ShardId(8)));
    let mut moved = 0usize;
    const SAMPLES: u64 = 4096;
    for i in 0..SAMPLES {
        let key = StoreOp::Read(Key::plain(i)).object_id();
        if old.owner(key) != new.owner(key) {
            moved += 1;
            assert_eq!(new.owner(key), ShardId(8));
        }
        assert_eq!(plan.moves_key(&old, key), old.owner(key) != new.owner(key));
    }
    let frac = moved as f64 / SAMPLES as f64;
    assert!(frac <= 2.0 / 9.0, "moved {frac}");
    assert!(plan.moved_fraction() <= 2.0 / 9.0);
}

#[test]
fn facade_reexports_the_shard_crate() {
    let _ring = icg::shard::HashRing::new(2, 8, 0);
    let _id: ObjectId = icg::shard::KvOp::Get(5).object_id();
    let _cfg = icg::shard::PipelineConfig::default();
}
