//! Coverage of the `icg` facade re-exports: every workspace crate is
//! reachable through the facade, and `Client::invoke` runs end to end
//! through each storage substrate at every consistency level the
//! substrate's binding advertises — both level-by-level (via
//! `LevelSelection::Only`) and incrementally (the default `invoke`).

use icg::causalstore::{CacheOp, SimCausal};
use icg::consensusq::{QueueOp, ServerConfig, SimQueue};
use icg::correctables::{Binding, Client, ConsistencyLevel, LevelSelection, LevelSet};
use icg::quorumstore::{Key, ReplicaConfig, SimStore, StoreOp, Value};

/// Drives one op through `binding` at every advertised level in
/// isolation, then incrementally across all levels, settling the
/// simulation via `settle` after each invocation. Returns the advertised
/// levels for substrate-specific assertions.
fn exercise_all_levels<B, F>(binding: B, mut op: impl FnMut() -> B::Op, mut settle: F) -> LevelSet
where
    B: Binding + Clone + 'static,
    B::Op: Send + 'static,
    F: FnMut(),
{
    let levels = binding.consistency_levels();
    assert!(!levels.is_empty(), "binding advertises no levels");
    assert!(
        levels.as_slice().windows(2).all(|w| w[0] < w[1]),
        "levels must be advertised weakest-first: {levels:?}"
    );

    // Each level alone: exactly one view, final, at the requested level.
    for level in &levels {
        let client = Client::new(binding.clone());
        let c = client.invoke_with(op(), &LevelSelection::only(&[level]));
        settle();
        assert!(
            c.preliminary_views().is_empty(),
            "single-level invoke at {level} produced preliminaries"
        );
        let fin = c.final_view().unwrap_or_else(|| {
            panic!(
                "single-level invoke at {level} did not resolve (state {:?})",
                c.state()
            )
        });
        assert_eq!(fin.level, level);
    }

    // All levels incrementally: preliminaries weakest-first, closed at the
    // strongest advertised level.
    let client = Client::new(binding.clone());
    let c = client.invoke(op());
    settle();
    let seen: Vec<ConsistencyLevel> = c
        .preliminary_views()
        .iter()
        .map(|v| v.level)
        .chain(c.final_view().map(|v| v.level))
        .collect();
    assert_eq!(
        seen,
        levels.to_vec(),
        "incremental invoke must deliver every level"
    );

    levels
}

#[test]
fn quorum_store_serves_every_level() {
    let qs = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, 11);
    qs.preload((0..8).map(|i| (Key::plain(i), Value::Opaque(64))));
    let levels = exercise_all_levels(
        qs.binding(),
        || StoreOp::Read(Key::plain(3)),
        || qs.settle(),
    );
    assert_eq!(
        levels,
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    );
}

#[test]
fn consensus_queue_serves_every_level() {
    let q = SimQueue::ec2(ServerConfig::default(), "IRL", "IRL", "FRK", 12);
    q.prefill(64, 20);
    let levels = exercise_all_levels(q.binding(), || QueueOp::Dequeue, || q.settle());
    assert_eq!(
        levels,
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    );
}

#[test]
fn causal_store_serves_every_level() {
    let n = SimCausal::ec2("VRG", "IRL", 13);
    n.seed("key", 1, vec![42]);
    let levels = exercise_all_levels(n.binding(), || CacheOp::Get("key".into()), || n.settle());
    assert_eq!(
        levels,
        LevelSet::of(&[
            ConsistencyLevel::CACHE,
            ConsistencyLevel::CAUSAL,
            ConsistencyLevel::STRONG
        ])
    );
}

#[test]
fn facade_reexports_every_workspace_crate() {
    // One load-bearing item per re-exported crate; a missing or renamed
    // re-export fails this test at compile time.
    let _level: icg::correctables::ConsistencyLevel = icg::correctables::ConsistencyLevel::WEAK;
    let _duration = icg::simnet::SimDuration::from_millis(1);
    let _key = icg::quorumstore::Key::plain(0);
    let _op = icg::consensusq::QueueOp::Dequeue;
    let _cache_op = icg::causalstore::CacheOp::Get("k".into());
    let _workload = icg::ycsb::Workload::a(icg::ycsb::Distribution::Uniform, 10);
    let _depth = icg::blockchain::FINAL_DEPTH;
    let _ads = icg::apps::AdsDataset::small();
    let _ring = icg::shard::HashRing::new(1, 1, 0);
}
