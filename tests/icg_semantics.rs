//! Cross-crate integration tests: the ICG semantics of the paper, end to
//! end through the public Correctables API over each storage substrate.

use std::time::Duration;

use icg::causalstore::{CacheOp, SimCausal};
use icg::consensusq::{QueueOp, ServerConfig, SimQueue};
use icg::correctables::{Client, ConsistencyLevel, Correctable, State};
use icg::quorumstore::{Key, ReplicaConfig, SimStore, StoreOp, Value};

fn quorum_store(confirm: bool, seed: u64) -> SimStore {
    let s = SimStore::ec2(ReplicaConfig::default(), 2, confirm, "IRL", 0, seed);
    s.preload((0..64).map(|i| (Key::plain(i), Value::Opaque(256))));
    s
}

#[test]
fn views_arrive_weakest_to_strongest_on_every_binding() {
    // Quorum store: weak then strong.
    let qs = quorum_store(false, 1);
    let client = Client::new(qs.binding());
    let c = client.invoke(StoreOp::Read(Key::plain(1)));
    qs.settle();
    let levels: Vec<ConsistencyLevel> = c
        .preliminary_views()
        .iter()
        .map(|v| v.level)
        .chain(c.final_view().map(|v| v.level))
        .collect();
    assert_eq!(
        levels,
        vec![ConsistencyLevel::WEAK, ConsistencyLevel::STRONG]
    );

    // Queue: weak (simulation) then strong (atomic).
    let q = SimQueue::ec2(ServerConfig::default(), "IRL", "IRL", "FRK", 2);
    q.prefill(4, 20);
    let qc = Client::new(q.binding());
    let d = qc.invoke(QueueOp::Dequeue);
    q.settle();
    assert_eq!(d.preliminary_views()[0].level, ConsistencyLevel::WEAK);
    assert_eq!(d.final_view().unwrap().level, ConsistencyLevel::STRONG);

    // Cached causal store: cache, causal, strong.
    let n = SimCausal::ec2("VRG", "IRL", 3);
    n.seed("k", 1, vec![9]);
    let nc = Client::new(n.binding());
    let g = nc.invoke(CacheOp::Get("k".into()));
    n.settle();
    let levels: Vec<ConsistencyLevel> = g.preliminary_views().iter().map(|v| v.level).collect();
    assert_eq!(
        levels,
        vec![ConsistencyLevel::CACHE, ConsistencyLevel::CAUSAL]
    );
    assert_eq!(g.final_view().unwrap().level, ConsistencyLevel::STRONG);
}

#[test]
fn icg_exposes_staleness_that_strong_reads_never_see() {
    let qs = quorum_store(false, 4);
    let client = Client::new(qs.binding());
    // Write through the FRK coordinator, then immediately ICG-read via a
    // second write racing the async propagation window.
    let w = client.invoke_strong(StoreOp::Write(Key::plain(7), Value::Opaque(512)));
    qs.settle();
    assert_eq!(w.state(), State::Final);
    let r = client.invoke(StoreOp::Read(Key::plain(7)));
    qs.settle();
    // The coordinator itself applied the write, so even the preliminary
    // sees it; the final view must never be older than the preliminary.
    let prelim = &r.preliminary_views()[0];
    let fin = r.final_view().unwrap();
    assert!(fin.value.version >= prelim.value.version);
    assert_eq!(fin.value.value, Value::Opaque(512));
}

#[test]
fn final_view_is_never_weaker_than_preliminary_under_update_storms() {
    let qs = quorum_store(true, 5);
    let client = Client::new(qs.binding());
    for round in 0..30u32 {
        let k = Key::plain(u64::from(round % 8));
        client.invoke_strong(StoreOp::Write(k, Value::Opaque(round + 1)));
        let r = client.invoke(StoreOp::Read(k));
        qs.settle();
        let fin = r.final_view().expect("resolved");
        for p in r.preliminary_views() {
            assert!(
                fin.value.version >= p.value.version,
                "final view went backwards at round {round}"
            );
        }
    }
}

#[test]
fn speculation_chain_combines_prefetch_with_confirmation() {
    let qs = quorum_store(false, 6);
    // Key 100 references key 2 (pointer chase, §4.2's pattern).
    qs.preload([(Key::plain(100), Value::Ids(vec![2]))]);
    let client = Client::new(qs.binding());
    let binding = qs.binding();
    let out = client
        .invoke(StoreOp::Read(Key::plain(100)))
        .speculate_async(
            move |refs| {
                let targets = refs.value.ids().unwrap_or(&[]).to_vec();
                let fetches: Vec<Correctable<_>> = targets
                    .iter()
                    .map(|t| {
                        Client::new(binding.clone())
                            .invoke_strong(StoreOp::Read(Key::plain(*t)))
                            .map(|v| v.clone())
                    })
                    .collect();
                Correctable::join_all(fetches)
            },
            |_| {},
        );
    qs.settle();
    let ads = out.final_view().expect("speculation resolved").value;
    assert_eq!(ads.len(), 1);
    assert_eq!(ads[0].value, Value::Opaque(256));
    // Timing: the chain must finish before a sequential strong+strong
    // (2 × 40 ms) would, because the prefetch overlapped the quorum wait.
    let t = qs.timings();
    let outer = t.iter().find(|x| x.prelim_ms.is_some()).expect("icg op");
    let total = t.iter().map(|x| x.final_ms).fold(0.0f64, f64::max);
    assert!(outer.prelim_ms.unwrap() < 30.0);
    assert!(
        total < 75.0,
        "chain took {total}ms; speculation did not overlap"
    );
}

#[test]
fn wait_final_interops_with_simulated_bindings() {
    // `wait_final` must not deadlock when the value is already resolved.
    let qs = quorum_store(false, 8);
    let client = Client::new(qs.binding());
    let c = client.invoke_strong(StoreOp::Read(Key::plain(3)));
    qs.settle();
    // Settle resolves everything, so this returns immediately; the bound
    // is deliberately generous — it only matters if settle ever regresses,
    // and then a clear timeout beats a flaky one.
    let v = c.wait_final(Duration::from_secs(5)).expect("already final");
    assert_eq!(v.level, ConsistencyLevel::STRONG);
}

#[test]
fn level_subset_requests_skip_extraneous_work() {
    use icg::correctables::LevelSelection;
    let qs = quorum_store(false, 9);
    let client = Client::new(qs.binding());
    // Requesting only Strong must not produce a preliminary view.
    let c = client.invoke_with(
        StoreOp::Read(Key::plain(2)),
        &LevelSelection::only(&[ConsistencyLevel::STRONG]),
    );
    qs.settle();
    assert!(c.preliminary_views().is_empty());
    assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::STRONG);
}
