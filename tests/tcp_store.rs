//! End-to-end tests of the TCP deployment layer: a real replica set on
//! loopback sockets, an unmodified Correctables client, and the
//! consistency oracle attached through [`RecordingBinding`].
//!
//! These are the only tests in the workspace that cross real sockets;
//! everything they assert about *consistency* is checked by the same
//! oracle checkers the simulated stacks use, so the guarantees carry
//! over from simulation to deployment unchanged. CI runs this file in
//! the `net-smoke` step.

use std::sync::Arc;
use std::time::{Duration, Instant};

use icg::correctables::{Client, ConsistencyLevel, History, Invocation, RecordingBinding, State};
use icg::net::{spawn_local_cluster, ReplicaHandle, ServerConfig, TcpBinding, TcpConfig};
use icg::oracle::{check_convergence, check_monotonicity};
use icg::quorumstore::{Key, StoreOp, Value, Versioned};

/// Client ids: replicas use their own ids (0..n) for peer traffic, so
/// clients start well past them.
const CLIENT_BASE: u64 = 1000;

/// Snapshots `history` once every invocation has a closing event.
///
/// `Correctable::wait_final` wakes the moment the state machine closes,
/// but the recording observer appends the closing view *after* the
/// transition (see the `DeliveryObserver` ordering contract) — so a
/// snapshot taken immediately after the last wait can be one event
/// short. Settling here keeps the oracle checks race-free.
fn settled_snapshot(
    history: &History<StoreOp, Versioned>,
    at_least: usize,
) -> Vec<Invocation<StoreOp, Versioned>> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snap = history.snapshot();
        if snap.len() >= at_least && snap.iter().all(|i| i.closing_event().is_some()) {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "history never settled: {} invocations, {} open",
            snap.len(),
            snap.iter().filter(|i| i.closing_event().is_none()).count()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn cluster(n: usize, op_timeout: Duration) -> Vec<ReplicaHandle> {
    spawn_local_cluster(n, |id| ServerConfig {
        id,
        op_timeout,
        ..ServerConfig::default()
    })
}

fn config(replicas: &[ReplicaHandle], client_id: u64) -> TcpConfig {
    TcpConfig::new(replicas.iter().map(|r| r.addr()).collect(), client_id)
}

/// Writes `keys` through `client` and waits for every acknowledgment.
fn preload(
    client: &Client<impl icg::correctables::Binding<Op = StoreOp, Val = Versioned>>,
    keys: u64,
) {
    for k in 0..keys {
        let w = client.invoke_strong(StoreOp::Write(Key::plain(k), Value::Opaque(64)));
        w.wait_final(Duration::from_secs(5)).expect("preload write");
    }
    // W = 1 acks before propagation; give the background peer writes a
    // moment to land so preliminary views start converged.
    std::thread::sleep(Duration::from_millis(150));
}

#[test]
fn preliminary_then_final_over_loopback() {
    let replicas = cluster(3, Duration::from_secs(2));
    let binding = TcpBinding::connect(config(&replicas, CLIENT_BASE)).expect("connect");
    let client = Client::new(binding.clone());
    preload(&client, 8);

    for k in 0..8 {
        let c = client.invoke(StoreOp::Read(Key::plain(k)));
        let fin = c.wait_final(Duration::from_secs(5)).expect("final view");
        assert_eq!(fin.level, ConsistencyLevel::STRONG);
        assert_eq!(fin.value.value, Value::Opaque(64));
        // The preliminary flush arrived first, at Weak, with the same
        // converged record.
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 1, "one preliminary per ICG read");
        assert_eq!(prelims[0].level, ConsistencyLevel::WEAK);
        assert_eq!(prelims[0].value.value, Value::Opaque(64));
    }

    // Weak-only and strong-only invocations close with a single view.
    let weak = client.invoke_weak(StoreOp::Read(Key::plain(1)));
    let v = weak.wait_final(Duration::from_secs(5)).expect("weak read");
    assert_eq!(v.level, ConsistencyLevel::WEAK);
    assert!(weak.preliminary_views().is_empty());

    let strong = client.invoke_strong(StoreOp::Read(Key::plain(1)));
    let v = strong
        .wait_final(Duration::from_secs(5))
        .expect("strong read");
    assert_eq!(v.level, ConsistencyLevel::STRONG);

    binding.shutdown();
    for r in &replicas {
        r.shutdown();
    }
}

#[test]
fn confirmation_mode_promotes_the_preliminary() {
    let replicas = cluster(3, Duration::from_secs(2));
    let mut cfg = config(&replicas, CLIENT_BASE + 1);
    cfg.confirm = true;
    let binding = TcpBinding::connect(cfg).expect("connect");
    let client = Client::new(binding.clone());
    preload(&client, 4);

    // Quiescent store: every final equals its preliminary, so the final
    // view travels as a confirmation — the value must still be real.
    for k in 0..4 {
        let c = client.invoke(StoreOp::Read(Key::plain(k)));
        let fin = c.wait_final(Duration::from_secs(5)).expect("final view");
        assert_eq!(fin.level, ConsistencyLevel::STRONG);
        assert_eq!(fin.value.value, Value::Opaque(64));
    }

    binding.shutdown();
    for r in &replicas {
        r.shutdown();
    }
}

#[test]
fn write_then_strong_read_sees_value_across_processes_boundary() {
    let replicas = cluster(3, Duration::from_secs(2));
    // Two independent clients — the second must observe the first's
    // write through the quorum.
    let writer = Client::new(TcpBinding::connect(config(&replicas, CLIENT_BASE + 2)).unwrap());
    let reader = Client::new(TcpBinding::connect(config(&replicas, CLIENT_BASE + 3)).unwrap());

    writer
        .invoke_strong(StoreOp::Write(Key::plain(9), Value::Opaque(777)))
        .wait_final(Duration::from_secs(5))
        .expect("write");
    let v = reader
        .invoke_strong(StoreOp::Read(Key::plain(9)))
        .wait_final(Duration::from_secs(5))
        .expect("read");
    assert_eq!(v.value.value, Value::Opaque(777));

    for r in &replicas {
        r.shutdown();
    }
}

/// The acceptance-criteria test: a real-socket run with one replica
/// killed mid-workload. The client binding fails over to a surviving
/// coordinator, the workload keeps completing, and the recorded history
/// passes the oracle's monotonicity check everywhere plus convergence
/// over the quiescent tail.
#[test]
fn killed_replica_failover_keeps_oracle_guarantees() {
    const KEYS: u64 = 16;

    let replicas = cluster(3, Duration::from_millis(800));
    let mut cfg = config(&replicas, CLIENT_BASE + 4);
    // Short client deadline: ops whose replies died with the coordinator
    // must fail fast instead of wedging the run.
    cfg.op_timeout = Duration::from_millis(800);
    let history: History<StoreOp, Versioned> = History::new();
    let tcp = TcpBinding::connect(cfg).expect("connect");
    let binding = RecordingBinding::new(tcp.clone(), history.clone());
    let client = Client::new(binding);
    preload(&client, KEYS);

    // Mixed workload: interleaved writes and ICG reads, closed loop.
    // Kill the coordinator partway through.
    let mut completed_after_kill = 0u32;
    let mut killed = false;
    let coordinator_before = tcp.coordinator();
    let deadline = Instant::now() + Duration::from_secs(30);
    for round in 0..120u64 {
        assert!(Instant::now() < deadline, "workload wedged");
        if round == 40 {
            // Crash the replica the client is currently coordinated by —
            // the strongest failover case.
            let coord = tcp.coordinator();
            let victim = replicas
                .iter()
                .find(|r| r.addr() == coord)
                .expect("coordinator is one of ours");
            victim.shutdown();
            killed = true;
        }
        let k = Key::plain(round % KEYS);
        let c = if round % 3 == 0 {
            client.invoke_strong(StoreOp::Write(k, Value::Opaque(100 + round as u32)))
        } else {
            client.invoke(StoreOp::Read(k))
        };
        // Closed loop: wait for each op's outcome. Failures are expected
        // around the crash (lost replies, reconnect); what is *not*
        // allowed is a consistency violation, which the oracle checks
        // below.
        match c.wait_final(Duration::from_secs(5)) {
            Ok(_) if killed => completed_after_kill += 1,
            Ok(_) => {}
            Err(_) => assert!(killed, "op failed before any replica was killed"),
        }
    }
    assert!(
        completed_after_kill > 40,
        "only {completed_after_kill} ops completed after the kill — failover did not engage"
    );
    assert_ne!(
        tcp.coordinator(),
        coordinator_before,
        "client never moved off the killed coordinator"
    );

    // Quiesce, then issue a marked tail of ICG reads: with no writes in
    // flight, every preliminary must equal its final (convergence), and
    // the survivors must still run the full preliminary→final protocol.
    std::thread::sleep(Duration::from_millis(300));
    let mark = history.mark();
    for k in 0..KEYS {
        let c = client.invoke(StoreOp::Read(Key::plain(k)));
        let fin = c
            .wait_final(Duration::from_secs(5))
            .expect("quiescent read on the surviving quorum");
        assert_eq!(fin.level, ConsistencyLevel::STRONG);
        assert_eq!(c.state(), State::Final);
    }

    let snapshot = settled_snapshot(&history, 120);
    let mono = check_monotonicity(&snapshot, true);
    assert!(mono.is_empty(), "monotonicity violations: {mono:?}");
    let conv: Vec<_> = check_convergence(&snapshot, mark);
    assert!(conv.is_empty(), "convergence violations: {conv:?}");

    tcp.shutdown();
    for r in &replicas {
        r.shutdown();
    }
}

/// Multiple concurrent clients against one replica set: op-id spaces are
/// disjoint by client id, every op resolves, and each client's history
/// stays monotonic.
#[test]
fn concurrent_clients_do_not_cross_wires() {
    const CLIENTS: u64 = 4;
    const OPS: u64 = 40;

    let replicas = cluster(3, Duration::from_secs(2));
    let addrs: Vec<_> = replicas.iter().map(|r| r.addr()).collect();
    let replicas = Arc::new(replicas);

    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        let addrs = addrs.clone();
        joins.push(std::thread::spawn(move || {
            let history: History<StoreOp, Versioned> = History::new();
            let tcp =
                TcpBinding::connect(TcpConfig::new(addrs, CLIENT_BASE + 10 + c)).expect("connect");
            let client = Client::new(RecordingBinding::new(tcp.clone(), history.clone()));
            for i in 0..OPS {
                let k = Key::plain((c * OPS + i) % 8);
                let done = if i % 2 == 0 {
                    client.invoke_strong(StoreOp::Write(k, Value::Opaque(c as u32 + 1)))
                } else {
                    client.invoke(StoreOp::Read(k))
                };
                done.wait_final(Duration::from_secs(5))
                    .expect("op resolves");
            }
            let snapshot = settled_snapshot(&history, OPS as usize);
            assert_eq!(snapshot.len() as u64, OPS);
            let mono = check_monotonicity(&snapshot, true);
            assert!(mono.is_empty(), "client {c}: {mono:?}");
            tcp.shutdown();
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    for r in replicas.iter() {
        r.shutdown();
    }
}
