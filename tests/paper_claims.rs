//! Small-scale checks of the paper's headline claims, run as fast
//! integration tests (the full sweeps live in the bench harnesses).

use icg::apps::{Purchase, TicketOffice};
use icg::consensusq::{ServerConfig, SimQueue};
use icg::correctables::Client;
use icg::quorumstore::{Key, ReplicaConfig, SimStore, StoreOp, Value};

/// §6.2.1 / Figure 5: the preliminary view's latency tracks the
/// client-coordinator RTT (20 ms) and the CC2 gap tracks the quorum RTT.
#[test]
fn latency_gap_equals_quorum_rtt() {
    let s = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, 77);
    s.preload((0..8).map(|i| (Key::plain(i), Value::Opaque(100))));
    let client = Client::new(s.binding());
    for i in 0..8 {
        client.invoke(StoreOp::Read(Key::plain(i)));
    }
    s.settle();
    let t = s.timings();
    assert_eq!(t.len(), 8);
    for op in &t {
        let prelim = op.prelim_ms.expect("icg read");
        let gap = op.final_ms - prelim;
        assert!((17.0..27.0).contains(&prelim), "prelim {prelim}ms");
        assert!((15.0..30.0).contains(&gap), "gap {gap}ms");
    }
}

/// §6.2.1 / Figure 8: the confirmation optimization (*CC) makes an
/// undiverged ICG read barely more expensive than a weak read.
#[test]
fn confirmation_optimization_saves_bandwidth() {
    let run = |confirm: bool| -> u64 {
        let s = SimStore::ec2(ReplicaConfig::default(), 2, confirm, "IRL", 0, 5);
        s.preload((0..16).map(|i| (Key::plain(i), Value::Opaque(1000))));
        let client = Client::new(s.binding());
        for i in 0..16 {
            client.invoke(StoreOp::Read(Key::plain(i)));
        }
        s.settle();
        s.gateway_link_bytes()
    };
    let plain = run(false);
    let optimized = run(true);
    // Without divergence every final reply shrinks to a confirmation:
    // roughly one full 1 kB response saved per read.
    assert!(
        optimized + 14_000 < plain,
        "optimized {optimized} vs plain {plain}"
    );
}

/// §6.3.2 / Figure 12: threshold-guarded ticket selling never oversells
/// and uses the fast path for the bulk of the stock.
#[test]
fn ticket_selling_never_oversells_and_mostly_uses_fast_path() {
    let queue = SimQueue::ec2(ServerConfig::default(), "IRL", "FRK", "FRK", 31);
    let stock = 50;
    queue.prefill(stock, 20);
    let office = TicketOffice::new(queue);
    let mut confirmed = 0u64;
    let mut fast = 0u64;
    loop {
        let p = office.purchase_ticket();
        office.queue().settle();
        match p.final_view().expect("resolves").value {
            Purchase::Confirmed { via_prelim, .. } => {
                confirmed += 1;
                if via_prelim {
                    fast += 1;
                }
            }
            Purchase::SoldOut => break,
        }
        assert!(confirmed <= stock, "oversold!");
    }
    assert_eq!(confirmed, stock, "every ticket sold exactly once");
    // Stock 50 with threshold 20: the first ~29 purchases ride the
    // preliminary.
    assert!(fast >= 25, "only {fast} fast-path purchases");
}

/// §4.2 / Figure 11: speculating on the preliminary reference hides the
/// strong read's latency for two-step operations.
#[test]
fn speculation_reduces_two_step_latency() {
    use icg::apps::{AdSystem, AdsDataset};
    let mk = |seed| {
        let store = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, seed);
        AdSystem::new(store, AdsDataset::small(), seed)
    };
    let base = mk(1);
    let icg = mk(1);
    let c_base = base.fetch_ads_by_user_id(5, false);
    base.store().settle();
    let t_base = base.store().now_ms();
    let c_icg = icg.fetch_ads_by_user_id(5, true);
    icg.store().settle();
    let t_icg = icg.store().now_ms();
    assert_eq!(
        c_base.final_view().unwrap().value.len(),
        c_icg.final_view().unwrap().value.len()
    );
    let saved = t_base - t_icg;
    assert!(saved >= 10.0, "speculation saved only {saved}ms");
}

/// §2.2: the user pays for strong consistency only when inconsistencies
/// occur — on divergence the speculation redoes the work and still
/// delivers the *correct* result.
#[test]
fn misspeculation_still_delivers_correct_result() {
    let s = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, 91);
    s.preload([
        (Key::plain(0), Value::Ids(vec![1])),
        (Key::plain(1), Value::Opaque(10)),
        (Key::plain(2), Value::Opaque(20)),
    ]);
    let client = Client::new(s.binding());
    // Redirect the pointer from 1 to 2 through a *different* replica so
    // the FRK coordinator's preliminary is stale... simplest stand-in:
    // write via the same coordinator but read before propagation cannot
    // diverge, so instead verify the semantics directly: speculate on a
    // correctable whose final view differs from the preliminary.
    use icg::correctables::{ConsistencyLevel, Correctable};
    let (src, h) = Correctable::<Vec<u64>>::pending();
    let binding = s.binding();
    let out = src.speculate_async(
        move |ids: &Vec<u64>| {
            let fetches: Vec<Correctable<_>> = ids
                .iter()
                .map(|t| {
                    Client::new(binding.clone())
                        .invoke_strong(StoreOp::Read(Key::plain(*t)))
                        .map(|v| v.value.clone())
                })
                .collect();
            Correctable::join_all(fetches)
        },
        |_| {},
    );
    h.update(vec![1], ConsistencyLevel::WEAK).unwrap();
    s.settle(); // speculative prefetch of key 1 completes
    h.close(vec![2], ConsistencyLevel::STRONG).unwrap(); // divergence!
    s.settle(); // redo fetches key 2
    let v = out.final_view().expect("resolved despite misspeculation");
    assert_eq!(
        v.value,
        vec![Value::Opaque(20)],
        "must reflect the final view"
    );
    let _ = client;
}
