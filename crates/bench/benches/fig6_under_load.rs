//! Figure 6 — latency vs. throughput under YCSB load (workloads A, B, C).
//!
//! Setup (§6.2.1): replicas FRK/IRL/VRG; three clients, one per region,
//! each connected to a remote coordinator; `W = 1`, `R ∈ {1, 2}`; the IRL
//! client is reported. Each sweep point raises the number of closed-loop
//! client threads, tracing the latency/throughput curve to saturation.
//!
//! Paper's shape: C1 is fastest and saturates highest; C2 pays a quorum
//! RTT; CC2's preliminary tracks C1 latency while its final tracks C2, at
//! the same (slightly reduced, ~6%) throughput — the cost of preliminary
//! flushing at the coordinator.

use icg_bench::{f1, f2, quick, ring::run_ring, ring::RingSpec, Table};
use quorumstore::{ReplicaConfig, SystemConfig};
use simnet::SimDuration;
use ycsb::{Distribution, Workload};

fn main() {
    let (warmup_s, window_s) = if quick() { (2, 6) } else { (5, 20) };
    let thread_steps: Vec<u32> = if quick() {
        vec![4, 16, 48, 96]
    } else {
        vec![2, 4, 8, 16, 32, 48, 64, 96, 128]
    };
    type WorkloadCtor = fn(Distribution, u64) -> Workload;
    let workloads: Vec<(&str, WorkloadCtor)> = vec![
        ("A", Workload::a as WorkloadCtor),
        ("B", Workload::b),
        ("C", Workload::c),
    ];
    let systems: Vec<(SystemConfig, &str)> = vec![
        (SystemConfig::baseline(1), "C1"),
        (SystemConfig::baseline(2), "C2"),
        (SystemConfig::correctable(2), "CC2"),
    ];

    let mut table = Table::new(
        "Figure 6: latency vs throughput (IRL client; series per system)",
        &[
            "workload",
            "system",
            "threads",
            "tput_ops_s",
            "final_avg_ms",
            "final_p99_ms",
            "prelim_avg_ms",
        ],
    );

    for (wl_name, wl_fn) in &workloads {
        for (sys, sys_name) in &systems {
            for (i, threads) in thread_steps.iter().enumerate() {
                let workload = wl_fn(Distribution::ScrambledZipfian, 10_000).with_sizes(1_000, 100);
                let spec = RingSpec {
                    sys: *sys,
                    workload,
                    threads_per_client: *threads,
                    warmup: SimDuration::from_secs(warmup_s),
                    window: SimDuration::from_secs(window_s),
                    seed: 1000 + i as u64,
                    cfg: ReplicaConfig::default(),
                    drop_probability: 0.0,
                };
                let out = run_ring(&spec);
                let mut m = out.clients[0].clone();
                let prelim = if m.prelim_latency.is_empty() {
                    "-".to_string()
                } else {
                    f2(m.prelim_latency.mean().as_millis_f64())
                };
                table.row(vec![
                    wl_name.to_string(),
                    sys_name.to_string(),
                    threads.to_string(),
                    f1(out.irl_throughput()),
                    f2(m.final_latency.mean().as_millis_f64()),
                    f2(m.final_latency.p99().as_millis_f64()),
                    prelim,
                ]);
            }
        }
    }
    table.print();
    table.write_csv("fig6_under_load");
    println!(
        "\nExpected shape (paper): hockey-stick curves; C1 saturates highest; \
         CC2 throughput ~6% below C2 with prelim latency ~ C1 and final ~ C2."
    );
}
