//! Figure 11 — speculation case studies: the ad-serving system and
//! Twissandra's `get_timeline`, under YCSB-style load.
//!
//! Setup (§6.3.1): the ads system runs on the FRK/IRL/VRG deployment
//! (client in IRL, coordinator FRK) over 100 k profiles / 230 k ads;
//! Twissandra runs on VRG/N.California/Oregon (client in IRL, coordinator
//! VRG) over a 65 k-tweet / 22 k-timeline corpus. Reads are two-step
//! (references, then referenced objects); the baseline uses `R = 2` for
//! the reference read and does not speculate; CC2 uses `invoke` and
//! speculatively prefetches on the preliminary view.
//!
//! Paper's headline: ads served at ~60 ms average instead of ~100 ms
//! (−40%) for a ~6% throughput drop; divergence below 1% in both case
//! studies.
//!
//! Unlike Figures 5–8 (protocol-level drivers), this harness runs the
//! *application code* — `Client::invoke` + `speculate_async` — inside the
//! simulation via the closed-loop [`LoadDriver`].

use std::sync::Arc;

use icg_apps::{AdSystem, AdsDataset, LoadDriver, MeasuredOp, Twissandra, TwissandraDataset};
use icg_bench::{f1, f2, pct, quick, Table};
use quorumstore::{ReplicaConfig, SimStore};
use simnet::{SimDuration, Topology};

struct Point {
    throughput: f64,
    avg_ms: f64,
    p99_ms: f64,
    divergence: f64,
}

fn run_ads(icg: bool, threads: u32, seconds: u64, seed: u64) -> Point {
    let dataset = if quick() {
        AdsDataset {
            profiles: 5_000,
            ads: 10_000,
            ad_bytes: 200,
        }
    } else {
        AdsDataset::paper()
    };
    let store = SimStore::ec2(ReplicaConfig::default(), 2, false, "IRL", 0, seed);
    let sys = Arc::new(AdSystem::new(store, dataset, seed ^ 0x5a5a));
    let profiles = sys.dataset().profiles;
    let warmup = SimDuration::from_secs(2);
    let window = SimDuration::from_secs(seconds);
    let sys2 = Arc::clone(&sys);
    let rng = Arc::new(parking_lot::Mutex::new(AdSystem::workload_rng(seed)));
    let driver = LoadDriver::new(
        sys.store().clock(),
        warmup,
        warmup + window,
        warmup + window + SimDuration::from_millis(200),
        move |seq| {
            use rand::Rng;
            let mut r = rng.lock();
            let uid = r.gen_range(0..profiles);
            // Workload A mix: 50% reads (ad fetches), 50% profile updates.
            let _ = seq;
            if r.gen::<f64>() < 0.5 {
                drop(r);
                MeasuredOp::measured(sys2.fetch_ads_by_user_id(uid, icg).map(|_| ()))
            } else {
                let out = sys2.update_profile(uid, &mut r);
                drop(r);
                MeasuredOp::background(out.map(|_| ()))
            }
        },
    );
    driver.start(threads);
    sys.store().settle();
    let stats = driver.stats();
    let mut lat = stats.latency.clone();
    Point {
        throughput: stats.throughput(window),
        avg_ms: lat.summary().mean.as_millis_f64(),
        p99_ms: lat.p99().as_millis_f64(),
        divergence: sys.counters().divergence(),
    }
}

fn run_twissandra(icg: bool, threads: u32, seconds: u64, seed: u64) -> Point {
    let dataset = if quick() {
        TwissandraDataset {
            timelines: 2_000,
            tweets: 6_000,
            tweet_bytes: 140,
        }
    } else {
        TwissandraDataset::paper()
    };
    let store = SimStore::custom(
        Topology::ec2_us_wide(),
        &["VRG", "NCAL", "ORE"],
        ReplicaConfig::default(),
        2,
        false,
        "IRL",
        0,
        seed,
    );
    let app = Arc::new(Twissandra::new(store, dataset, seed ^ 0x33));
    let timelines = app.dataset().timelines;
    let warmup = SimDuration::from_secs(2);
    let window = SimDuration::from_secs(seconds);
    let app2 = Arc::clone(&app);
    let rng = Arc::new(parking_lot::Mutex::new(AdSystem::workload_rng(seed + 1)));
    let driver = LoadDriver::new(
        app.store().clock(),
        warmup,
        warmup + window,
        warmup + window + SimDuration::from_millis(200),
        move |_seq| {
            use rand::Rng;
            let mut r = rng.lock();
            let uid = r.gen_range(0..timelines);
            if r.gen::<f64>() < 0.5 {
                drop(r);
                MeasuredOp::measured(app2.get_timeline(uid, icg).map(|_| ()))
            } else {
                let out = app2.post_tweet(uid, &mut r);
                drop(r);
                MeasuredOp::background(out.map(|_| ()))
            }
        },
    );
    driver.start(threads);
    app.store().settle();
    let stats = driver.stats();
    let mut lat = stats.latency.clone();
    Point {
        throughput: stats.throughput(window),
        avg_ms: lat.summary().mean.as_millis_f64(),
        p99_ms: lat.p99().as_millis_f64(),
        divergence: 0.0,
    }
}

fn main() {
    let seconds = if quick() { 4 } else { 10 };
    let thread_steps: Vec<u32> = if quick() {
        vec![2, 8, 24]
    } else {
        vec![1, 2, 4, 8, 16, 32, 48]
    };
    let mut table = Table::new(
        "Figure 11: case studies, latency vs throughput (workload A mix)",
        &[
            "app",
            "system",
            "threads",
            "tput_ops_s",
            "avg_ms",
            "p99_ms",
            "divergence",
        ],
    );
    for (app, runner) in [
        ("ads", run_ads as fn(bool, u32, u64, u64) -> Point),
        ("twissandra", run_twissandra),
    ] {
        for (sys, icg) in [("C2-baseline", false), ("CC2-speculate", true)] {
            for (i, threads) in thread_steps.iter().enumerate() {
                let p = runner(icg, *threads, seconds, 9000 + i as u64);
                table.row(vec![
                    app.to_string(),
                    sys.to_string(),
                    threads.to_string(),
                    f1(p.throughput),
                    f2(p.avg_ms),
                    f2(p.p99_ms),
                    pct(p.divergence),
                ]);
            }
        }
    }
    table.print();
    table.write_csv("fig11_case_studies");
    println!(
        "\nExpected shape (paper): speculation cuts ad-serving latency ~100ms \
         to ~60ms (-40%) before saturation, with a small throughput drop; \
         Twissandra slower overall (farther coordinator) with the same \
         improvement pattern; divergence stays below 1%."
    );
}
