//! Figure 10 — bandwidth per dequeue: ZooKeeper's recipe vs CZK.
//!
//! Setup (§6.2.2): queues of 500 and 1000 tickets drained by 1–12
//! contending clients. The vanilla recipe reads the *whole* child list
//! before each delete attempt, so its per-op cost grows with queue length
//! and contention; CZK reads only the constant-size head, making the cost
//! independent of queue length (it still grows with contention, which
//! costs retries).

use consensusq::{DequeueClient, DequeueMode, Server, ServerConfig, ZkCluster};
use icg_bench::{f2, quick, Table};
use simnet::Topology;

fn run(mode: DequeueMode, queue_len: u64, clients: usize, seed: u64) -> (f64, u64, u64) {
    let mut cluster = ZkCluster::build(
        Topology::ec2_frk_irl_vrg(),
        &["FRK", "IRL", "VRG"],
        1, // leader in IRL
        ServerConfig::default(),
        seed,
    );
    cluster.prefill_queue("/q", queue_len, 20);
    for _ in 0..clients {
        // Retailers are colocated with the FRK follower (as in §6.3.2).
        let server = cluster.servers[0];
        let client = DequeueClient::new(server, mode, "/q");
        cluster.add_client("FRK", Box::new(client));
    }
    cluster.engine.run_until_idle(500_000_000);
    let mut bytes = 0;
    let mut ops = 0;
    let mut retries = 0;
    for id in cluster.clients.clone() {
        bytes += cluster.engine.bandwidth().link_bytes(id);
        let c = cluster.engine.node_as::<DequeueClient>(id);
        ops += c.purchases.iter().filter(|p| !p.revoked).count() as u64;
        retries += c.retries;
    }
    // The queue must be fully drained exactly once.
    assert_eq!(ops, queue_len, "drained {ops} of {queue_len}");
    for s in cluster.servers.clone() {
        assert_eq!(
            cluster.engine.node_as::<Server>(s).tree.child_count("/q"),
            0
        );
    }
    (bytes as f64 / ops as f64 / 1000.0, ops, retries)
}

fn main() {
    let client_counts: Vec<usize> = if quick() {
        vec![1, 4, 12]
    } else {
        vec![1, 2, 4, 6, 8, 12]
    };
    let mut table = Table::new(
        "Figure 10: dequeue bandwidth (kB/op), ZK vs CZK, 500 and 1000 tickets",
        &[
            "queue_len",
            "clients",
            "ZK_kB_op",
            "CZK_kB_op",
            "saving",
            "ZK_retries",
            "CZK_retries",
        ],
    );
    for queue_len in [500u64, 1000] {
        for (i, clients) in client_counts.iter().enumerate() {
            let (zk, _, zk_r) = run(DequeueMode::ZkRecipe, queue_len, *clients, 300 + i as u64);
            let (czk, _, czk_r) = run(DequeueMode::CzkRecipe, queue_len, *clients, 400 + i as u64);
            table.row(vec![
                queue_len.to_string(),
                clients.to_string(),
                f2(zk),
                f2(czk),
                format!("{:.0}%", (1.0 - czk / zk) * 100.0),
                zk_r.to_string(),
                czk_r.to_string(),
            ]);
        }
    }
    table.print();
    table.write_csv("fig10_zk_dequeue_bw");
    println!(
        "\nExpected shape (paper): ZK cost grows with queue length AND contention \
         (whole-queue reads, ~8-14 kB/op); CZK cost is independent of queue \
         length (constant-size head reads), saving 44-81%."
    );
}
