//! Ablations of the design choices DESIGN.md calls out (not a paper
//! figure — these quantify *why* the system is built the way it is).
//!
//! 1. **Read repair**: Cassandra-style repair pushes the quorum winner to
//!    stale replicas. It should cut preliminary/final divergence on hot
//!    keys — at extra replication traffic.
//! 2. **Preliminary flushing cost**: CC's server-side ICG charges the
//!    coordinator extra work per ICG read (the paper observes ~6%
//!    throughput loss). Sweeping the flush cost shows the sensitivity.
//! 3. **Confirmation-message size**: *CC replaces identical final views
//!    with a confirmation; its benefit depends on how small the
//!    confirmation actually is relative to the record.

use icg_bench::{f1, f2, pct, quick, ring::run_ring, ring::RingSpec, Table};
use quorumstore::{ReplicaConfig, SystemConfig};
use simnet::SimDuration;
use ycsb::{Distribution, Workload};

fn base_cfg() -> ReplicaConfig {
    ReplicaConfig {
        read_service: SimDuration::from_micros(150),
        write_service: SimDuration::from_micros(150),
        peer_read_service: SimDuration::from_micros(90),
        peer_write_service: SimDuration::from_micros(80),
        prelim_flush_extra: SimDuration::from_micros(10),
        ..ReplicaConfig::default()
    }
}

fn main() {
    let (warmup, window) = if quick() {
        (SimDuration::from_secs(2), SimDuration::from_secs(5))
    } else {
        (SimDuration::from_secs(5), SimDuration::from_secs(15))
    };

    // ----- Ablation 1: read repair ---------------------------------------
    // With reliable asynchronous replication, repair is redundant; its
    // value shows when replication messages get lost and replicas would
    // otherwise stay stale until the next write.
    let mut t1 = Table::new(
        "Ablation: read repair (workload B-Latest, 1K objects, 120 threads)",
        &[
            "msg_loss",
            "read_repair",
            "divergence",
            "kB_per_op",
            "tput_ops_s",
        ],
    );
    for loss in [0.0f64, 0.10] {
        for repair in [false, true] {
            let cfg = ReplicaConfig {
                read_repair: repair,
                ..base_cfg()
            };
            let out = run_ring(&RingSpec {
                sys: SystemConfig::correctable(2),
                workload: Workload::b(Distribution::Latest, 1_000).with_sizes(1_000, 100),
                threads_per_client: 40,
                warmup,
                window,
                seed: 21,
                cfg,
                drop_probability: loss,
            });
            t1.row(vec![
                pct(loss),
                repair.to_string(),
                pct(out.divergence()),
                f2(out.kb_per_op()),
                f1(out.completed() as f64 / window.as_secs_f64()),
            ]);
        }
    }
    t1.print();
    t1.write_csv("ablation_read_repair");

    // ----- Ablation 2: preliminary-flush cost ----------------------------
    let mut t2 = Table::new(
        "Ablation: coordinator cost of preliminary flushing (workload C, saturation)",
        &["flush_extra_us", "tput_ops_s", "vs_no_flush"],
    );
    let mut baseline_tput = None;
    for extra_us in [0u64, 10, 30, 100, 300] {
        let cfg = ReplicaConfig {
            prelim_flush_extra: SimDuration::from_micros(extra_us),
            ..ReplicaConfig::default()
        };
        let out = run_ring(&RingSpec {
            sys: SystemConfig::correctable(2),
            workload: Workload::c(Distribution::ScrambledZipfian, 10_000).with_sizes(1_000, 100),
            threads_per_client: 96,
            warmup,
            window,
            seed: 22,
            cfg,
            drop_probability: 0.0,
        });
        let tput = out.completed() as f64 / window.as_secs_f64();
        let base = *baseline_tput.get_or_insert(tput);
        t2.row(vec![extra_us.to_string(), f1(tput), pct(tput / base - 1.0)]);
    }
    t2.print();
    t2.write_csv("ablation_flush_cost");

    // ----- Ablation 3: value size vs confirmation benefit ----------------
    let mut t3 = Table::new(
        "Ablation: *CC confirmation benefit vs record size (workload B-Zipfian)",
        &["record_bytes", "CC2_kB_op", "*CC2_kB_op", "saving"],
    );
    for record in [100usize, 400, 1_000, 4_000] {
        let run_one = |sys: SystemConfig| {
            run_ring(&RingSpec {
                sys,
                workload: Workload::b(Distribution::ScrambledZipfian, 1_000)
                    .with_sizes(record, 100),
                threads_per_client: 20,
                warmup,
                window,
                seed: 23,
                cfg: base_cfg(),
                drop_probability: 0.0,
            })
        };
        let cc = run_one(SystemConfig::correctable(2));
        let opt = run_one(SystemConfig::correctable_optimized(2));
        t3.row(vec![
            record.to_string(),
            f2(cc.kb_per_op()),
            f2(opt.kb_per_op()),
            pct(1.0 - opt.kb_per_op() / cc.kb_per_op()),
        ]);
    }
    t3.print();
    t3.write_csv("ablation_confirmation");
    println!(
        "\nTakeaways: read repair trades replication traffic for lower divergence; \
         flushing cost linearly erodes CC throughput (the paper's ~6%); the \
         confirmation optimization's benefit grows with record size."
    );
}
