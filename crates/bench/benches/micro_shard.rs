//! Microbenchmarks of the `icg-shard` routing layer:
//!
//! 1. ring lookup cost;
//! 2. router overhead — an op through the inline sharded router vs. the
//!    same op submitted directly to a single binding;
//! 3. the acceptance headline — batched pipelined throughput vs.
//!    unbatched per-op routing on an 8-shard YCSB-zipfian workload.
//!
//! Per-iteration numbers are ns; the workload benches process
//! [`OPS_PER_ITER`] ops per iteration, so per-op cost is `mean /
//! OPS_PER_ITER` and throughput is `OPS_PER_ITER / mean_seconds` — the
//! derived figures recorded in `BENCH_BASELINE.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use correctables::{Client, LevelSelection, ObjectId};
use icg_shard::{HashRing, KvOp, MemBinding, PipelineConfig, ShardedBinding};
use ycsb::{Distribution, Op, Workload};

const SHARDS: usize = 8;
const VNODES: usize = 128;
const RECORDS: u64 = 1_000;
const OPS_PER_ITER: usize = 8_192;

/// A fixed zipfian op mix (50/50 read/update, the paper's workload A).
fn zipfian_ops() -> Vec<KvOp> {
    let workload = Workload::a(Distribution::Zipfian, RECORDS);
    let mut gen = workload.generator(7);
    (0..OPS_PER_ITER)
        .map(|_| match gen.next_op() {
            Op::Read(k) => KvOp::Get(k),
            Op::Update { key, len } => KvOp::Put(key, len as u64),
        })
        .collect()
}

fn bench_ring(c: &mut Criterion) {
    let ring = HashRing::new(SHARDS as u32, VNODES, 42);
    let mut key = 0u64;
    c.bench_function("shard/ring-lookup-8x128", |b| {
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(ring.owner_index(ObjectId(black_box(key))))
        })
    });
}

fn bench_router_overhead(c: &mut Criterion) {
    // Baseline: one op straight into a single MemBinding.
    let direct = Client::new(MemBinding::default());
    let mut key = 0u64;
    c.bench_function("shard/direct-submit", |b| {
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(direct.invoke(KvOp::Add(key % RECORDS, 1)))
        })
    });

    // Same op through the inline router: the delta is pure routing cost
    // (ring lookup + dispatch), no threads involved.
    let routed = Client::new(ShardedBinding::inline(
        (0..SHARDS).map(|_| MemBinding::default()).collect(),
        VNODES,
        42,
    ));
    let mut key = 0u64;
    c.bench_function("shard/inline-routed-submit", |b| {
        b.iter(|| {
            key = key.wrapping_add(1);
            black_box(routed.invoke(KvOp::Add(key % RECORDS, 1)))
        })
    });
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let ops = zipfian_ops();

    // Unbatched: every op takes the plain per-op submission path and its
    // shard worker drains one job per queue-lock acquisition.
    let unbatched = ShardedBinding::pipelined(
        (0..SHARDS).map(|_| MemBinding::default()).collect(),
        VNODES,
        42,
        PipelineConfig {
            queue_cap: 4_096,
            batch_max: 1,
        },
    );
    let client = Client::new(unbatched.clone());
    c.bench_function("shard/zipfian8-unbatched-8192ops", |b| {
        b.iter(|| {
            let mut last = None;
            for &op in &ops {
                last = Some(client.invoke(op));
            }
            unbatched.quiesce();
            black_box(last.map(|c| c.state()))
        })
    });

    // Batched: producer-side coalescing through `invoke_batch` plus
    // worker-side draining of up to 64 jobs per lock acquisition.
    let batched = ShardedBinding::pipelined(
        (0..SHARDS).map(|_| MemBinding::default()).collect(),
        VNODES,
        42,
        PipelineConfig {
            queue_cap: 4_096,
            batch_max: 64,
        },
    );
    c.bench_function("shard/zipfian8-batched-8192ops", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for chunk in ops.chunks(64) {
                n += batched
                    .invoke_batch(chunk.to_vec(), &LevelSelection::All)
                    .len();
            }
            batched.quiesce();
            black_box(n)
        })
    });
}

fn bench_scatter(c: &mut Criterion) {
    let router = ShardedBinding::inline(
        (0..SHARDS).map(|_| MemBinding::default()).collect(),
        VNODES,
        42,
    );
    c.bench_function("shard/scatter-16keys", |b| {
        b.iter(|| {
            let c = router.scatter((0..16).map(KvOp::Get).collect());
            black_box(c.final_view())
        })
    });
}

criterion_group!(
    benches,
    bench_ring,
    bench_router_overhead,
    bench_pipeline_throughput,
    bench_scatter
);
criterion_main!(benches);
