//! Microbenchmarks of the `icg-crdt` hot paths:
//!
//! 1. state-based anti-entropy — merging two diverged composite states
//!    (the cost one `SyncState` message imposes on a replica);
//! 2. op-based delivery — applying a buffered batch of prepared
//!    downstream effects (the CBCAST drain loop's inner cost);
//! 3. OR-Set prepare+effect round trip (tag allocation + observed-set
//!    bookkeeping, the most allocation-heavy of the shipped types);
//! 4. the escrow fast path — one coordination-free sale against the
//!    local segment, the operation the tickets app rides.
//!
//! Batch benches process [`EFFECTS_PER_ITER`] effects per iteration, so
//! per-effect cost is `mean / EFFECTS_PER_ITER`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use icg_crdt::types::{Crdt, EffectCtx, OrSet, SetOp};
use icg_crdt::{CrdtEffect, CrdtOp, CrdtState, EscrowState};

const REPLICAS: usize = 3;
const GROW_OPS: usize = 200;
const EFFECTS_PER_ITER: usize = 256;

/// Splitmix64 word stream for op decoding.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn decode(w: u64) -> CrdtOp {
    let key = (w >> 3) % 8;
    match w % 5 {
        0 => CrdtOp::CtrAdd(key, ((w >> 5) % 40) as i64 - 20),
        1 => CrdtOp::SetAdd(key, (w >> 5) % 16),
        2 => CrdtOp::SetRemove(key, (w >> 5) % 16),
        3 => CrdtOp::MapPut(key, (w >> 5) % 8, (w >> 7) % 1_000),
        _ => CrdtOp::CtrAdd(key, ((w >> 5) % 7) as i64),
    }
}

/// Grows a composite state from `n` decoded ops at round-robin replicas.
fn grown(seed: u64, n: usize) -> CrdtState {
    let mut state = CrdtState::new();
    let mut seqs = [0u64; REPLICAS];
    let mut w = seed;
    for i in 0..n {
        w = mix(w);
        let r = i % REPLICAS;
        seqs[r] += 1;
        let ctx = EffectCtx {
            replica: r,
            seq: seqs[r],
            lamport: 1 + i as u64,
        };
        let e = state.prepare(&decode(w), ctx);
        state.effect(&e);
    }
    state
}

fn bench_state_merge(c: &mut Criterion) {
    // Two states grown from a shared prefix, then diverged: the shape a
    // replica actually sees when anti-entropy brings a peer's state in.
    let base = grown(11, GROW_OPS);
    let mut a = base.clone();
    let mut b = base;
    for (i, seed) in [(0usize, 77u64), (1, 99)] {
        let target = if i == 0 { &mut a } else { &mut b };
        let mut w = seed;
        for j in 0..GROW_OPS / 2 {
            w = mix(w);
            let ctx = EffectCtx {
                replica: i,
                seq: 1_001 + j as u64,
                lamport: 10_000 + j as u64,
            };
            let e = target.prepare(&decode(w), ctx);
            target.effect(&e);
        }
    }
    c.bench_function("crdt/state-merge-300ops", |bch| {
        bch.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&b));
            black_box(m)
        })
    });
}

fn bench_effect_apply(c: &mut Criterion) {
    // Pre-prepared concurrent effects from all three origins, applied in
    // one drain — the op-mode deliver_buffered inner loop.
    let base = grown(23, GROW_OPS);
    let mut locals: Vec<CrdtState> = (0..REPLICAS).map(|_| base.clone()).collect();
    let mut seqs = [10_000u64; REPLICAS];
    let mut w = 5u64;
    let effects: Vec<CrdtEffect> = (0..EFFECTS_PER_ITER)
        .map(|i| {
            w = mix(w);
            let r = i % REPLICAS;
            seqs[r] += 1;
            let ctx = EffectCtx {
                replica: r,
                seq: seqs[r],
                lamport: 20_000 + i as u64,
            };
            let e = locals[r].prepare(&decode(w), ctx);
            locals[r].effect(&e);
            e
        })
        .collect();
    c.bench_function("crdt/apply-256effects", |bch| {
        bch.iter(|| {
            let mut s = base.clone();
            for e in &effects {
                s.effect(black_box(e));
            }
            black_box(s)
        })
    });
}

fn bench_orset_roundtrip(c: &mut Criterion) {
    let mut set = OrSet::<u64>::default();
    let mut seq = 0u64;
    c.bench_function("crdt/orset-add-remove", |bch| {
        bch.iter(|| {
            seq += 1;
            let add = set.prepare(
                &SetOp::Add(seq % 64),
                EffectCtx {
                    replica: 0,
                    seq,
                    lamport: seq,
                },
            );
            set.effect(&add);
            seq += 1;
            let rm = set.prepare(
                &SetOp::Remove(seq % 64),
                EffectCtx {
                    replica: 0,
                    seq,
                    lamport: seq,
                },
            );
            set.effect(&rm);
            black_box(set.contains(&(seq % 64)))
        })
    });
}

fn bench_escrow_sell(c: &mut Criterion) {
    // One covered sale: the entire coordination-free fast path at the
    // data layer (remaining check + own-row bump).
    let base = EscrowState::new(vec![1_000_000, 0, 0]);
    let mut ledger = base.clone();
    c.bench_function("crdt/escrow-sell", |bch| {
        bch.iter(|| {
            if ledger.remaining(0) == 0 {
                ledger = base.clone();
            }
            black_box(ledger.sell(black_box(0)))
        })
    });

    // The gossip absorption cost for the 3-segment ledger.
    let mut peer = base.clone();
    peer.grant(0, 1, 500);
    for _ in 0..400 {
        peer.sell(1);
    }
    c.bench_function("crdt/escrow-merge", |bch| {
        bch.iter(|| {
            let mut m = base.clone();
            m.merge(black_box(&peer));
            black_box(m.total_sold())
        })
    });
}

criterion_group!(
    benches,
    bench_state_merge,
    bench_effect_apply,
    bench_orset_roundtrip,
    bench_escrow_sell
);
criterion_main!(benches);
