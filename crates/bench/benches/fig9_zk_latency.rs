//! Figure 9 — latency gaps between preliminary and final views for queue
//! enqueues in (Correctable) ZooKeeper.
//!
//! Setup (§6.2.2): ≤20-byte elements; client in IRL; four placements of
//! the contacted server and the leader:
//!
//! 1. follower FRK, leader IRL;
//! 2. leader IRL (client talks to the leader directly);
//! 3. follower IRL, leader VRG;
//! 4. leader VRG.
//!
//! Paper's shape: the preliminary latency equals the client↔server RTT
//! (2 ms / 20 ms / 83 ms depending on placement); the most striking gap is
//! configuration 3 (local follower, distant leader). The text also reports
//! the enqueue bandwidth growing from ~270 B/op (ZK) to ~400 B/op (CZK).

use consensusq::{EnqueueClient, ServerConfig, ZkCluster};
use icg_bench::{f1, f2, quick, Table};
use simnet::Topology;

struct Cfg {
    name: &'static str,
    connect: &'static str,
    leader: &'static str,
}

fn run(cfg: &Cfg, icg: bool, ops: u64, seed: u64) -> (Option<(f64, f64)>, (f64, f64), f64) {
    let sites = ["FRK", "IRL", "VRG"];
    let leader_idx = sites.iter().position(|s| *s == cfg.leader).expect("site");
    let connect_idx = sites.iter().position(|s| *s == cfg.connect).expect("site");
    let mut cluster = ZkCluster::build(
        Topology::ec2_frk_irl_vrg(),
        &sites,
        leader_idx,
        ServerConfig::default(),
        seed,
    );
    let server = cluster.servers[connect_idx];
    let client = EnqueueClient::new(server, icg, "/q", ops, 20);
    let id = cluster.add_client("IRL", Box::new(client));
    cluster.engine.run_until_idle(50_000_000);
    let bytes = cluster.engine.bandwidth().link_bytes(id);
    let c = cluster.engine.node_as::<EnqueueClient>(id);
    assert_eq!(c.completed, ops, "all enqueues must complete");
    let fin = (
        c.final_latency.mean().as_millis_f64(),
        c.final_latency.p99().as_millis_f64(),
    );
    let prelim = (!c.prelim_latency.is_empty()).then(|| {
        (
            c.prelim_latency.mean().as_millis_f64(),
            c.prelim_latency.p99().as_millis_f64(),
        )
    });
    (prelim, fin, bytes as f64 / ops as f64)
}

fn main() {
    let ops: u64 = if quick() { 100 } else { 500 };
    let configs = [
        Cfg {
            name: "follower FRK / leader IRL",
            connect: "FRK",
            leader: "IRL",
        },
        Cfg {
            name: "leader IRL",
            connect: "IRL",
            leader: "IRL",
        },
        Cfg {
            name: "follower IRL / leader VRG",
            connect: "IRL",
            leader: "VRG",
        },
        Cfg {
            name: "leader VRG",
            connect: "VRG",
            leader: "VRG",
        },
    ];
    let mut table = Table::new(
        "Figure 9: enqueue latency, CZK preliminary/final vs ZK (client IRL)",
        &[
            "configuration",
            "system",
            "view",
            "avg_ms",
            "p99_ms",
            "bytes_per_op",
        ],
    );
    for (i, cfg) in configs.iter().enumerate() {
        let (_, zk_fin, zk_bytes) = run(cfg, false, ops, 90 + i as u64);
        table.row(vec![
            cfg.name.into(),
            "ZK".into(),
            "final".into(),
            f2(zk_fin.0),
            f2(zk_fin.1),
            f1(zk_bytes),
        ]);
        let (czk_prelim, czk_fin, czk_bytes) = run(cfg, true, ops, 190 + i as u64);
        let (pa, pp) = czk_prelim.expect("CZK yields preliminaries");
        table.row(vec![
            cfg.name.into(),
            "CZK".into(),
            "preliminary".into(),
            f2(pa),
            f2(pp),
            "-".into(),
        ]);
        table.row(vec![
            cfg.name.into(),
            "CZK".into(),
            "final".into(),
            f2(czk_fin.0),
            f2(czk_fin.1),
            f1(czk_bytes),
        ]);
    }
    table.print();
    table.write_csv("fig9_zk_latency");
    println!(
        "\nExpected shape (paper): preliminary = client-server RTT (20 / 2 / 2 / 83 ms \
         across the four configs); biggest gap with a local follower and the \
         leader in VRG; enqueue cost ~270 B/op (ZK) vs ~400 B/op (CZK)."
    );
}
