//! Figure 12 — selling tickets with ZK vs CZK.
//!
//! Setup (§6.3.2): a fixed stock of 500 tickets, four retailers colocated
//! with the FRK follower, leader in IRL. CZK retailers confirm purchases
//! on the preliminary (locally simulated) dequeue while more than 20
//! tickets remain, then switch to waiting for the final (atomic) view.
//!
//! Paper's shape: purchase latency is low and flat until the last 20
//! tickets, which pay the full strong-consistency latency; on average only
//! the last ~2 tickets (max 6) are "revoked" (the final view popped a
//! different element than predicted).

use consensusq::{DequeueClient, DequeueMode, PurchaseRecord, ServerConfig, ZkCluster};
use icg_bench::{f2, quick, Table};
use simnet::{SimDuration, Topology};

/// Pause between customers at one retailer: purchases pipeline behind the
/// atomic dequeue (the paper's fast path "completes in the background"),
/// bounding how many confirmations can be in flight near sell-out.
const THINK: SimDuration = SimDuration::from_millis(15);

fn run(mode: DequeueMode, stock: u64, retailers: usize, seed: u64) -> Vec<PurchaseRecord> {
    let mut cluster = ZkCluster::build(
        Topology::ec2_frk_irl_vrg(),
        &["FRK", "IRL", "VRG"],
        1, // leader in IRL
        ServerConfig::default(),
        seed,
    );
    cluster.prefill_queue("/q", stock, 20);
    for _ in 0..retailers {
        let server = cluster.servers[0];
        let client = DequeueClient::new(server, mode, "/q").with_think_time(THINK);
        cluster.add_client("FRK", Box::new(client));
    }
    cluster.engine.run_until_idle(500_000_000);
    let mut all: Vec<PurchaseRecord> = Vec::new();
    for id in cluster.clients.clone() {
        let c = cluster.engine.node_as::<DequeueClient>(id);
        all.extend(c.purchases.iter().cloned());
    }
    // Global selling order.
    all.sort_by_key(|p| p.confirmed_at);
    all
}

fn mean_latency(records: &[PurchaseRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|p| p.latency_ms).sum::<f64>() / records.len() as f64
}

fn main() {
    let stock: u64 = if quick() { 200 } else { 500 };
    let threshold = 20usize;
    let runs: u64 = if quick() { 2 } else { 5 };

    let mut table = Table::new(
        "Figure 12: ticket purchase latency (500 tickets, 4 retailers)",
        &[
            "system",
            "phase",
            "tickets",
            "avg_latency_ms",
            "prelim_confirmed",
            "revoked",
            "prediction_changed",
        ],
    );

    let mut series: Vec<(u64, f64, f64)> = Vec::new(); // (ticket#, czk, zk)
    for run_idx in 0..runs {
        let czk = run(
            DequeueMode::CzkAtomic {
                threshold: threshold as u64,
            },
            stock,
            4,
            500 + run_idx,
        );
        let zk = run(DequeueMode::ZkRecipe, stock, 4, 600 + run_idx);
        let sold = czk.iter().filter(|p| !p.revoked).count();
        let early = &czk[..sold.saturating_sub(threshold)];
        let late = &czk[sold.saturating_sub(threshold)..];
        table.row(vec![
            "CZK".into(),
            format!("run{} first {}", run_idx, early.len()),
            early.len().to_string(),
            f2(mean_latency(early)),
            early.iter().filter(|p| p.used_prelim).count().to_string(),
            czk.iter().filter(|p| p.revoked).count().to_string(),
            czk.iter()
                .filter(|p| p.prediction_changed)
                .count()
                .to_string(),
        ]);
        table.row(vec![
            "CZK".into(),
            format!("run{} last {}", run_idx, late.len()),
            late.len().to_string(),
            f2(mean_latency(late)),
            late.iter().filter(|p| p.used_prelim).count().to_string(),
            "-".into(),
            "-".into(),
        ]);
        table.row(vec![
            "ZK".into(),
            format!("run{} all", run_idx),
            zk.len().to_string(),
            f2(mean_latency(&zk)),
            "0".into(),
            "0".into(),
            "-".into(),
        ]);
        if run_idx == 0 {
            for (i, p) in czk.iter().enumerate() {
                let z = zk.get(i).map(|p| p.latency_ms).unwrap_or(0.0);
                series.push((i as u64 + 1, p.latency_ms, z));
            }
        }
    }
    table.print();
    table.write_csv("fig12_tickets_summary");

    // The per-ticket series of the figure itself.
    let mut series_table = Table::new(
        "Figure 12 series: per-ticket purchase latency (run 0)",
        &["ticket", "CZK_ms", "ZK_ms"],
    );
    for (t, c, z) in &series {
        series_table.row(vec![t.to_string(), f2(*c), f2(*z)]);
    }
    series_table.write_csv("fig12_tickets_series");
    println!(
        "\nExpected shape (paper): CZK latency low (~prelim RTT) until the last \
         {threshold} tickets, which pay strong-consistency latency like ZK; \
         only ~2 tickets (max 6) revoked on average."
    );
}
