//! Criterion microbenchmarks of the simulation substrate: raw event
//! throughput of the engine and the cost of workload generation — these
//! bound how fast the paper-figure harnesses can run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use simnet::{Ctx, Engine, Node, NodeId, SimDuration, Topology, Wire};
use ycsb::{Distribution, Workload};

#[derive(Debug)]
struct Ball(u32);
impl Wire for Ball {
    fn wire_size(&self) -> usize {
        64
    }
}

struct Bouncer {
    peer: Option<NodeId>,
    remaining: u32,
}

impl Node<Ball> for Bouncer {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Ball>, from: NodeId, msg: Ball) {
        self.peer = Some(from);
        if msg.0 > 0 && self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, Ball(msg.0));
        }
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("simnet/ping-pong-10k-events", |b| {
        b.iter(|| {
            let topo = Topology::ec2_frk_irl_vrg();
            let frk = topo.site_named("FRK").unwrap();
            let irl = topo.site_named("IRL").unwrap();
            let mut eng = Engine::new(topo, 1);
            let a = eng.add_node(
                frk,
                Box::new(Bouncer {
                    peer: None,
                    remaining: 5_000,
                }),
            );
            let bnode = eng.add_node(
                irl,
                Box::new(Bouncer {
                    peer: None,
                    remaining: 5_000,
                }),
            );
            eng.schedule_message(a, bnode, SimDuration::ZERO, Ball(1));
            black_box(eng.run_until_idle(100_000))
        })
    });
}

fn bench_ycsb(c: &mut Criterion) {
    c.bench_function("ycsb/zipfian-draw", |b| {
        let w = Workload::a(Distribution::Zipfian, 10_000);
        let mut g = w.generator(9);
        b.iter(|| black_box(g.next_op()))
    });
    c.bench_function("ycsb/latest-draw", |b| {
        let w = Workload::a(Distribution::Latest, 10_000);
        let mut g = w.generator(9);
        b.iter(|| black_box(g.next_op()))
    });
    c.bench_function("ycsb/scrambled-zipfian-draw", |b| {
        let w = Workload::a(Distribution::ScrambledZipfian, 10_000);
        let mut g = w.generator(9);
        b.iter(|| black_box(g.next_op()))
    });
}

criterion_group!(benches, bench_engine, bench_ycsb);
criterion_main!(benches);
