//! Figure 7 — divergence of preliminary from final (correct) views.
//!
//! Setup (§6.2.1): Correctable Cassandra (CC2) on a small 1 K-object
//! dataset, YCSB workloads A and B under the Latest and (scrambled)
//! Zipfian request distributions, with 30–300 total client threads across
//! the three region clients.
//!
//! Paper's shape: divergence grows with load and write ratio; workload A
//! under Latest reaches ~25%, Zipfian stays much lower, and workload B
//! (5% writes) stays in the low single digits.

use icg_bench::{pct, quick, ring::run_ring, ring::RingSpec, Table};
use quorumstore::{ReplicaConfig, SystemConfig};
use simnet::SimDuration;
use ycsb::{Distribution, Workload};

/// The divergence study needs the staleness to come from replication lag
/// and hot-key contention rather than from deep host saturation, so the
/// replicas run with lighter per-op service costs than the load study.
fn divergence_cfg() -> ReplicaConfig {
    ReplicaConfig {
        read_service: SimDuration::from_micros(150),
        write_service: SimDuration::from_micros(150),
        peer_read_service: SimDuration::from_micros(90),
        peer_write_service: SimDuration::from_micros(80),
        prelim_flush_extra: SimDuration::from_micros(10),
        ..ReplicaConfig::default()
    }
}

fn main() {
    let (warmup_s, window_s) = if quick() { (2, 6) } else { (5, 20) };
    let totals: Vec<u32> = if quick() {
        vec![30, 120, 300]
    } else {
        vec![30, 60, 120, 180, 240, 300]
    };
    let mut table = Table::new(
        "Figure 7: % divergence of preliminary vs final views (CC2, 1K objects)",
        &["workload", "distribution", "total_threads", "divergence"],
    );
    let cases: Vec<(&str, f64, Distribution, &str)> = vec![
        ("A", 0.5, Distribution::Latest, "Latest"),
        ("A", 0.5, Distribution::ScrambledZipfian, "Zipfian"),
        ("B", 0.95, Distribution::Latest, "Latest"),
        ("B", 0.95, Distribution::ScrambledZipfian, "Zipfian"),
    ];
    for (wl_name, read_prop, dist, dist_name) in &cases {
        for (i, total) in totals.iter().enumerate() {
            let mut workload = Workload::a(*dist, 1_000).with_sizes(1_000, 100);
            workload.read_proportion = *read_prop;
            let spec = RingSpec {
                sys: SystemConfig::correctable(2),
                workload,
                threads_per_client: total / 3,
                warmup: SimDuration::from_secs(warmup_s),
                window: SimDuration::from_secs(window_s),
                seed: 7000 + i as u64,
                cfg: divergence_cfg(),
                drop_probability: 0.0,
            };
            let out = run_ring(&spec);
            table.row(vec![
                wl_name.to_string(),
                dist_name.to_string(),
                total.to_string(),
                pct(out.divergence()),
            ]);
        }
    }
    table.print();
    table.write_csv("fig7_divergence");
    println!(
        "\nExpected shape (paper): A-Latest highest (up to ~25%), then A-Zipfian; \
         workload B variants stay low; divergence grows with thread count."
    );
}
