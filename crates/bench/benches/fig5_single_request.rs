//! Figure 5 — single-request read latencies in (Correctable) Cassandra
//! for different quorum configurations.
//!
//! Setup (§6.2.1): read-only microbenchmark on 100-byte objects; client in
//! IRL contacting the coordinator replica in FRK; replicas in FRK, IRL,
//! and VRG. Compared systems, grouped by read quorum: C3 vs CC3-final,
//! C2 vs CC2-final, C1 vs CC2/CC3 preliminaries. Reported: average and
//! 99th-percentile latency.
//!
//! Paper's headline numbers: preliminary ≈ C1 ≈ 20 ms (the IRL–FRK RTT);
//! CC2 final − preliminary gap ≈ 20 ms (FRK gathers IRL); CC3 gap up to
//! ~140 ms at the 99th percentile (FRK must reach VRG).

use icg_bench::{f2, quick, Table};
use quorumstore::{Cluster, ReplicaConfig, SystemConfig, WorkloadClient};
use simnet::{EuUsSites, SimDuration, Topology};
use ycsb::{Distribution, Workload};

struct RunOut {
    prelim: Option<(f64, f64)>,
    fin: (f64, f64),
}

fn run(sys: SystemConfig, seed: u64, seconds: u64) -> RunOut {
    let topo = Topology::ec2_frk_irl_vrg();
    let sites = EuUsSites::resolve(&topo);
    let mut cluster = Cluster::build(topo, &["FRK", "IRL", "VRG"], ReplicaConfig::default(), seed);
    let workload = Workload::c(Distribution::Zipfian, 1_000).with_sizes(100, 100);
    cluster
        .preload((0..1_000).map(|i| (quorumstore::Key::plain(i), quorumstore::Value::Opaque(100))));
    let warmup = SimDuration::from_secs(1);
    let window = SimDuration::from_secs(seconds);
    let (from, until) = Cluster::window(warmup, window);
    let frk = cluster.replicas[0];
    // One sequential requester: single-request latency, no queueing.
    let client = WorkloadClient::new(frk, sys, &workload, 1, seed ^ 0xABCD, from, until);
    cluster.add_client(sites.irl, client);
    cluster.run_measured(warmup, window);
    let id = cluster.clients[0];
    let m = &mut cluster.engine.node_as::<WorkloadClient>(id).metrics;
    let fin = (
        m.final_latency.mean().as_millis_f64(),
        m.final_latency.p99().as_millis_f64(),
    );
    let prelim = (!m.prelim_latency.is_empty()).then(|| {
        (
            m.prelim_latency.mean().as_millis_f64(),
            m.prelim_latency.p99().as_millis_f64(),
        )
    });
    RunOut { prelim, fin }
}

fn main() {
    let seconds = if quick() { 5 } else { 30 };
    let mut table = Table::new(
        "Figure 5: single-request read latency (client IRL, coordinator FRK)",
        &["system", "view", "avg_ms", "p99_ms"],
    );
    let systems: Vec<(SystemConfig, &str)> = vec![
        (SystemConfig::baseline(1), "C1"),
        (SystemConfig::baseline(2), "C2"),
        (SystemConfig::baseline(3), "C3"),
        (SystemConfig::correctable(2), "CC2"),
        (SystemConfig::correctable(3), "CC3"),
    ];
    for (i, (sys, label)) in systems.into_iter().enumerate() {
        let out = run(sys, 42 + i as u64, seconds);
        if let Some((avg, p99)) = out.prelim {
            table.row(vec![
                label.to_string(),
                "preliminary".into(),
                f2(avg),
                f2(p99),
            ]);
        }
        table.row(vec![
            label.to_string(),
            "final".into(),
            f2(out.fin.0),
            f2(out.fin.1),
        ]);
    }
    table.print();
    table.write_csv("fig5_single_request");
    println!(
        "\nExpected shape (paper): prelim ~= C1 ~= 20ms; CC2 final ~= C2 ~= 40ms \
         (gap = FRK-IRL RTT); CC3 final ~= C3 with a much larger gap (FRK-VRG)."
    );
}
