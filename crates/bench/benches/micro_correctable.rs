//! Criterion microbenchmarks of the core Correctables abstraction:
//! the per-operation cost of the library itself (object creation, view
//! delivery, callback dispatch, speculation bookkeeping).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use correctables::{ConsistencyLevel, Correctable, LevelSelection, LevelSet};

fn bench_lifecycle(c: &mut Criterion) {
    c.bench_function("correctable/create+close", |b| {
        b.iter(|| {
            let (c, h) = Correctable::<u64>::pending();
            h.close(black_box(7), ConsistencyLevel::STRONG).unwrap();
            black_box(c.final_view())
        })
    });

    c.bench_function("correctable/update+close", |b| {
        b.iter(|| {
            let (c, h) = Correctable::<u64>::pending();
            h.update(black_box(1), ConsistencyLevel::WEAK).unwrap();
            h.close(black_box(2), ConsistencyLevel::STRONG).unwrap();
            black_box(c.final_view())
        })
    });

    c.bench_function("correctable/callback-dispatch", |b| {
        b.iter(|| {
            let (c, h) = Correctable::<u64>::pending();
            let sink = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
            let s = std::sync::Arc::clone(&sink);
            c.on_update(move |v| {
                s.fetch_add(v.value, std::sync::atomic::Ordering::Relaxed);
            });
            let s2 = std::sync::Arc::clone(&sink);
            c.on_final(move |v| {
                s2.fetch_add(v.value, std::sync::atomic::Ordering::Relaxed);
            });
            h.update(1, ConsistencyLevel::WEAK).unwrap();
            h.close(2, ConsistencyLevel::STRONG).unwrap();
            black_box(sink.load(std::sync::atomic::Ordering::Relaxed))
        })
    });

    c.bench_function("correctable/speculate-confirmed", |b| {
        b.iter(|| {
            let (c, h) = Correctable::<u64>::pending();
            let out = c.speculate(|x| x * 2);
            h.update(black_box(21), ConsistencyLevel::WEAK).unwrap();
            h.close(black_box(21), ConsistencyLevel::STRONG).unwrap();
            black_box(out.final_view())
        })
    });

    c.bench_function("correctable/speculate-misspeculated", |b| {
        b.iter(|| {
            let (c, h) = Correctable::<u64>::pending();
            let out = c.speculate(|x| x * 2);
            h.update(black_box(1), ConsistencyLevel::WEAK).unwrap();
            h.close(black_box(2), ConsistencyLevel::STRONG).unwrap();
            black_box(out.final_view())
        })
    });

    // The per-invoke level-selection path: build an `Only` selection
    // from a slice and resolve it against a binding's advertised set.
    // `LevelSet` stores up to six levels inline, so this whole path is
    // allocation-free — the perf gate keeps it that way.
    c.bench_function("correctable/selection-only+resolve", |b| {
        let available = LevelSet::of(&[
            ConsistencyLevel::WEAK,
            ConsistencyLevel::UPDATE,
            ConsistencyLevel::CAUSAL,
            ConsistencyLevel::STRONG,
        ]);
        let want = [
            ConsistencyLevel::WEAK,
            ConsistencyLevel::CAUSAL,
            ConsistencyLevel::STRONG,
        ];
        b.iter(|| {
            let sel = LevelSelection::only(black_box(&want));
            black_box(sel.resolve(&available).unwrap())
        })
    });

    c.bench_function("correctable/join_all-16", |b| {
        b.iter(|| {
            let pairs: Vec<_> = (0..16).map(|_| Correctable::<u64>::pending()).collect();
            let joined = Correctable::join_all(pairs.iter().map(|(c, _)| c.clone()).collect());
            for (i, (_, h)) in pairs.iter().enumerate() {
                h.close(i as u64, ConsistencyLevel::STRONG).unwrap();
            }
            black_box(joined.final_view())
        })
    });
}

criterion_group!(benches, bench_lifecycle);
criterion_main!(benches);
