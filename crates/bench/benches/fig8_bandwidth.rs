//! Figure 8 — client-link bandwidth efficiency (kB per operation).
//!
//! Setup (§6.2.1): the divergence benchmark's worst-case conditions (1 K
//! objects, Latest/Zipfian, 30–300 threads), comparing C1 (single weak
//! read), CC2 (ICG without optimization) and *CC2 (ICG with the
//! confirmation-message optimization).
//!
//! Paper's headline numbers: on workload A (high divergence) *CC2 costs
//! +27% over C1 while unoptimized CC2 costs +77%; on workload B the
//! optimization cuts the overhead from +90% to +15%.

use icg_bench::{f2, pct, quick, ring::run_ring, ring::RingSpec, Table};
use quorumstore::{ReplicaConfig, SystemConfig};
use simnet::SimDuration;
use ycsb::{Distribution, Workload};

/// Figure 8 runs under "the exact conditions we use in the divergence
/// benchmark" (§6.2.1), so it shares Figure 7's replica tuning.
fn divergence_cfg() -> ReplicaConfig {
    ReplicaConfig {
        read_service: SimDuration::from_micros(150),
        write_service: SimDuration::from_micros(150),
        peer_read_service: SimDuration::from_micros(90),
        peer_write_service: SimDuration::from_micros(80),
        prelim_flush_extra: SimDuration::from_micros(10),
        ..ReplicaConfig::default()
    }
}

fn main() {
    let (warmup_s, window_s) = if quick() { (2, 6) } else { (5, 20) };
    let totals: Vec<u32> = if quick() {
        vec![30, 300]
    } else {
        vec![30, 60, 120, 180, 240, 300]
    };
    let mut table = Table::new(
        "Figure 8: client bandwidth per op (kB/op), C1 vs CC2 vs *CC2",
        &[
            "workload",
            "distribution",
            "total_threads",
            "C1",
            "CC2",
            "*CC2",
            "CC2_overhead",
            "*CC2_overhead",
            "divergence",
        ],
    );
    let cases: Vec<(&str, f64, Distribution, &str)> = vec![
        ("A", 0.5, Distribution::Latest, "Latest"),
        ("A", 0.5, Distribution::ScrambledZipfian, "Zipfian"),
        ("B", 0.95, Distribution::Latest, "Latest"),
        ("B", 0.95, Distribution::ScrambledZipfian, "Zipfian"),
    ];
    for (wl_name, read_prop, dist, dist_name) in &cases {
        for (i, total) in totals.iter().enumerate() {
            let run_one = |sys: SystemConfig, salt: u64| {
                let mut workload = Workload::a(*dist, 1_000).with_sizes(1_000, 100);
                workload.read_proportion = *read_prop;
                run_ring(&RingSpec {
                    sys,
                    workload,
                    threads_per_client: total / 3,
                    warmup: SimDuration::from_secs(warmup_s),
                    window: SimDuration::from_secs(window_s),
                    seed: 8100 + i as u64 + salt * 131,
                    cfg: divergence_cfg(),
                    drop_probability: 0.0,
                })
            };
            let c1 = run_one(SystemConfig::baseline(1), 1);
            let cc2 = run_one(SystemConfig::correctable(2), 2);
            let opt = run_one(SystemConfig::correctable_optimized(2), 3);
            let (b1, b2, b3) = (c1.kb_per_op(), cc2.kb_per_op(), opt.kb_per_op());
            table.row(vec![
                wl_name.to_string(),
                dist_name.to_string(),
                total.to_string(),
                f2(b1),
                f2(b2),
                f2(b3),
                pct(b2 / b1 - 1.0),
                pct(b3 / b1 - 1.0),
                pct(opt.divergence()),
            ]);
        }
    }
    table.print();
    table.write_csv("fig8_bandwidth");
    println!(
        "\nExpected shape (paper, workload A-Latest): CC2 ~ +77% over C1; \
         *CC2 ~ +27%; workload B: +90% cut to +15%."
    );
}
