//! # icg-bench — harness utilities for regenerating the paper's figures
//!
//! Each `benches/figN_*.rs` target (run via `cargo bench`) regenerates one
//! table or figure of the paper's evaluation on the simulator, printing
//! the series to stdout and writing CSV files under
//! `target/paper_results/`. Set `ICG_QUICK=1` to run abbreviated sweeps.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Whether abbreviated sweeps were requested (`ICG_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("ICG_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The directory experiment CSVs are written to
/// (`<workspace>/target/paper_results`, or under `CARGO_TARGET_DIR`).
pub fn out_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // This crate lives at <workspace>/crates/bench.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        });
    let dir = target.join("paper_results");
    fs::create_dir_all(&dir).expect("create paper_results dir");
    dir
}

/// A printable, CSV-exportable results table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as `<name>.csv` under [`out_dir`].
    pub fn write_csv(&self, name: &str) {
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        let path = out_dir().join(format!("{name}.csv"));
        fs::write(&path, csv).expect("write csv");
        println!("[csv] {}", path.display());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_checks_columns() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("bee"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_length_is_enforced() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(2.34), "2.3");
        assert_eq!(pct(0.256), "25.6%");
    }
}

/// Shared deployment runner for the Cassandra-side experiments
/// (Figures 6, 7, and 8): the paper's three-region setup with one client
/// per region, each connected to a remote coordinator.
pub mod ring {
    use quorumstore::{
        ClientMetrics, Cluster, Key, ReplicaConfig, SystemConfig, Value, WorkloadClient,
    };
    use simnet::{EuUsSites, Faults, SimDuration, Topology};
    use ycsb::Workload;

    /// One trial's configuration.
    pub struct RingSpec {
        /// System under test (C1/C2/CC2/*CC2…).
        pub sys: SystemConfig,
        /// YCSB workload.
        pub workload: Workload,
        /// Virtual client threads per region client.
        pub threads_per_client: u32,
        /// Warm-up before measurement starts.
        pub warmup: SimDuration,
        /// Measurement window.
        pub window: SimDuration,
        /// RNG seed.
        pub seed: u64,
        /// Replica tuning.
        pub cfg: ReplicaConfig,
        /// Uniform message-loss probability (0 = fault free).
        pub drop_probability: f64,
    }

    /// One trial's results.
    pub struct RingOut {
        /// Per-client metrics, in order IRL, FRK, VRG.
        pub clients: Vec<ClientMetrics>,
        /// Bytes crossing all client links during the window.
        pub client_link_bytes: u64,
        /// The measurement window.
        pub window: SimDuration,
    }

    impl RingOut {
        /// Aggregate operations completed in the window.
        pub fn completed(&self) -> u64 {
            self.clients.iter().map(|c| c.completed()).sum()
        }

        /// Aggregate divergence across all clients' ICG reads.
        pub fn divergence(&self) -> f64 {
            let icg: u64 = self.clients.iter().map(|c| c.icg_reads).sum();
            let div: u64 = self.clients.iter().map(|c| c.divergent).sum();
            if icg == 0 {
                0.0
            } else {
                div as f64 / icg as f64
            }
        }

        /// Client-link bandwidth per completed operation, in kB.
        pub fn kb_per_op(&self) -> f64 {
            let ops = self.completed();
            if ops == 0 {
                0.0
            } else {
                self.client_link_bytes as f64 / ops as f64 / 1000.0
            }
        }

        /// The IRL client's throughput over the window (the paper reports
        /// the IRL client).
        pub fn irl_throughput(&self) -> f64 {
            self.clients[0].completed() as f64 / self.window.as_secs_f64()
        }
    }

    /// Runs one trial: replicas FRK/IRL/VRG; clients IRL→FRK, FRK→VRG,
    /// VRG→IRL (each to a remote coordinator, as in §6.2.1).
    pub fn run_ring(spec: &RingSpec) -> RingOut {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = EuUsSites::resolve(&topo);
        let mut cluster = Cluster::build(topo, &["FRK", "IRL", "VRG"], spec.cfg, spec.seed);
        if spec.drop_probability > 0.0 {
            cluster
                .engine
                .set_faults(Faults::none().with_drop_probability(spec.drop_probability));
        }
        let records = spec.workload.record_count;
        let len = spec.workload.value_size as u32;
        cluster.preload((0..records).map(|i| (Key::plain(i), Value::Opaque(len))));
        let (from, until) = Cluster::window(spec.warmup, spec.window);
        // Client placements: (client site, coordinator replica index).
        let placements = [
            (sites.irl, 0usize), // IRL client → FRK coordinator
            (sites.frk, 2),      // FRK client → VRG coordinator
            (sites.vrg, 1),      // VRG client → IRL coordinator
        ];
        for (i, (site, coord)) in placements.iter().enumerate() {
            let client = WorkloadClient::new(
                cluster.replicas[*coord],
                spec.sys,
                &spec.workload,
                spec.threads_per_client,
                spec.seed.wrapping_add(i as u64 * 7919),
                from,
                until,
            );
            cluster.add_client(*site, client);
        }
        cluster.run_measured(spec.warmup, spec.window);
        let mut link_bytes = 0;
        for id in cluster.clients.clone() {
            link_bytes += cluster.engine.bandwidth().link_bytes(id);
        }
        let clients: Vec<ClientMetrics> = cluster
            .clients
            .clone()
            .into_iter()
            .map(|id| cluster.engine.node_as::<WorkloadClient>(id).metrics.clone())
            .collect();
        RingOut {
            clients,
            client_link_bytes: link_bytes,
            window: spec.window,
        }
    }
}
