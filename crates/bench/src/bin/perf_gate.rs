//! The perf gate: turns the criterion shim's per-benchmark JSON Lines
//! into the committed `BENCH_*.json` trajectory format, and compares a
//! fresh measurement against a committed baseline, failing (exit 1) on
//! mean regressions beyond a threshold in any gated benchmark.
//!
//! Subcommands:
//!
//! ```text
//! perf_gate merge <lines.jsonl> <out.json>
//! perf_gate compare <baseline.json> <current.json>
//!     [--threshold 0.20] [--gate <suite>/<benchmark>]...
//! ```
//!
//! `merge` nests the flat records into `suites → benchmark → {mean_ns,
//! median_ns, p95_ns, samples}` with deterministic (sorted) key order.
//! `compare` checks each gated benchmark's `mean_ns`; with no `--gate`
//! flags it defaults to the three headline hot-path benchmarks. The JSON
//! handling is self-contained (the workspace is offline; no serde).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

/// A minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Per-benchmark statistics as stored in the trajectory files.
#[derive(Clone, Copy, Debug)]
struct Stats {
    mean_ns: f64,
    median_ns: f64,
    p95_ns: f64,
    samples: u64,
}

type SuiteMap = BTreeMap<String, BTreeMap<String, Stats>>;

fn field(obj: &Json, name: &str, ctx: &str) -> Result<f64, String> {
    obj.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric field '{name}'"))
}

fn stats_of(obj: &Json, ctx: &str) -> Result<Stats, String> {
    Ok(Stats {
        mean_ns: field(obj, "mean_ns", ctx)?,
        median_ns: field(obj, "median_ns", ctx)?,
        p95_ns: field(obj, "p95_ns", ctx)?,
        samples: field(obj, "samples", ctx).unwrap_or(0.0) as u64,
    })
}

/// Reads a merged trajectory file (`{"schema": ..., "suites": {...}}`).
fn read_trajectory(path: &str) -> Result<SuiteMap, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let suites = doc
        .get("suites")
        .ok_or_else(|| format!("{path}: missing 'suites' object"))?;
    let Json::Obj(suites) = suites else {
        return Err(format!("{path}: 'suites' is not an object"));
    };
    let mut out = SuiteMap::new();
    for (suite, benches) in suites {
        let Json::Obj(benches) = benches else {
            return Err(format!("{path}: suite '{suite}' is not an object"));
        };
        let entry = out.entry(suite.clone()).or_default();
        for (bench, stats) in benches {
            entry.insert(bench.clone(), stats_of(stats, &format!("{suite}/{bench}"))?);
        }
    }
    Ok(out)
}

/// Reads the criterion shim's JSON Lines output.
fn read_lines(path: &str) -> Result<SuiteMap, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = SuiteMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ctx = format!("{path}:{}", i + 1);
        let rec = parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        let suite = rec
            .get("suite")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'suite'"))?
            .to_string();
        let bench = rec
            .get("benchmark")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing 'benchmark'"))?
            .to_string();
        // Later records win, so re-running one suite refreshes its rows.
        out.entry(suite)
            .or_default()
            .insert(bench, stats_of(&rec, &ctx)?);
    }
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_trajectory(path: &str, suites: &SuiteMap) -> Result<(), String> {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"icg-bench-v1\",\n  \"unit\": \"ns/iter\",\n  \"suites\": {\n");
    let mut first_suite = true;
    for (suite, benches) in suites {
        if !first_suite {
            out.push_str(",\n");
        }
        first_suite = false;
        let _ = writeln!(out, "    \"{}\": {{", json_escape(suite));
        let mut first_bench = true;
        for (bench, s) in benches {
            if !first_bench {
                out.push_str(",\n");
            }
            first_bench = false;
            let _ = write!(
                out,
                "      \"{}\": {{\"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"samples\": {}}}",
                json_escape(bench),
                s.mean_ns,
                s.median_ns,
                s.p95_ns,
                s.samples
            );
        }
        out.push_str("\n    }");
    }
    out.push_str("\n  }\n}\n");
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

/// The benchmarks gated by default: the three hot paths every harness
/// sits on (see BENCH_BASELINE.md).
const DEFAULT_GATES: &[&str] = &[
    "micro_correctable/correctable/update+close",
    "micro_correctable/correctable/callback-dispatch",
    "micro_correctable/correctable/selection-only+resolve",
    "micro_simnet/simnet/ping-pong-10k-events",
];

fn lookup<'a>(suites: &'a SuiteMap, gate: &str) -> Option<&'a Stats> {
    // A gate is "<suite>/<benchmark>"; benchmark ids contain '/' too, so
    // split on the first separator only.
    let (suite, bench) = gate.split_once('/')?;
    suites.get(suite)?.get(bench)
}

fn cmd_merge(lines_path: &str, out_path: &str) -> Result<(), String> {
    let suites = read_lines(lines_path)?;
    if suites.is_empty() {
        return Err(format!("{lines_path}: no benchmark records"));
    }
    write_trajectory(out_path, &suites)?;
    let n: usize = suites.values().map(BTreeMap::len).sum();
    println!(
        "perf_gate: merged {} benchmarks across {} suites into {}",
        n,
        suites.len(),
        out_path
    );
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<bool, String> {
    let mut threshold = 0.20f64;
    let mut gates: Vec<String> = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --threshold: {e}"))?;
            }
            "--gate" => {
                gates.push(it.next().ok_or("--gate needs a value")?.clone());
            }
            _ => positional.push(a.clone()),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        return Err("usage: perf_gate compare <baseline.json> <current.json> \
                    [--threshold 0.20] [--gate suite/benchmark]..."
            .to_string());
    };
    if gates.is_empty() {
        gates = DEFAULT_GATES.iter().map(|s| s.to_string()).collect();
    }
    let baseline = read_trajectory(baseline_path)?;
    let current = read_trajectory(current_path)?;

    let mut failed = false;
    println!(
        "perf_gate: mean-regression threshold {:.0}% against {}",
        threshold * 100.0,
        baseline_path
    );
    println!(
        "{:<52} {:>12} {:>12} {:>8}  verdict",
        "gated benchmark", "base mean", "cur mean", "ratio"
    );
    for gate in &gates {
        let base = lookup(&baseline, gate);
        let cur = lookup(&current, gate);
        match (base, cur) {
            (Some(b), Some(c)) => {
                let ratio = c.mean_ns / b.mean_ns;
                let ok = ratio <= 1.0 + threshold;
                if !ok {
                    failed = true;
                }
                println!(
                    "{:<52} {:>12.1} {:>12.1} {:>7.2}x  {}",
                    gate,
                    b.mean_ns,
                    c.mean_ns,
                    ratio,
                    if ok { "ok" } else { "REGRESSION" }
                );
            }
            (None, _) => {
                failed = true;
                println!("{gate:<52} missing from baseline — FAIL");
            }
            (_, None) => {
                failed = true;
                println!("{gate:<52} missing from current run — FAIL");
            }
        }
    }
    if failed {
        println!(
            "perf_gate: FAILED — a gated benchmark regressed by more than {:.0}% \
             (or is missing)",
            threshold * 100.0
        );
    } else {
        println!("perf_gate: ok — no gated benchmark regressed");
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("merge") if args.len() == 3 => cmd_merge(&args[1], &args[2]).map(|()| true),
        Some("compare") => cmd_compare(&args[1..]),
        _ => Err("usage: perf_gate merge <lines.jsonl> <out.json> | \
                  perf_gate compare <baseline.json> <current.json> \
                  [--threshold 0.20] [--gate suite/benchmark]..."
            .to_string()),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x\"y"], "c": true}, "d": null}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().get("b"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Str("x\"y".into())
            ]))
        );
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn gate_lookup_splits_on_first_slash() {
        let mut suites = SuiteMap::new();
        suites
            .entry("micro_correctable".into())
            .or_default()
            .insert(
                "correctable/update+close".into(),
                Stats {
                    mean_ns: 1.0,
                    median_ns: 1.0,
                    p95_ns: 1.0,
                    samples: 1,
                },
            );
        assert!(lookup(&suites, "micro_correctable/correctable/update+close").is_some());
        assert!(lookup(&suites, "micro_correctable/missing").is_none());
        assert!(lookup(&suites, "noslash").is_none());
    }

    #[test]
    fn merge_and_trajectory_round_trip() {
        let dir = std::env::temp_dir().join(format!("perf_gate_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let lines = dir.join("lines.jsonl");
        let out = dir.join("out.json");
        std::fs::write(
            &lines,
            concat!(
                "{\"suite\":\"s1\",\"benchmark\":\"a/b\",\"mean_ns\":10.5,\"median_ns\":10.0,\"p95_ns\":12.0,\"samples\":100}\n",
                "{\"suite\":\"s1\",\"benchmark\":\"a/b\",\"mean_ns\":11.5,\"median_ns\":11.0,\"p95_ns\":13.0,\"samples\":200}\n",
                "{\"suite\":\"s2\",\"benchmark\":\"c\",\"mean_ns\":1.0,\"median_ns\":1.0,\"p95_ns\":1.0,\"samples\":5}\n",
            ),
        )
        .unwrap();
        cmd_merge(lines.to_str().unwrap(), out.to_str().unwrap()).unwrap();
        let suites = read_trajectory(out.to_str().unwrap()).unwrap();
        // The later record for s1/a/b wins.
        let s = lookup(&suites, "s1/a/b").unwrap();
        assert_eq!(s.mean_ns, 11.5);
        assert_eq!(s.samples, 200);
        assert!(lookup(&suites, "s2/c").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
