//! Property-based tests of the simulation substrate.

use proptest::prelude::*;

use simnet::{Ctx, DetRng, Engine, Histogram, Node, NodeId, SimDuration, SimTime, Topology, Wire};

#[derive(Debug, Clone)]
struct Tick(u64);
impl Wire for Tick {
    fn wire_size(&self) -> usize {
        16
    }
}

/// Records the times at which messages execute.
struct Recorder {
    seen: Vec<(u64, SimTime)>,
    service: SimDuration,
}

impl Node<Tick> for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Tick>, _from: NodeId, msg: Tick) {
        self.seen.push((msg.0, ctx.now()));
    }
    fn service_cost(&self, _msg: &Tick) -> SimDuration {
        self.service
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

proptest! {
    /// Virtual time never runs backwards, whatever the message schedule.
    #[test]
    fn execution_times_are_monotone(
        delays in proptest::collection::vec(0u64..500, 1..50),
        service_us in 0u64..2_000,
    ) {
        let topo = Topology::single_site();
        let mut eng = Engine::new(topo, 7);
        let n = eng.add_node(
            simnet::SiteId(0),
            Box::new(Recorder { seen: Vec::new(), service: SimDuration::from_micros(service_us) }),
        );
        for (i, d) in delays.iter().enumerate() {
            eng.schedule_message(n, n, SimDuration::from_millis(*d), Tick(i as u64));
        }
        eng.run_until_idle(1_000_000);
        let rec = eng.node_as::<Recorder>(n);
        prop_assert_eq!(rec.seen.len(), delays.len());
        for w in rec.seen.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "time went backwards");
        }
    }

    /// The single-server queue conserves work: with service time `s` and
    /// `n` simultaneous arrivals, the last execution happens at `n * s`.
    #[test]
    fn service_queue_conserves_work(n in 1u64..40, service_us in 1u64..5_000) {
        let topo = Topology::single_site();
        let mut eng = Engine::new(topo, 3);
        let node = eng.add_node(
            simnet::SiteId(0),
            Box::new(Recorder { seen: Vec::new(), service: SimDuration::from_micros(service_us) }),
        );
        for i in 0..n {
            eng.schedule_message(node, node, SimDuration::ZERO, Tick(i));
        }
        eng.run_until_idle(1_000_000);
        let rec = eng.node_as::<Recorder>(node);
        let last = rec.seen.last().unwrap().1;
        prop_assert_eq!(
            last.as_nanos(),
            n * service_us * 1_000,
            "work not conserved"
        );
    }

    /// Same seed, same run — across arbitrary topologies and schedules.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), msgs in 1usize..30) {
        let run = |seed: u64| {
            let topo = Topology::ec2_frk_irl_vrg();
            let frk = topo.site_named("FRK").unwrap();
            let irl = topo.site_named("IRL").unwrap();
            let mut eng = Engine::new(topo, seed);
            let a = eng.add_node(frk, Box::new(Recorder { seen: vec![], service: SimDuration::ZERO }));
            let b = eng.add_node(irl, Box::new(Recorder { seen: vec![], service: SimDuration::ZERO }));
            let _ = a;
            for i in 0..msgs {
                eng.schedule_message(a, b, SimDuration::from_micros(i as u64), Tick(i as u64));
            }
            eng.run_until_idle(1_000_000);
            eng.node_as::<Recorder>(b).seen.clone()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Exact-percentile histogram agrees with a naive reference.
    #[test]
    fn histogram_percentiles_match_reference(
        mut samples in proptest::collection::vec(0u64..10_000_000, 1..200),
        p in 1.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(SimDuration::from_nanos(*s));
        }
        samples.sort_unstable();
        let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
        let want = samples[rank.clamp(1, samples.len()) - 1];
        prop_assert_eq!(h.percentile(p).as_nanos(), want);
    }

    /// Latency jitter sampling is always strictly positive and finite.
    #[test]
    fn jitter_is_sane(base_ms in 1u64..200, seed in any::<u64>()) {
        let mut rng = DetRng::seed_from_u64(seed);
        let base = SimDuration::from_millis(base_ms);
        for _ in 0..100 {
            let s = rng.latency_jitter(base, 0.05, 0.05);
            prop_assert!(s > SimDuration::ZERO);
            prop_assert!(s < base.mul_f64(10.0), "implausible spike: {s}");
        }
    }
}
