//! # simnet — deterministic discrete-event network simulation
//!
//! This crate is the hardware/network substrate for the OSDI '16
//! "Incremental Consistency Guarantees for Replicated Objects" reproduction.
//! The paper evaluates on Amazon EC2 across three regions; we substitute a
//! deterministic discrete-event simulator that models:
//!
//! - **WAN latency** — per site-pair one-way delays with multiplicative
//!   wobble and an exponential tail ([`Topology`]), preloaded with the
//!   paper's measured RTTs;
//! - **finite host capacity** — a single-server FIFO service queue per node
//!   ([`Node::service_cost`]), which produces realistic latency/throughput
//!   saturation curves;
//! - **bandwidth** — exact per-message wire sizes aggregated per category
//!   and per link ([`BandwidthMeter`]);
//! - **faults** — probabilistic loss, node downtime, and site partitions
//!   ([`Faults`]).
//!
//! Virtual time ([`SimTime`]) makes runs both fast (no real sleeps) and
//! reproducible (a single seeded [`DetRng`] drives all randomness).
//!
//! ## Example
//!
//! ```
//! use simnet::{Ctx, Engine, Node, NodeId, SimDuration, Topology, Wire};
//!
//! #[derive(Debug)]
//! struct Hello;
//! impl Wire for Hello {
//!     fn wire_size(&self) -> usize { 32 }
//! }
//!
//! struct Greeter { greeted: u32 }
//! impl Node<Hello> for Greeter {
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, Hello>, _from: NodeId, _msg: Hello) {
//!         self.greeted += 1;
//!     }
//!     fn as_any(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let topo = Topology::ec2_frk_irl_vrg();
//! let frk = topo.site_named("FRK").unwrap();
//! let mut eng = Engine::new(topo, 42);
//! let g = eng.add_node(frk, Box::new(Greeter { greeted: 0 }));
//! eng.schedule_message(g, g, SimDuration::ZERO, Hello);
//! eng.run_until_idle(16);
//! assert_eq!(eng.node_as::<Greeter>(g).greeted, 1);
//! ```

pub mod bandwidth;
pub mod engine;
pub mod faults;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;

pub use bandwidth::{BandwidthMeter, Traffic, Wire};
pub use engine::{Ctx, Engine, Node, NodeId, Timer};
pub use faults::{Downtime, Faults, Partition, SchedulePlan};
pub use rng::DetRng;
pub use stats::{Counter, Histogram, Summary};
pub use time::{SimDuration, SimTime};
pub use topology::{EuUsSites, SiteId, Topology};
