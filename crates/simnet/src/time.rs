//! Virtual time for the discrete-event simulator.
//!
//! All simulation timestamps are nanoseconds since the start of the run,
//! wrapped in [`SimTime`]; intervals are [`SimDuration`]. Using dedicated
//! newtypes (instead of `std::time`) keeps virtual time strictly separated
//! from wall-clock time and makes arithmetic explicit and cheap.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns this instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; virtual time never runs
    /// backwards, so this indicates a bug in the caller.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference; returns [`SimDuration::ZERO`] if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of the two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// Negative inputs are clamped to zero, which keeps jitter sampling
    /// (which may produce tiny negative values) safe.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Multiplies the duration by a non-negative scalar.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_millis(20);
        assert_eq!(t.as_nanos(), 20_000_000);
        assert_eq!((t + SimDuration::from_micros(500)).as_millis_f64(), 20.5);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(20));
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(2.5).as_millis_f64(),
            25.0
        );
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(8);
        assert_eq!(d * 3, SimDuration::from_millis(24));
        assert_eq!(d / 2, SimDuration::from_millis(4));
        assert_eq!(d - SimDuration::from_millis(10), SimDuration::ZERO);
    }
}
