//! Measurement primitives: histograms, counters, and summaries.
//!
//! Latency histograms store raw nanosecond samples and compute exact
//! percentiles on demand; at the scale of these experiments (≤ a few
//! million samples) this is both simpler and more accurate than bucketed
//! approximations.

use std::fmt;

use crate::time::SimDuration;

/// An exact-percentile latency histogram.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ns.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples_ns.iter().map(|&x| x as u128).sum();
        SimDuration::from_nanos((sum / self.samples_ns.len() as u128) as u64)
    }

    /// Exact percentile (`p` in `[0, 100]`), or zero when empty.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples_ns.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        SimDuration::from_nanos(self.samples_ns[idx])
    }

    /// Median (p50).
    pub fn median(&mut self) -> SimDuration {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> SimDuration {
        self.percentile(99.0)
    }

    /// Largest sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples_ns.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples_ns.iter().copied().min().unwrap_or(0))
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.sorted = false;
    }

    /// Produces a compact summary of the current contents.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

/// A point-in-time digest of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2}ms p50={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count,
            self.mean.as_millis_f64(),
            self.p50.as_millis_f64(),
            self.p99.as_millis_f64(),
            self.max.as_millis_f64()
        )
    }
}

/// A saturating event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn bump(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimDuration {
        SimDuration::from_millis(x)
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn percentiles_are_exact() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(ms(i));
        }
        assert_eq!(h.percentile(1.0), ms(1));
        assert_eq!(h.median(), ms(50));
        assert_eq!(h.p99(), ms(99));
        assert_eq!(h.percentile(100.0), ms(100));
        assert_eq!(h.mean(), SimDuration::from_micros(50_500));
    }

    #[test]
    fn single_sample_percentiles() {
        let mut h = Histogram::new();
        h.record(ms(7));
        assert_eq!(h.median(), ms(7));
        assert_eq!(h.p99(), ms(7));
        assert_eq!(h.min(), ms(7));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(ms(1));
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), ms(2));
    }

    #[test]
    fn record_after_percentile_requery_is_correct() {
        let mut h = Histogram::new();
        h.record(ms(10));
        assert_eq!(h.median(), ms(10));
        h.record(ms(2));
        // Re-sorting must happen after the new sample.
        assert_eq!(h.percentile(1.0), ms(2));
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter(u64::MAX - 1);
        c.bump();
        c.bump();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn summary_display_is_humane() {
        let mut h = Histogram::new();
        h.record(ms(20));
        let s = format!("{}", h.summary());
        assert!(s.contains("n=1"));
        assert!(s.contains("mean=20.00ms"));
    }
}
