//! Wire-size accounting.
//!
//! Figures 8 and 10 of the paper report bandwidth per operation measured on
//! the client–replica links. The simulator measures rather than estimates:
//! every message implements [`Wire::wire_size`], and the engine feeds each
//! transmitted message into a [`BandwidthMeter`] keyed by message category
//! and by endpoint, so harnesses can compute kB/op exactly like the paper's
//! NIC-level measurements.

use crate::engine::NodeId;

/// Implemented by every simulated message type.
pub trait Wire {
    /// Total bytes this message occupies on the wire, including any
    /// fixed protocol framing the implementor chooses to model.
    fn wire_size(&self) -> usize;

    /// A coarse label used to break bandwidth down by message kind
    /// (e.g. `"read"`, `"prelim"`, `"confirm"`).
    fn category(&self) -> &'static str {
        "default"
    }
}

/// Aggregated byte and message counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Total bytes transmitted.
    pub bytes: u64,
    /// Total messages transmitted.
    pub msgs: u64,
}

impl Traffic {
    fn add(&mut self, bytes: usize) {
        self.bytes += bytes as u64;
        self.msgs += 1;
    }
}

/// Per-category and per-node transmission accounting.
///
/// The meter sits on the engine's per-message send path, so its internals
/// avoid hashing entirely: node ids are dense indices into flat `Vec`s,
/// and the handful of message categories (static string labels) live in a
/// small list scanned linearly with a pointer-equality fast path. Both are
/// several times cheaper per record than the `HashMap`s they replaced.
#[derive(Clone, Debug, Default)]
pub struct BandwidthMeter {
    total: Traffic,
    by_category: Vec<(&'static str, Traffic)>,
    /// Bytes received by each node (indexed by `NodeId`), used for
    /// client-link bandwidth-per-operation measurements.
    rx_by_node: Vec<Traffic>,
    tx_by_node: Vec<Traffic>,
}

/// Grows `v` as needed and returns the slot for `node`.
fn node_slot(v: &mut Vec<Traffic>, node: NodeId) -> &mut Traffic {
    if node.0 >= v.len() {
        v.resize(node.0 + 1, Traffic::default());
    }
    &mut v[node.0]
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        BandwidthMeter::default()
    }

    /// Records one transmitted message.
    pub fn record(&mut self, from: NodeId, to: NodeId, category: &'static str, bytes: usize) {
        self.total.add(bytes);
        self.category_slot(category).add(bytes);
        node_slot(&mut self.rx_by_node, to).add(bytes);
        node_slot(&mut self.tx_by_node, from).add(bytes);
    }

    fn category_slot(&mut self, category: &'static str) -> &mut Traffic {
        // Pointer equality catches the overwhelmingly common case (each
        // message type returns the same static literal every time); the
        // string comparison keeps distinct literals with equal text merged.
        let idx = self
            .by_category
            .iter()
            .position(|(c, _)| std::ptr::eq(c.as_ptr(), category.as_ptr()) || *c == category);
        match idx {
            Some(i) => &mut self.by_category[i].1,
            None => {
                self.by_category.push((category, Traffic::default()));
                &mut self.by_category.last_mut().expect("just pushed").1
            }
        }
    }

    /// All traffic seen so far.
    pub fn total(&self) -> Traffic {
        self.total
    }

    /// Traffic for one category (zero if never seen).
    pub fn category(&self, category: &str) -> Traffic {
        self.by_category
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, t)| *t)
            .unwrap_or_default()
    }

    /// All category labels observed, sorted for stable output.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cs: Vec<&'static str> = self.by_category.iter().map(|(c, _)| *c).collect();
        cs.sort_unstable();
        cs
    }

    /// Bytes received by a node.
    pub fn received_by(&self, node: NodeId) -> Traffic {
        self.rx_by_node.get(node.0).copied().unwrap_or_default()
    }

    /// Bytes sent by a node.
    pub fn sent_by(&self, node: NodeId) -> Traffic {
        self.tx_by_node.get(node.0).copied().unwrap_or_default()
    }

    /// Total bytes crossing a node's link in either direction — the
    /// client–replica bandwidth measure the paper uses.
    pub fn link_bytes(&self, node: NodeId) -> u64 {
        self.received_by(node).bytes + self.sent_by(node).bytes
    }

    /// Clears all counters (used to elide warm-up traffic, mirroring the
    /// paper's practice of dropping the first seconds of each trial).
    pub fn reset(&mut self) {
        *self = BandwidthMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_category_and_node() {
        let mut m = BandwidthMeter::new();
        let a = NodeId(0);
        let b = NodeId(1);
        m.record(a, b, "read", 100);
        m.record(b, a, "resp", 300);
        assert_eq!(
            m.total(),
            Traffic {
                bytes: 400,
                msgs: 2
            }
        );
        assert_eq!(m.category("read").bytes, 100);
        assert_eq!(m.category("nope"), Traffic::default());
        assert_eq!(m.received_by(b).bytes, 100);
        assert_eq!(m.sent_by(b).bytes, 300);
        assert_eq!(m.link_bytes(a), 400);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = BandwidthMeter::new();
        m.record(NodeId(0), NodeId(1), "x", 10);
        m.reset();
        assert_eq!(m.total(), Traffic::default());
        assert!(m.categories().is_empty());
    }

    #[test]
    fn categories_sorted() {
        let mut m = BandwidthMeter::new();
        m.record(NodeId(0), NodeId(1), "zz", 1);
        m.record(NodeId(0), NodeId(1), "aa", 1);
        assert_eq!(m.categories(), vec!["aa", "zz"]);
    }
}
