//! The discrete-event engine: nodes, messages, timers, and the event loop.
//!
//! A simulation is a set of [`Node`]s placed at [`SiteId`]s of a
//! [`Topology`]. Nodes communicate exclusively through messages; the engine
//! delivers each message after a sampled WAN latency, then charges the
//! receiving host a service cost ([`Node::service_cost`]) on a single-server
//! FIFO queue. The queue is what gives hosts finite capacity: as offered
//! load approaches the service rate, queueing delay grows and throughput
//! saturates — exactly the latency/throughput behaviour of Figure 6 in the
//! paper.
//!
//! Everything is deterministic: one seeded [`DetRng`] drives latency jitter
//! and fault draws, and ties between simultaneous events break by insertion
//! sequence number.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::bandwidth::{BandwidthMeter, Wire};
use crate::faults::Faults;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{SiteId, Topology};

/// Identifier of a node within an [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// An opaque timer token; nodes choose the values and interpret them in
/// [`Node::on_timer`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Timer(pub u64);

/// Behaviour of a simulated host.
///
/// Handlers receive a [`Ctx`] for reading the clock, sending messages, and
/// arming timers. Handlers run to completion; there is no preemption.
/// Nodes must be `Send` so whole engines can be moved across threads or
/// shared behind a mutex by higher-level bindings.
pub trait Node<M>: Send + 'static {
    /// Called when a message addressed to this node has been delivered and
    /// has cleared the host's service queue.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, timer: Timer) {
        let _ = (ctx, timer);
    }

    /// Host CPU time consumed to process `msg`; this models finite host
    /// capacity. The default of zero gives an infinitely fast host.
    fn service_cost(&self, msg: &M) -> SimDuration {
        let _ = msg;
        SimDuration::ZERO
    }

    /// Downcasting access for inspecting node state after a run.
    fn as_any(&mut self) -> &mut dyn Any;
}

enum Kind<M> {
    /// Message reached the destination NIC; next it queues for service.
    Arrive { from: NodeId, to: NodeId, msg: M },
    /// Message cleared the service queue; invoke the handler.
    Exec { from: NodeId, to: NodeId, msg: M },
    /// A timer fires.
    Fire { node: NodeId, timer: Timer },
}

/// A scheduled event. The heap key packs `(time, insertion sequence)` into
/// one `u128` — `time` in the high 64 bits, the tie-breaking sequence
/// number in the low 64 — so heap sift comparisons are a single integer
/// compare instead of a lexicographic pair compare.
struct Ev<M> {
    key: u128,
    kind: Kind<M>,
}

fn ev_key(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

impl<M> Ev<M> {
    fn at(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

impl<M> PartialEq for Ev<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Ev<M> {}
impl<M> PartialOrd for Ev<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Ev<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other.key.cmp(&self.key)
    }
}

struct NodeMeta {
    site: SiteId,
    /// Completion time of the last piece of work on this host's CPU.
    busy_until: SimTime,
}

/// Engine internals shared with handlers through [`Ctx`].
struct Core<M> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Ev<M>>,
    meta: Vec<NodeMeta>,
    topology: Topology,
    rng: DetRng,
    bandwidth: BandwidthMeter,
    faults: Faults,
    /// Cached `faults.is_fault_free()`, so the per-message send path skips
    /// the fault plan entirely on the (common) fault-free runs.
    fault_free: bool,
    dropped_messages: u64,
}

impl<M: Wire> Core<M> {
    fn push(&mut self, at: SimTime, kind: Kind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Ev {
            key: ev_key(at, seq),
            kind,
        });
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        let from_site = self.meta[from.0].site;
        let to_site = self.meta[to.0].site;
        if !self.fault_free
            && self
                .faults
                .drops(from, from_site, to, to_site, self.now, &mut self.rng)
        {
            self.dropped_messages += 1;
            return;
        }
        self.bandwidth
            .record(from, to, msg.category(), msg.wire_size());
        let latency = self
            .topology
            .sample_one_way(from_site, to_site, &mut self.rng);
        self.push(self.now + latency, Kind::Arrive { from, to, msg });
    }
}

/// Handler-side view of the engine.
pub struct Ctx<'a, M> {
    core: &'a mut Core<M>,
    id: NodeId,
}

impl<'a, M: Wire> Ctx<'a, M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Sends `msg` to `to`; it arrives after a sampled one-way latency
    /// unless the fault plan drops it.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.core.send(self.id, to, msg);
    }

    /// Arms a timer that fires on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: Timer) {
        let at = self.core.now + delay;
        self.core.push(
            at,
            Kind::Fire {
                node: self.id,
                timer,
            },
        );
    }

    /// The site a node lives at.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.core.meta[node.0].site
    }

    /// The topology, e.g. for proximity-ordering replica lists.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// Deterministic randomness for protocol decisions.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.core.rng
    }
}

/// A deterministic discrete-event simulation.
pub struct Engine<M> {
    core: Core<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
}

impl<M: Wire + 'static> Engine<M> {
    /// Creates an engine over `topology`, seeded with `seed`.
    ///
    /// The event heap is pre-sized so steady-state simulations reach their
    /// working set without rehashing growth in the hot loop.
    pub fn new(topology: Topology, seed: u64) -> Self {
        Engine {
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::with_capacity(1024),
                meta: Vec::with_capacity(16),
                topology,
                rng: DetRng::seed_from_u64(seed),
                bandwidth: BandwidthMeter::new(),
                faults: Faults::none(),
                fault_free: true,
                dropped_messages: 0,
            },
            nodes: Vec::with_capacity(16),
        }
    }

    /// Installs a fault plan.
    pub fn set_faults(&mut self, faults: Faults) {
        self.core.fault_free = faults.is_fault_free();
        self.core.faults = faults;
    }

    /// Adds a node at `site` and returns its id.
    pub fn add_node(&mut self, site: SiteId, node: Box<dyn Node<M>>) -> NodeId {
        assert!(site.0 < self.core.topology.len(), "unknown site {site:?}");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.core.meta.push(NodeMeta {
            site,
            busy_until: SimTime::ZERO,
        });
        id
    }

    /// Schedules a message from outside the simulation (e.g. a harness
    /// kicking off a client); it is delivered after `delay` with no
    /// network latency added.
    pub fn schedule_message(&mut self, from: NodeId, to: NodeId, delay: SimDuration, msg: M) {
        let at = self.core.now + delay;
        self.core.push(at, Kind::Arrive { from, to, msg });
    }

    /// Schedules a timer on `node` after `delay`.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, timer: Timer) {
        let at = self.core.now + delay;
        self.core.push(at, Kind::Fire { node, timer });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Read access to bandwidth accounting.
    pub fn bandwidth(&self) -> &BandwidthMeter {
        &self.core.bandwidth
    }

    /// Mutable access to bandwidth accounting (e.g. to reset after warm-up).
    pub fn bandwidth_mut(&mut self) -> &mut BandwidthMeter {
        &mut self.core.bandwidth
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.core.topology
    }

    /// The site of a node.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.core.meta[node.0].site
    }

    /// Number of messages lost to fault injection so far.
    pub fn dropped_messages(&self) -> u64 {
        self.core.dropped_messages
    }

    /// Mutable access to a node, for post-run inspection via
    /// [`Node::as_any`].
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly for a node currently executing.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node<M> {
        self.nodes[id.0]
            .as_deref_mut()
            .expect("node is currently executing")
    }

    /// Downcasts a node to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is not of type `T`.
    pub fn node_as<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.node_mut(id)
            .as_any()
            .downcast_mut::<T>()
            .expect("node has unexpected concrete type")
    }

    /// Runs until the event queue is empty or virtual time would exceed
    /// `limit`. Returns the number of events processed.
    pub fn run_until(&mut self, limit: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(ev) = self.core.heap.peek() {
            if ev.at() > limit {
                break;
            }
            let ev = self.core.heap.pop().expect("peeked event exists");
            self.core.now = ev.at();
            self.dispatch(ev);
            processed += 1;
        }
        self.core.now = self.core.now.max(limit);
        processed
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let limit = self.core.now + d;
        self.run_until(limit)
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics after processing `max_events` events, which indicates a
    /// livelock (e.g. two nodes ping-ponging forever).
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while let Some(ev) = self.core.heap.pop() {
            self.core.now = ev.at();
            self.dispatch(ev);
            processed += 1;
            assert!(
                processed <= max_events,
                "simulation exceeded {max_events} events; livelock?"
            );
        }
        processed
    }

    /// Runs `to`'s message handler for `msg` (the `Exec` phase).
    fn exec(&mut self, from: NodeId, to: NodeId, msg: M) {
        let mut node = self.nodes[to.0].take().expect("re-entrant node execution");
        {
            let mut ctx = Ctx {
                core: &mut self.core,
                id: to,
            };
            node.on_message(&mut ctx, from, msg);
        }
        self.nodes[to.0] = Some(node);
    }

    fn dispatch(&mut self, ev: Ev<M>) {
        let at = ev.at();
        match ev.kind {
            Kind::Arrive { from, to, msg } => {
                // A message for a down node is silently lost at the NIC.
                if !self.core.fault_free && self.core.faults.node_down(to, at) {
                    self.core.dropped_messages += 1;
                    return;
                }
                let cost = self.nodes[to.0]
                    .as_deref()
                    .map(|n| n.service_cost(&msg))
                    .unwrap_or(SimDuration::ZERO);
                let start = at.max(self.core.meta[to.0].busy_until);
                let done = start + cost;
                self.core.meta[to.0].busy_until = done;
                // Fast path: the host is idle and the message costs nothing
                // to service, so execution is due *now*. If no other event
                // shares this instant, the `Exec` event would be popped
                // next anyway (it would receive a larger tie-break sequence
                // than everything already queued), so the heap round trip
                // is pure overhead — run the handler inline instead. When
                // another event ties on the timestamp, fall back to the
                // queue to keep the execution order bit-identical to the
                // two-phase schedule.
                if done == at && self.core.heap.peek().is_none_or(|next| next.at() > at) {
                    self.exec(from, to, msg);
                } else {
                    self.core.push(done, Kind::Exec { from, to, msg });
                }
            }
            Kind::Exec { from, to, msg } => {
                self.exec(from, to, msg);
            }
            Kind::Fire { node: id, timer } => {
                if !self.core.fault_free && self.core.faults.node_down(id, at) {
                    return;
                }
                let mut node = self.nodes[id.0].take().expect("re-entrant node execution");
                {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        id,
                    };
                    node.on_timer(&mut ctx, timer);
                }
                self.nodes[id.0] = Some(node);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial message carrying a counter.
    #[derive(Debug, Clone)]
    struct Ping(u32);

    impl Wire for Ping {
        fn wire_size(&self) -> usize {
            64
        }
        fn category(&self) -> &'static str {
            "ping"
        }
    }

    /// Echoes pings back `bounces` times, recording arrival times.
    struct Echo {
        peer: Option<NodeId>,
        bounces: u32,
        arrivals: Vec<SimTime>,
        service: SimDuration,
    }

    impl Echo {
        fn new(service: SimDuration) -> Self {
            Echo {
                peer: None,
                bounces: 0,
                arrivals: Vec::new(),
                service,
            }
        }
    }

    impl Node<Ping> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: NodeId, msg: Ping) {
            self.arrivals.push(ctx.now());
            self.peer = Some(from);
            if msg.0 < self.bounces {
                ctx.send(from, Ping(msg.0 + 1));
            }
        }

        fn service_cost(&self, _msg: &Ping) -> SimDuration {
            self.service
        }

        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_engine(service: SimDuration) -> (Engine<Ping>, NodeId, NodeId) {
        let mut topo = Topology::new(0.0, 0.0);
        let a = topo.add_site("A", SimDuration::from_millis(2));
        let b = topo.add_site("B", SimDuration::from_millis(2));
        topo.set_rtt(a, b, SimDuration::from_millis(20));
        let mut eng = Engine::new(topo, 1);
        let na = eng.add_node(a, Box::new(Echo::new(service)));
        let nb = eng.add_node(b, Box::new(Echo::new(service)));
        (eng, na, nb)
    }

    #[test]
    fn message_arrives_after_one_way_latency() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::ZERO);
        eng.schedule_message(na, na, SimDuration::ZERO, Ping(0));
        // Node A sends nothing by itself; drive A -> B manually.
        eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        eng.run_until_idle(100);
        let b = eng.node_as::<Echo>(nb);
        // External scheduling has no latency; the arrival is at t=0.
        assert_eq!(b.arrivals, vec![SimTime::ZERO]);
    }

    #[test]
    fn ping_pong_round_trip_takes_rtt() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::ZERO);
        // B replies once: set bounces on A's message count.
        eng.node_as::<Echo>(nb).bounces = 1;
        // Inject a ping at B as if sent by A externally at t=0; B replies.
        eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        eng.run_until_idle(100);
        let a = eng.node_as::<Echo>(na);
        assert_eq!(a.arrivals.len(), 1);
        // One way back from B is RTT/2 = 10ms with zero jitter.
        assert_eq!(a.arrivals[0], SimTime::ZERO + SimDuration::from_millis(10));
    }

    #[test]
    fn service_queue_serializes_arrivals() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::from_millis(5));
        // Three messages arrive simultaneously; with 5ms service each they
        // must execute at 5, 10, 15ms.
        for _ in 0..3 {
            eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        }
        eng.run_until_idle(100);
        let b = eng.node_as::<Echo>(nb);
        let expected: Vec<SimTime> = [5u64, 10, 15]
            .iter()
            .map(|&ms| SimTime::ZERO + SimDuration::from_millis(ms))
            .collect();
        assert_eq!(b.arrivals, expected);
    }

    #[test]
    fn run_until_respects_limit_and_resumes() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::ZERO);
        eng.node_as::<Echo>(nb).bounces = 10;
        eng.node_as::<Echo>(na).bounces = 10;
        eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        let before = eng.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        assert!(before >= 1);
        assert_eq!(eng.now(), SimTime::ZERO + SimDuration::from_millis(25));
        let after = eng.run_until_idle(1000);
        assert!(after > 0, "events must continue after the limit");
    }

    #[test]
    fn bandwidth_is_accounted_per_category() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::ZERO);
        eng.node_as::<Echo>(nb).bounces = 3;
        eng.node_as::<Echo>(na).bounces = 3;
        eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        eng.run_until_idle(100);
        // Externally scheduled messages are not metered; the three bounced
        // replies are 64 bytes each.
        let t = eng.bandwidth().category("ping");
        assert_eq!(t.msgs, 3);
        assert_eq!(t.bytes, 3 * 64);
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<(u64, SimTime)>,
        }
        impl Node<Ping> for Timed {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Ping>, _from: NodeId, _msg: Ping) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Ping>, timer: Timer) {
                self.fired.push((timer.0, ctx.now()));
                if timer.0 == 1 {
                    ctx.set_timer(SimDuration::from_millis(5), Timer(99));
                }
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let topo = Topology::single_site();
        let mut eng = Engine::new(topo, 7);
        let n = eng.add_node(SiteId(0), Box::new(Timed { fired: vec![] }));
        eng.schedule_timer(n, SimDuration::from_millis(10), Timer(2));
        eng.schedule_timer(n, SimDuration::from_millis(1), Timer(1));
        eng.run_until_idle(10);
        let node = eng.node_as::<Timed>(n);
        let order: Vec<u64> = node.fired.iter().map(|f| f.0).collect();
        assert_eq!(order, vec![1, 99, 2]);
        assert_eq!(node.fired[1].1, SimTime::ZERO + SimDuration::from_millis(6));
    }

    #[test]
    fn down_node_loses_messages() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::ZERO);
        let plan = Faults::none().with_downtime(
            nb,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_millis(100),
        );
        eng.set_faults(plan);
        eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        eng.run_until_idle(10);
        assert_eq!(eng.node_as::<Echo>(nb).arrivals.len(), 0);
        assert_eq!(eng.dropped_messages(), 1);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed: u64| -> Vec<SimTime> {
            let mut topo = Topology::new(0.05, 0.05);
            let a = topo.add_site("A", SimDuration::from_millis(2));
            let b = topo.add_site("B", SimDuration::from_millis(2));
            topo.set_rtt(a, b, SimDuration::from_millis(20));
            let mut eng = Engine::new(topo, seed);
            let na = eng.add_node(a, Box::new(Echo::new(SimDuration::ZERO)));
            let nb = eng.add_node(b, Box::new(Echo::new(SimDuration::ZERO)));
            eng.node_as::<Echo>(na).bounces = 20;
            eng.node_as::<Echo>(nb).bounces = 20;
            eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
            eng.run_until_idle(1000);
            eng.node_as::<Echo>(nb).arrivals.clone()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn livelock_guard_trips() {
        let (mut eng, na, nb) = two_node_engine(SimDuration::ZERO);
        eng.node_as::<Echo>(na).bounces = u32::MAX;
        eng.node_as::<Echo>(nb).bounces = u32::MAX;
        eng.schedule_message(na, nb, SimDuration::ZERO, Ping(0));
        eng.run_until_idle(50);
    }
}
