//! WAN topologies: named sites and inter-site latency models.
//!
//! The paper's evaluation runs on Amazon EC2 with replicas in Frankfurt
//! (FRK), Ireland (IRL), and N. Virginia (VRG), plus a US-West deployment
//! (Virginia / N. California / Oregon) for the Twissandra case study. The
//! canned topologies here encode those deployments with the round-trip
//! times reported in the paper (§6.1–§6.2: IRL–FRK 20 ms, IRL–VRG 83 ms,
//! intra-region 2 ms).

use crate::rng::DetRng;
use crate::time::SimDuration;

/// Identifier of a site (a datacenter region) within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub usize);

/// A static mesh of sites with per-pair one-way base latencies.
#[derive(Clone, Debug)]
pub struct Topology {
    names: Vec<String>,
    /// One-way base latency between each pair of sites.
    one_way: Vec<Vec<SimDuration>>,
    /// Uniform wobble fraction applied to every sample (e.g. `0.03`).
    wobble: f64,
    /// Mean of the exponential tail as a fraction of the base latency.
    tail_frac: f64,
}

impl Topology {
    /// Creates an empty topology with the given jitter parameters.
    pub fn new(wobble: f64, tail_frac: f64) -> Self {
        Topology {
            names: Vec::new(),
            one_way: Vec::new(),
            wobble,
            tail_frac,
        }
    }

    /// Adds a site, with `local_rtt` the round-trip time between two hosts
    /// within the site. Returns its id.
    pub fn add_site(&mut self, name: &str, local_rtt: SimDuration) -> SiteId {
        let id = SiteId(self.names.len());
        self.names.push(name.to_string());
        for row in &mut self.one_way {
            // Placeholder until `set_rtt` is called for the pair.
            row.push(SimDuration::ZERO);
        }
        self.one_way.push(vec![SimDuration::ZERO; self.names.len()]);
        let idx = id.0;
        self.one_way[idx][idx] = local_rtt / 2;
        id
    }

    /// Sets the round-trip time between two distinct sites (stored as a
    /// symmetric one-way latency of `rtt / 2`).
    pub fn set_rtt(&mut self, a: SiteId, b: SiteId, rtt: SimDuration) {
        let one_way = rtt / 2;
        self.one_way[a.0][b.0] = one_way;
        self.one_way[b.0][a.0] = one_way;
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the topology has no sites.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a site.
    pub fn name(&self, s: SiteId) -> &str {
        &self.names[s.0]
    }

    /// Looks a site up by name.
    pub fn site_named(&self, name: &str) -> Option<SiteId> {
        self.names.iter().position(|n| n == name).map(SiteId)
    }

    /// Base (jitter-free) one-way latency between two sites.
    ///
    /// # Panics
    ///
    /// Panics if the pair was never configured via [`Topology::set_rtt`]
    /// (or `add_site` for the diagonal), since silently returning zero
    /// would corrupt experiments.
    pub fn base_one_way(&self, from: SiteId, to: SiteId) -> SimDuration {
        let d = self.one_way[from.0][to.0];
        assert!(
            from == to || d > SimDuration::ZERO,
            "topology: latency between {} and {} was never set",
            self.name(from),
            self.name(to)
        );
        d
    }

    /// Base round-trip time between two sites.
    pub fn base_rtt(&self, a: SiteId, b: SiteId) -> SimDuration {
        self.base_one_way(a, b) * 2
    }

    /// Samples a jittered one-way delivery latency.
    pub fn sample_one_way(&self, from: SiteId, to: SiteId, rng: &mut DetRng) -> SimDuration {
        rng.latency_jitter(self.base_one_way(from, to), self.wobble, self.tail_frac)
    }

    /// The paper's European/US EC2 deployment: Frankfurt, Ireland, and
    /// N. Virginia. RTTs: IRL–FRK 20 ms, IRL–VRG 83 ms, FRK–VRG 90 ms;
    /// intra-region RTT 2 ms.
    pub fn ec2_frk_irl_vrg() -> Self {
        let mut t = Topology::new(0.03, 0.04);
        let frk = t.add_site("FRK", SimDuration::from_millis(2));
        let irl = t.add_site("IRL", SimDuration::from_millis(2));
        let vrg = t.add_site("VRG", SimDuration::from_millis(2));
        t.set_rtt(frk, irl, SimDuration::from_millis(20));
        t.set_rtt(irl, vrg, SimDuration::from_millis(83));
        t.set_rtt(frk, vrg, SimDuration::from_millis(90));
        t
    }

    /// The Twissandra deployment (§6.3.1): replicas in Virginia,
    /// N. California, and Oregon, with the client remaining in Ireland.
    pub fn ec2_us_wide() -> Self {
        let mut t = Topology::new(0.03, 0.04);
        let irl = t.add_site("IRL", SimDuration::from_millis(2));
        let vrg = t.add_site("VRG", SimDuration::from_millis(2));
        let ncal = t.add_site("NCAL", SimDuration::from_millis(2));
        let ore = t.add_site("ORE", SimDuration::from_millis(2));
        t.set_rtt(irl, vrg, SimDuration::from_millis(83));
        t.set_rtt(irl, ncal, SimDuration::from_millis(140));
        t.set_rtt(irl, ore, SimDuration::from_millis(132));
        t.set_rtt(vrg, ncal, SimDuration::from_millis(70));
        t.set_rtt(vrg, ore, SimDuration::from_millis(80));
        t.set_rtt(ncal, ore, SimDuration::from_millis(22));
        t
    }

    /// A single-site topology, useful for unit tests.
    pub fn single_site() -> Self {
        let mut t = Topology::new(0.0, 0.0);
        t.add_site("LOCAL", SimDuration::from_millis(1));
        t
    }
}

/// Convenience handles for the sites of [`Topology::ec2_frk_irl_vrg`].
#[derive(Clone, Copy, Debug)]
pub struct EuUsSites {
    /// Frankfurt.
    pub frk: SiteId,
    /// Ireland.
    pub irl: SiteId,
    /// N. Virginia.
    pub vrg: SiteId,
}

impl EuUsSites {
    /// Resolves the three canonical sites from a topology built by
    /// [`Topology::ec2_frk_irl_vrg`].
    ///
    /// # Panics
    ///
    /// Panics if the topology does not contain the expected site names.
    pub fn resolve(t: &Topology) -> Self {
        EuUsSites {
            frk: t.site_named("FRK").expect("FRK site"),
            irl: t.site_named("IRL").expect("IRL site"),
            vrg: t.site_named("VRG").expect("VRG site"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rtts_are_encoded() {
        let t = Topology::ec2_frk_irl_vrg();
        let s = EuUsSites::resolve(&t);
        assert_eq!(t.base_rtt(s.irl, s.frk), SimDuration::from_millis(20));
        assert_eq!(t.base_rtt(s.irl, s.vrg), SimDuration::from_millis(83));
        assert_eq!(t.base_rtt(s.frk, s.frk), SimDuration::from_millis(2));
    }

    #[test]
    fn symmetric_latency() {
        let t = Topology::ec2_frk_irl_vrg();
        let s = EuUsSites::resolve(&t);
        assert_eq!(t.base_one_way(s.frk, s.vrg), t.base_one_way(s.vrg, s.frk));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = Topology::ec2_frk_irl_vrg();
        let s = EuUsSites::resolve(&t);
        let mut r1 = DetRng::seed_from_u64(5);
        let mut r2 = DetRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(
                t.sample_one_way(s.irl, s.vrg, &mut r1),
                t.sample_one_way(s.irl, s.vrg, &mut r2)
            );
        }
    }

    #[test]
    #[should_panic(expected = "never set")]
    fn unset_pair_panics() {
        let mut t = Topology::new(0.0, 0.0);
        let a = t.add_site("A", SimDuration::from_millis(1));
        let b = t.add_site("B", SimDuration::from_millis(1));
        let _ = t.base_one_way(a, b);
    }

    #[test]
    fn site_lookup_by_name() {
        let t = Topology::ec2_us_wide();
        assert!(t.site_named("ORE").is_some());
        assert!(t.site_named("MARS").is_none());
        assert_eq!(t.len(), 4);
    }
}
