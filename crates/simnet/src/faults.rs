//! Fault injection: message loss, node downtime, and site partitions.
//!
//! The paper's evaluation runs fault-free, but a credible replication
//! substrate must behave sensibly under failure; the test suites use this
//! module to exercise coordinator timeouts, quorum loss, and recovery.

use crate::engine::NodeId;
use crate::rng::DetRng;
use crate::time::SimTime;
use crate::topology::SiteId;

/// An interval during which a node is unreachable.
#[derive(Clone, Copy, Debug)]
pub struct Downtime {
    /// Affected node.
    pub node: NodeId,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

/// An interval during which two sites cannot exchange messages.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// One side of the cut.
    pub a: SiteId,
    /// Other side of the cut.
    pub b: SiteId,
    /// Start of the partition (inclusive).
    pub from: SimTime,
    /// End of the partition (exclusive).
    pub until: SimTime,
}

/// The active fault plan for a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Faults {
    /// Independent loss probability applied to every message.
    pub drop_probability: f64,
    /// Scheduled node outages.
    pub downtimes: Vec<Downtime>,
    /// Scheduled site partitions.
    pub partitions: Vec<Partition>,
}

impl Faults {
    /// A fault-free plan.
    pub fn none() -> Self {
        Faults::default()
    }

    /// Sets a uniform message-loss probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a node outage window.
    pub fn with_downtime(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.downtimes.push(Downtime { node, from, until });
        self
    }

    /// Adds a site partition window.
    pub fn with_partition(mut self, a: SiteId, b: SiteId, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Whether `node` is down at time `t`.
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        self.downtimes
            .iter()
            .any(|d| d.node == node && d.from <= t && t < d.until)
    }

    /// Whether the two sites are partitioned from each other at time `t`.
    pub fn partitioned(&self, x: SiteId, y: SiteId, t: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            ((p.a == x && p.b == y) || (p.a == y && p.b == x)) && p.from <= t && t < p.until
        })
    }

    /// Decides whether a message sent at `t` between the given endpoints is
    /// lost. Draws from `rng` only when a probabilistic check is needed so
    /// that fault-free runs consume no randomness.
    pub fn drops(
        &self,
        from_node: NodeId,
        from_site: SiteId,
        to_node: NodeId,
        to_site: SiteId,
        t: SimTime,
        rng: &mut DetRng,
    ) -> bool {
        if self.node_down(from_node, t) || self.node_down(to_node, t) {
            return true;
        }
        if self.partitioned(from_site, to_site, t) {
            return true;
        }
        self.drop_probability > 0.0 && rng.chance(self.drop_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn downtime_window_is_half_open() {
        let f = Faults::none().with_downtime(NodeId(3), t(10), t(20));
        assert!(!f.node_down(NodeId(3), t(9)));
        assert!(f.node_down(NodeId(3), t(10)));
        assert!(f.node_down(NodeId(3), t(19)));
        assert!(!f.node_down(NodeId(3), t(20)));
        assert!(!f.node_down(NodeId(4), t(15)));
    }

    #[test]
    fn partitions_are_symmetric() {
        let f = Faults::none().with_partition(SiteId(0), SiteId(1), t(0), t(5));
        assert!(f.partitioned(SiteId(0), SiteId(1), t(1)));
        assert!(f.partitioned(SiteId(1), SiteId(0), t(1)));
        assert!(!f.partitioned(SiteId(0), SiteId(2), t(1)));
        assert!(!f.partitioned(SiteId(0), SiteId(1), t(5)));
    }

    #[test]
    fn fault_free_plan_never_drops_and_uses_no_randomness() {
        let f = Faults::none();
        let mut r1 = DetRng::seed_from_u64(1);
        let mut r2 = DetRng::seed_from_u64(1);
        for i in 0..10 {
            assert!(!f.drops(NodeId(0), SiteId(0), NodeId(1), SiteId(1), t(i), &mut r1));
        }
        // No randomness consumed: streams still aligned.
        assert_eq!(r1.below(1 << 40), r2.below(1 << 40));
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let f = Faults::none().with_drop_probability(0.25);
        let mut rng = DetRng::seed_from_u64(2);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| f.drops(NodeId(0), SiteId(0), NodeId(1), SiteId(1), t(0), &mut rng))
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn down_endpoint_drops_deterministically() {
        let f = Faults::none().with_downtime(NodeId(1), t(0), t(100));
        let mut rng = DetRng::seed_from_u64(3);
        assert!(f.drops(NodeId(0), SiteId(0), NodeId(1), SiteId(0), t(50), &mut rng));
        assert!(f.drops(NodeId(1), SiteId(0), NodeId(0), SiteId(0), t(50), &mut rng));
    }
}
