//! Fault injection: message loss, node downtime, and site partitions.
//!
//! The paper's evaluation runs fault-free, but a credible replication
//! substrate must behave sensibly under failure; the test suites use this
//! module to exercise coordinator timeouts, quorum loss, and recovery.
//!
//! [`Faults::random`] generates whole *schedules* of such faults from a
//! seeded [`DetRng`] within the bounds of a [`SchedulePlan`] — the raw
//! material of the `icg-oracle` fault-schedule explorer — and
//! [`Faults::shrink_candidates`] enumerates one-step reductions of a
//! schedule so a failing `(seed, schedule)` pair can be minimized while
//! staying deterministically replayable.

use std::fmt;

use crate::engine::NodeId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::SiteId;

/// An interval during which a node is unreachable.
#[derive(Clone, Copy, Debug)]
pub struct Downtime {
    /// Affected node.
    pub node: NodeId,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive).
    pub until: SimTime,
}

/// An interval during which two sites cannot exchange messages.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// One side of the cut.
    pub a: SiteId,
    /// Other side of the cut.
    pub b: SiteId,
    /// Start of the partition (inclusive).
    pub from: SimTime,
    /// End of the partition (exclusive).
    pub until: SimTime,
}

/// The active fault plan for a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Faults {
    /// Independent loss probability applied to every message.
    pub drop_probability: f64,
    /// Scheduled node outages.
    pub downtimes: Vec<Downtime>,
    /// Scheduled site partitions.
    pub partitions: Vec<Partition>,
}

impl Faults {
    /// A fault-free plan.
    pub fn none() -> Self {
        Faults::default()
    }

    /// Sets a uniform message-loss probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Adds a node outage window.
    pub fn with_downtime(mut self, node: NodeId, from: SimTime, until: SimTime) -> Self {
        self.downtimes.push(Downtime { node, from, until });
        self
    }

    /// Adds a site partition window.
    pub fn with_partition(mut self, a: SiteId, b: SiteId, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Whether `node` is down at time `t`.
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        self.downtimes
            .iter()
            .any(|d| d.node == node && d.from <= t && t < d.until)
    }

    /// Whether the two sites are partitioned from each other at time `t`.
    pub fn partitioned(&self, x: SiteId, y: SiteId, t: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            ((p.a == x && p.b == y) || (p.a == y && p.b == x)) && p.from <= t && t < p.until
        })
    }

    /// Whether this plan injects no faults at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_probability == 0.0 && self.downtimes.is_empty() && self.partitions.is_empty()
    }

    /// Generates a random schedule within `plan`'s bounds, targeting the
    /// given nodes and sites. Fully determined by `rng`'s state, so the
    /// same seed regenerates the same schedule.
    ///
    /// Fault windows all start and end within `[0, plan.horizon_ms)`;
    /// each window covers between 5% and 50% of the horizon.
    pub fn random(
        plan: &SchedulePlan,
        sites: &[SiteId],
        nodes: &[NodeId],
        rng: &mut DetRng,
    ) -> Faults {
        let mut f = Faults::none();
        let h = plan.horizon_ms.max(20);
        if plan.max_drop_probability > 0.0 && rng.chance(0.5) {
            // Two decimals keep printed schedules short and re-typeable;
            // ceil keeps the draw non-zero, min honours the plan's bound.
            f.drop_probability = ((rng.f64() * plan.max_drop_probability * 100.0).ceil() / 100.0)
                .min(plan.max_drop_probability);
        }
        let window = |rng: &mut DetRng| {
            let len = rng.range(h / 20 + 1, h / 2 + 2);
            let from = rng.below(h - len.min(h - 1));
            (
                SimTime::ZERO + SimDuration::from_millis(from),
                SimTime::ZERO + SimDuration::from_millis(from + len),
            )
        };
        if plan.max_downtimes > 0 && !nodes.is_empty() {
            for _ in 0..rng.below(plan.max_downtimes as u64 + 1) {
                let node = nodes[rng.below(nodes.len() as u64) as usize];
                let (from, until) = window(rng);
                f.downtimes.push(Downtime { node, from, until });
            }
        }
        if plan.max_partitions > 0 && sites.len() >= 2 {
            for _ in 0..rng.below(plan.max_partitions as u64 + 1) {
                let a = sites[rng.below(sites.len() as u64) as usize];
                let b = loop {
                    let b = sites[rng.below(sites.len() as u64) as usize];
                    if b != a {
                        break b;
                    }
                };
                let (from, until) = window(rng);
                f.partitions.push(Partition { a, b, from, until });
            }
        }
        f
    }

    /// One-step reductions of this schedule: each downtime removed, each
    /// partition removed, and (if set) the drop probability zeroed. A
    /// shrinker re-runs each candidate and keeps any that still fails.
    pub fn shrink_candidates(&self) -> Vec<Faults> {
        let mut out = Vec::new();
        if self.drop_probability > 0.0 {
            let mut f = self.clone();
            f.drop_probability = 0.0;
            out.push(f);
        }
        for i in 0..self.downtimes.len() {
            let mut f = self.clone();
            f.downtimes.remove(i);
            out.push(f);
        }
        for i in 0..self.partitions.len() {
            let mut f = self.clone();
            f.partitions.remove(i);
            out.push(f);
        }
        out
    }

    /// Decides whether a message sent at `t` between the given endpoints is
    /// lost. Draws from `rng` only when a probabilistic check is needed so
    /// that fault-free runs consume no randomness.
    pub fn drops(
        &self,
        from_node: NodeId,
        from_site: SiteId,
        to_node: NodeId,
        to_site: SiteId,
        t: SimTime,
        rng: &mut DetRng,
    ) -> bool {
        if self.node_down(from_node, t) || self.node_down(to_node, t) {
            return true;
        }
        if self.partitioned(from_site, to_site, t) {
            return true;
        }
        self.drop_probability > 0.0 && rng.chance(self.drop_probability)
    }
}

/// Bounds for randomized fault-schedule generation ([`Faults::random`]).
#[derive(Clone, Copy, Debug)]
pub struct SchedulePlan {
    /// All fault windows start and end within `[0, horizon_ms)` virtual
    /// milliseconds.
    pub horizon_ms: u64,
    /// Maximum number of site-partition windows.
    pub max_partitions: usize,
    /// Maximum number of node-downtime windows.
    pub max_downtimes: usize,
    /// Upper bound on the uniform message-loss probability (0 disables).
    pub max_drop_probability: f64,
}

impl Default for SchedulePlan {
    fn default() -> Self {
        SchedulePlan {
            horizon_ms: 2_000,
            max_partitions: 2,
            max_downtimes: 2,
            max_drop_probability: 0.05,
        }
    }
}

impl fmt::Display for Faults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fault_free() {
            return f.write_str("fault-free");
        }
        let mut sep = "";
        if self.drop_probability > 0.0 {
            write!(f, "drop={}", self.drop_probability)?;
            sep = " ";
        }
        let ms = |t: SimTime| t.since(SimTime::ZERO).as_millis_f64();
        for d in &self.downtimes {
            write!(
                f,
                "{sep}down(n{}@[{:.0}ms,{:.0}ms))",
                d.node.0,
                ms(d.from),
                ms(d.until)
            )?;
            sep = " ";
        }
        for p in &self.partitions {
            write!(
                f,
                "{sep}part(s{}|s{}@[{:.0}ms,{:.0}ms))",
                p.a.0,
                p.b.0,
                ms(p.from),
                ms(p.until)
            )?;
            sep = " ";
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn downtime_window_is_half_open() {
        let f = Faults::none().with_downtime(NodeId(3), t(10), t(20));
        assert!(!f.node_down(NodeId(3), t(9)));
        assert!(f.node_down(NodeId(3), t(10)));
        assert!(f.node_down(NodeId(3), t(19)));
        assert!(!f.node_down(NodeId(3), t(20)));
        assert!(!f.node_down(NodeId(4), t(15)));
    }

    #[test]
    fn partitions_are_symmetric() {
        let f = Faults::none().with_partition(SiteId(0), SiteId(1), t(0), t(5));
        assert!(f.partitioned(SiteId(0), SiteId(1), t(1)));
        assert!(f.partitioned(SiteId(1), SiteId(0), t(1)));
        assert!(!f.partitioned(SiteId(0), SiteId(2), t(1)));
        assert!(!f.partitioned(SiteId(0), SiteId(1), t(5)));
    }

    #[test]
    fn fault_free_plan_never_drops_and_uses_no_randomness() {
        let f = Faults::none();
        let mut r1 = DetRng::seed_from_u64(1);
        let mut r2 = DetRng::seed_from_u64(1);
        for i in 0..10 {
            assert!(!f.drops(NodeId(0), SiteId(0), NodeId(1), SiteId(1), t(i), &mut r1));
        }
        // No randomness consumed: streams still aligned.
        assert_eq!(r1.below(1 << 40), r2.below(1 << 40));
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let f = Faults::none().with_drop_probability(0.25);
        let mut rng = DetRng::seed_from_u64(2);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| f.drops(NodeId(0), SiteId(0), NodeId(1), SiteId(1), t(0), &mut rng))
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn down_endpoint_drops_deterministically() {
        let f = Faults::none().with_downtime(NodeId(1), t(0), t(100));
        let mut rng = DetRng::seed_from_u64(3);
        assert!(f.drops(NodeId(0), SiteId(0), NodeId(1), SiteId(0), t(50), &mut rng));
        assert!(f.drops(NodeId(1), SiteId(0), NodeId(0), SiteId(0), t(50), &mut rng));
    }

    #[test]
    fn random_schedules_are_seed_deterministic_and_in_bounds() {
        let plan = SchedulePlan::default();
        let sites = [SiteId(0), SiteId(1), SiteId(2)];
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        let gen =
            |seed: u64| Faults::random(&plan, &sites, &nodes, &mut DetRng::seed_from_u64(seed));
        for seed in 0..50u64 {
            let (a, b) = (gen(seed), gen(seed));
            assert_eq!(format!("{a}"), format!("{b}"), "seed {seed} not stable");
            assert!(a.drop_probability <= plan.max_drop_probability);
            assert!(a.downtimes.len() <= plan.max_downtimes);
            assert!(a.partitions.len() <= plan.max_partitions);
            let horizon = t(plan.horizon_ms);
            for d in &a.downtimes {
                assert!(d.from < d.until && d.until <= horizon, "{a}");
            }
            for p in &a.partitions {
                assert!(p.from < p.until && p.until <= horizon, "{a}");
                assert_ne!(p.a, p.b);
            }
        }
        // Different seeds must eventually differ.
        assert!((0..50).any(|s| format!("{}", gen(s)) != format!("{}", gen(s + 50))));
        // A non-round bound is honoured exactly (rounding must not exceed it).
        let tight = SchedulePlan {
            max_drop_probability: 0.033,
            ..plan
        };
        for seed in 0..100u64 {
            let f = Faults::random(&tight, &sites, &nodes, &mut DetRng::seed_from_u64(seed));
            assert!(
                f.drop_probability <= 0.033,
                "seed {seed}: {}",
                f.drop_probability
            );
        }
    }

    #[test]
    fn shrink_candidates_each_remove_exactly_one_element() {
        let f = Faults::none()
            .with_drop_probability(0.05)
            .with_downtime(NodeId(0), t(0), t(10))
            .with_partition(SiteId(0), SiteId(1), t(5), t(15))
            .with_partition(SiteId(1), SiteId(2), t(0), t(20));
        let cands = f.shrink_candidates();
        assert_eq!(cands.len(), 4);
        assert!(cands[0].drop_probability == 0.0 && cands[0].partitions.len() == 2);
        assert!(cands[1].downtimes.is_empty());
        assert_eq!(cands[2].partitions.len(), 1);
        assert!(Faults::none().shrink_candidates().is_empty());
    }

    #[test]
    fn display_round_trips_the_interesting_facts() {
        assert_eq!(format!("{}", Faults::none()), "fault-free");
        let f = Faults::none()
            .with_drop_probability(0.03)
            .with_downtime(NodeId(2), t(100), t(400))
            .with_partition(SiteId(0), SiteId(1), t(50), t(250));
        let s = format!("{f}");
        assert!(s.contains("drop=0.03"), "{s}");
        assert!(s.contains("down(n2@[100ms,400ms))"), "{s}");
        assert!(s.contains("part(s0|s1@[50ms,250ms))"), "{s}");
    }
}
