//! Deterministic random number generation for simulations.
//!
//! Every run is driven by a single seeded generator so that experiments are
//! reproducible bit-for-bit. [`DetRng`] is a thin wrapper over
//! [`rand::rngs::SmallRng`] adding the distributions the simulator needs
//! (jitter, exponential tails) and a `fork` operation for handing
//! independent deterministic streams to sub-components.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A deterministic, seedable random number generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator; the parent's stream advances by one
    /// draw, so repeated forks yield distinct children deterministically.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from_u64(self.inner.gen::<u64>())
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "DetRng::below: empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "DetRng::range: empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Exponentially distributed draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; clamp the uniform away from 0 to avoid inf.
        let u = self.inner.gen::<f64>().max(1e-12);
        -mean * u.ln()
    }

    /// Samples a network-style latency: `base` scaled by a small uniform
    /// wobble plus an exponential tail, which produces realistic p99 spikes.
    pub fn latency_jitter(
        &mut self,
        base: SimDuration,
        wobble: f64,
        tail_frac: f64,
    ) -> SimDuration {
        let base_ms = base.as_millis_f64();
        let wobbled = base_ms * (1.0 + wobble * (self.f64() * 2.0 - 1.0));
        let tail = self.exponential(base_ms * tail_frac);
        SimDuration::from_millis_f64(wobbled + tail)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Access to the raw `rand` generator for callers needing other
    /// distributions.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.below(1 << 40), fb.below(1 << 40));
        // The fork must not mirror the parent stream.
        let parent: Vec<u64> = (0..8).map(|_| a.below(1 << 40)).collect();
        let child: Vec<u64> = (0..8).map(|_| fa.below(1 << 40)).collect();
        assert_ne!(parent, child);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean was {mean}");
    }

    #[test]
    fn latency_jitter_stays_positive_and_near_base() {
        let mut r = DetRng::seed_from_u64(3);
        let base = SimDuration::from_millis(10);
        for _ in 0..1000 {
            let s = r.latency_jitter(base, 0.05, 0.05);
            assert!(s.as_millis_f64() > 9.0, "sample {s} too small");
            assert!(s.as_millis_f64() < 25.0, "sample {s} implausibly large");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
