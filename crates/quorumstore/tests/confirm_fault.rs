//! Regression test for the *CC confirmation bug surfaced by the
//! consistency oracle (see `crates/oracle`): when the preliminary flush
//! of an ICG read was lost in transit but the confirmation survived, the
//! gateway used to promote a missing preliminary — i.e. fabricate
//! `Versioned::absent()` — into the **strong** final view of a key that
//! very much exists. The fix carries the confirmed version in
//! `Msg::ReadConfirm` and fails the operation when no matching
//! preliminary is held.
//!
//! Reproducing pair (pre-fix): confirm mode on, `drop=0.25`, seed 40 —
//! strong reads of preloaded keys return absent records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use correctables::{Client, Error};
use quorumstore::{Key, ReplicaConfig, SimStore, StoreOp, Value};
use simnet::{Faults, SimDuration};

fn lossy_store(seed: u64) -> SimStore {
    let cfg = ReplicaConfig {
        op_timeout: SimDuration::from_millis(800),
        ..ReplicaConfig::default()
    };
    let s = SimStore::ec2(cfg, 2, true, "IRL", 0, seed);
    s.preload((0..8).map(|i| (Key::plain(i), Value::Opaque(100))));
    s.set_client_timeout(SimDuration::from_millis(1_500));
    s.set_faults(Faults::none().with_drop_probability(0.25));
    s
}

#[test]
fn lost_preliminary_never_fabricates_an_absent_strong_view() {
    let mut confirm_failures = 0u64;
    for seed in 40..44u64 {
        let s = lossy_store(seed);
        let client = Client::new(s.binding());
        let reads: Vec<_> = (0..40)
            .map(|i| client.invoke(StoreOp::Read(Key::plain(i % 8))))
            .collect();
        s.settle();
        for c in &reads {
            if let Some(v) = c.final_view() {
                // The strong view of a preloaded key must never be the
                // absent record, no matter which messages were lost.
                assert_eq!(
                    v.value.value,
                    Value::Opaque(100),
                    "seed {seed}: fabricated strong view {:?}",
                    v.value
                );
            } else if let Some(Error::Unavailable(reason)) = c.error() {
                assert!(reason.contains("preliminary"), "unexpected: {reason}");
                confirm_failures += 1;
            }
        }
    }
    // The interesting path — confirmation racing a lost preliminary —
    // must actually have been exercised, or this test proves nothing.
    assert!(
        confirm_failures > 0,
        "no confirmation ever raced a lost preliminary; tune seeds/drop rate"
    );
}

#[test]
fn client_timeout_fails_operations_whose_replies_are_lost() {
    let cfg = ReplicaConfig {
        op_timeout: SimDuration::from_millis(800),
        ..ReplicaConfig::default()
    };
    let s = SimStore::ec2(cfg, 2, false, "IRL", 0, 7);
    s.preload([(Key::plain(1), Value::Opaque(5))]);
    s.set_client_timeout(SimDuration::from_millis(1_000));
    // Everything is lost: the coordinator never even hears the request.
    s.set_faults(Faults::none().with_drop_probability(1.0));
    let client = Client::new(s.binding());
    let errors = Arc::new(AtomicU64::new(0));
    let mut ops = Vec::new();
    for _ in 0..4 {
        let n = Arc::clone(&errors);
        let c = client.invoke(StoreOp::Read(Key::plain(1)));
        c.on_error(move |e| {
            assert_eq!(*e, Error::Timeout);
            n.fetch_add(1, Ordering::SeqCst);
        });
        ops.push(c);
    }
    // Without the client-side deadline this would panic ("failed to
    // settle"): no reply, no coordinator timeout reply either.
    s.settle();
    assert_eq!(errors.load(Ordering::SeqCst), 4);
    assert!(ops.iter().all(|c| c.error() == Some(Error::Timeout)));
}
