//! Wire messages of the quorum store.
//!
//! Sizes model a compact binary protocol with a fixed per-message framing
//! overhead ([`FRAME_BYTES`], covering transport headers), so that the
//! bandwidth experiments (Figure 8) measure realistic client-link costs.

use simnet::Wire;

use crate::types::{Key, OpId, ReadKind, Value, Version, Versioned};

/// Fixed per-message overhead (transport framing, headers).
pub const FRAME_BYTES: usize = 60;

/// Size of an [`OpId`] plus a one-byte message tag.
const OP_HEADER: usize = 13;

/// Why a coordinator failed an operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailReason {
    /// The coordinator could not gather the required quorum in time.
    Timeout,
}

/// Which stage of an ICG read a reply carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// The only reply of a non-ICG read.
    Single,
    /// The preliminary (weakly consistent) reply of an ICG read.
    Preliminary,
    /// The final (quorum) reply of an ICG read.
    Final,
}

/// Every message exchanged in the quorum-store protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Client asks a coordinator to read `key`.
    ClientRead {
        /// Operation id.
        op: OpId,
        /// Key to read.
        key: Key,
        /// Execution mode (quorum size, ICG, confirmation optimization).
        kind: ReadKind,
    },
    /// Client asks a coordinator to write `key`.
    ClientWrite {
        /// Operation id.
        op: OpId,
        /// Key to write.
        key: Key,
        /// New value.
        value: Value,
        /// Write quorum size (the paper's experiments use `W = 1`).
        w: u8,
    },
    /// Coordinator asks a peer replica for its version of `key`.
    PeerRead {
        /// Operation id.
        op: OpId,
        /// Key to read.
        key: Key,
    },
    /// Peer replica answers a [`Msg::PeerRead`].
    PeerReadResp {
        /// Operation id.
        op: OpId,
        /// The peer's stored record.
        data: Versioned,
    },
    /// Replicate a write to a peer (quorum write, async propagation, or
    /// read repair). `ack_op` requests an acknowledgment.
    PeerWrite {
        /// Key being replicated.
        key: Key,
        /// Record to store (last-writer-wins).
        data: Versioned,
        /// If set, the peer acknowledges with this op id.
        ack_op: Option<OpId>,
    },
    /// Peer acknowledges a quorum write.
    PeerWriteAck {
        /// Operation id.
        op: OpId,
    },
    /// Coordinator replies to a client read.
    ReadReply {
        /// Operation id.
        op: OpId,
        /// Which stage this reply is.
        phase: Phase,
        /// The record.
        data: Versioned,
    },
    /// *CC optimization: the final view equals the preliminary one, so a
    /// small confirmation replaces the full final reply. The version lets
    /// the client check the confirmation against the preliminary it
    /// actually holds — if the preliminary was lost in transit, silently
    /// promoting nothing to a strong view would fabricate a wrong result.
    ReadConfirm {
        /// Operation id.
        op: OpId,
        /// Version of the record being confirmed.
        version: Version,
    },
    /// Coordinator acknowledges a client write.
    WriteReply {
        /// Operation id.
        op: OpId,
    },
    /// Coordinator failed the operation.
    OpFailed {
        /// Operation id.
        op: OpId,
        /// Why.
        reason: FailReason,
    },
}

impl Wire for Msg {
    fn wire_size(&self) -> usize {
        let body = match self {
            Msg::ClientRead { key, .. } => OP_HEADER + key.wire_size() + 2,
            Msg::ClientWrite { key, value, .. } => {
                OP_HEADER + key.wire_size() + 1 + value.write_size()
            }
            Msg::PeerRead { key, .. } => OP_HEADER + key.wire_size(),
            Msg::PeerReadResp { data, .. } => OP_HEADER + data.wire_size(),
            Msg::PeerWrite { key, data, .. } => {
                OP_HEADER + key.wire_size() + data.value.write_size() + 12
            }
            Msg::PeerWriteAck { .. } => OP_HEADER,
            Msg::ReadReply { data, .. } => OP_HEADER + 1 + data.wire_size(),
            Msg::ReadConfirm { .. } => OP_HEADER + 12,
            Msg::WriteReply { .. } => OP_HEADER,
            Msg::OpFailed { .. } => OP_HEADER + 1,
        };
        FRAME_BYTES + body
    }

    fn category(&self) -> &'static str {
        match self {
            Msg::ClientRead { .. } => "client-read",
            Msg::ClientWrite { .. } => "client-write",
            Msg::PeerRead { .. } => "peer-read",
            Msg::PeerReadResp { .. } => "peer-read-resp",
            Msg::PeerWrite { .. } => "peer-write",
            Msg::PeerWriteAck { .. } => "peer-write-ack",
            Msg::ReadReply {
                phase: Phase::Preliminary,
                ..
            } => "read-prelim",
            Msg::ReadReply { .. } => "read-reply",
            Msg::ReadConfirm { .. } => "read-confirm",
            Msg::WriteReply { .. } => "write-reply",
            Msg::OpFailed { .. } => "op-failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Version;
    use simnet::NodeId;

    fn op() -> OpId {
        OpId {
            client: NodeId(1),
            seq: 9,
        }
    }

    #[test]
    fn confirm_is_much_smaller_than_full_reply() {
        let full = Msg::ReadReply {
            op: op(),
            phase: Phase::Final,
            data: Versioned {
                value: Value::Opaque(1000),
                version: Version { ts: 1, writer: 0 },
            },
        };
        let confirm = Msg::ReadConfirm {
            op: op(),
            version: Version { ts: 1, writer: 0 },
        };
        assert!(full.wire_size() > confirm.wire_size() + 900);
    }

    #[test]
    fn categories_distinguish_prelim_from_final() {
        let prelim = Msg::ReadReply {
            op: op(),
            phase: Phase::Preliminary,
            data: Versioned::absent(),
        };
        let fin = Msg::ReadReply {
            op: op(),
            phase: Phase::Final,
            data: Versioned::absent(),
        };
        assert_eq!(prelim.category(), "read-prelim");
        assert_eq!(fin.category(), "read-reply");
    }

    #[test]
    fn every_message_pays_framing() {
        let m = Msg::PeerWriteAck { op: op() };
        assert!(m.wire_size() >= FRAME_BYTES);
    }
}
