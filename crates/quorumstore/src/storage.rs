//! The per-replica storage engine: a last-writer-wins versioned map.

use std::collections::HashMap;

use crate::types::{Key, Version, Versioned};

/// One replica's local key-value state.
#[derive(Clone, Debug, Default)]
pub struct LocalStore {
    map: HashMap<Key, Versioned>,
}

impl LocalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        LocalStore::default()
    }

    /// Reads a key; missing keys read as [`Versioned::absent`].
    pub fn get(&self, key: Key) -> Versioned {
        self.map
            .get(&key)
            .cloned()
            .unwrap_or_else(Versioned::absent)
    }

    /// Applies `data` if it is newer than the stored version
    /// (last-writer-wins). Returns whether the store changed.
    pub fn apply(&mut self, key: Key, data: Versioned) -> bool {
        match self.map.get(&key) {
            Some(existing) if existing.version >= data.version => false,
            _ => {
                self.map.insert(key, data);
                true
            }
        }
    }

    /// The stored version of a key ([`Version::ZERO`] when missing).
    pub fn version_of(&self, key: Key) -> Version {
        self.map
            .get(&key)
            .map(|v| v.version)
            .unwrap_or(Version::ZERO)
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn rec(ts: u64, len: u32) -> Versioned {
        Versioned {
            value: Value::Opaque(len),
            version: Version { ts, writer: 0 },
        }
    }

    #[test]
    fn missing_reads_absent() {
        let s = LocalStore::new();
        assert_eq!(s.get(Key::plain(1)), Versioned::absent());
        assert!(s.is_empty());
    }

    #[test]
    fn newer_write_wins() {
        let mut s = LocalStore::new();
        assert!(s.apply(Key::plain(1), rec(5, 10)));
        assert!(s.apply(Key::plain(1), rec(9, 20)));
        assert_eq!(s.get(Key::plain(1)), rec(9, 20));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn older_write_is_rejected() {
        let mut s = LocalStore::new();
        s.apply(Key::plain(1), rec(9, 20));
        assert!(!s.apply(Key::plain(1), rec(5, 10)));
        assert_eq!(s.get(Key::plain(1)), rec(9, 20));
    }

    #[test]
    fn equal_version_is_idempotent() {
        let mut s = LocalStore::new();
        s.apply(Key::plain(1), rec(5, 10));
        assert!(!s.apply(Key::plain(1), rec(5, 10)));
    }

    #[test]
    fn writer_breaks_ts_ties() {
        let mut s = LocalStore::new();
        let a = Versioned {
            value: Value::Opaque(1),
            version: Version { ts: 5, writer: 1 },
        };
        let b = Versioned {
            value: Value::Opaque(2),
            version: Version { ts: 5, writer: 2 },
        };
        s.apply(Key::plain(1), a);
        assert!(s.apply(Key::plain(1), b.clone()));
        assert_eq!(s.get(Key::plain(1)), b);
    }
}
