//! Closed-loop YCSB client driver for the quorum store.
//!
//! A [`WorkloadClient`] models one YCSB process with `threads` virtual
//! client threads: each thread keeps exactly one operation outstanding and
//! issues the next as soon as the previous completes. Latency, divergence
//! (preliminary ≠ final), and completion counts are recorded inside a
//! configurable measurement window, mirroring the paper's practice of
//! running 60-second trials and eliding the first and last 15 seconds.

use std::any::Any;
use std::collections::HashMap;

use simnet::{Ctx, Histogram, Node, NodeId, SimTime, Timer};
use ycsb::{Generator, Op, Workload};

use crate::messages::{Msg, Phase};
use crate::types::{Key, OpId, ReadKind, Value, Version};

/// Timer token that kicks off the client's virtual threads.
pub const KICKOFF: u64 = u64::MAX;

/// Client-side per-operation deadline: if neither a reply nor a
/// coordinator failure arrives (e.g. the request itself was lost), the
/// virtual thread gives up and moves on.
pub const CLIENT_OP_TIMEOUT_MS: u64 = 2_000;

/// Which system variant the client exercises (paper notation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Read execution mode: `C1`/`C2`/`C3` use [`ReadKind::Single`],
    /// `CC2`/`CC3` use [`ReadKind::Icg`] (with `confirm` for `*CC`).
    pub read_kind: ReadKind,
    /// Write quorum size (the paper uses `W = 1` throughout).
    pub write_w: u8,
}

impl SystemConfig {
    /// Baseline Cassandra with read quorum `r`.
    pub fn baseline(r: u8) -> Self {
        SystemConfig {
            read_kind: ReadKind::Single { r },
            write_w: 1,
        }
    }

    /// Correctable Cassandra with final read quorum `r`.
    pub fn correctable(r: u8) -> Self {
        SystemConfig {
            read_kind: ReadKind::Icg { r, confirm: false },
            write_w: 1,
        }
    }

    /// *CC: Correctable Cassandra with the confirmation optimization.
    pub fn correctable_optimized(r: u8) -> Self {
        SystemConfig {
            read_kind: ReadKind::Icg { r, confirm: true },
            write_w: 1,
        }
    }

    /// Display label in the paper's notation (C1, CC2, *CC2, …).
    pub fn label(&self) -> String {
        match self.read_kind {
            ReadKind::Single { r } => format!("C{r}"),
            ReadKind::Icg { r, confirm: false } => format!("CC{r}"),
            ReadKind::Icg { r, confirm: true } => format!("*CC{r}"),
        }
    }
}

/// Everything a client measures.
#[derive(Clone, Debug, Default)]
pub struct ClientMetrics {
    /// Latency of preliminary views (ICG reads only).
    pub prelim_latency: Histogram,
    /// Latency of the final (or only) read reply.
    pub final_latency: Histogram,
    /// Latency of write acknowledgments.
    pub write_latency: Histogram,
    /// Reads completed inside the measurement window.
    pub reads: u64,
    /// Writes completed inside the measurement window.
    pub writes: u64,
    /// ICG reads whose preliminary version differed from the final.
    pub divergent: u64,
    /// ICG reads measured for divergence.
    pub icg_reads: u64,
    /// Operations that failed (timeouts under fault injection).
    pub failed: u64,
    /// Operations completed regardless of the window (progress check).
    pub total_completed: u64,
}

impl ClientMetrics {
    /// Operations (reads + writes) completed inside the window.
    pub fn completed(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of ICG reads that diverged.
    pub fn divergence(&self) -> f64 {
        if self.icg_reads == 0 {
            0.0
        } else {
            self.divergent as f64 / self.icg_reads as f64
        }
    }
}

struct PendingOp {
    thread: u32,
    start: SimTime,
    prelim: Option<(SimTime, Version)>,
    is_read: bool,
}

/// A closed-loop YCSB client node.
pub struct WorkloadClient {
    coordinator: NodeId,
    sys: SystemConfig,
    record_len: u32,
    gens: Vec<Generator>,
    next_seq: u64,
    pending: HashMap<OpId, PendingOp>,
    measure_from: SimTime,
    measure_until: SimTime,
    /// Collected measurements (readable after the run via `node_as`).
    pub metrics: ClientMetrics,
}

impl WorkloadClient {
    /// Creates a client with `threads` virtual threads driving `workload`
    /// against `coordinator`, measuring inside `[measure_from, measure_until)`.
    pub fn new(
        coordinator: NodeId,
        sys: SystemConfig,
        workload: &Workload,
        threads: u32,
        seed: u64,
        measure_from: SimTime,
        measure_until: SimTime,
    ) -> Self {
        let gens = (0..threads)
            .map(|t| workload.generator(seed.wrapping_mul(0x9E37_79B9).wrapping_add(t as u64)))
            .collect();
        WorkloadClient {
            coordinator,
            sys,
            record_len: workload.value_size as u32,
            gens,
            next_seq: 0,
            pending: HashMap::new(),
            measure_from,
            measure_until,
            metrics: ClientMetrics::default(),
        }
    }

    fn in_window(&self, t: SimTime) -> bool {
        self.measure_from <= t && t < self.measure_until
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, Msg>, thread: u32) {
        let op = self.gens[thread as usize].next_op();
        let id = OpId {
            client: ctx.id(),
            seq: self.next_seq,
        };
        self.next_seq += 1;
        // Client-side deadline guards against lost requests/replies.
        ctx.set_timer(
            simnet::SimDuration::from_millis(CLIENT_OP_TIMEOUT_MS),
            Timer(id.seq),
        );
        let (msg, is_read) = match op {
            Op::Read(k) => (
                Msg::ClientRead {
                    op: id,
                    key: Key::plain(k),
                    kind: self.sys.read_kind,
                },
                true,
            ),
            Op::Update { key, len } => (
                Msg::ClientWrite {
                    op: id,
                    key: Key::plain(key),
                    value: Value::Delta {
                        field_len: len as u32,
                        record_len: self.record_len,
                    },
                    w: self.sys.write_w,
                },
                false,
            ),
        };
        self.pending.insert(
            id,
            PendingOp {
                thread,
                start: ctx.now(),
                prelim: None,
                is_read,
            },
        );
        ctx.send(self.coordinator, msg);
    }

    fn complete(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        id: OpId,
        final_version: Option<Version>,
        failed: bool,
    ) {
        let Some(p) = self.pending.remove(&id) else {
            return;
        };
        let now = ctx.now();
        self.metrics.total_completed += 1;
        if self.in_window(now) {
            if failed {
                self.metrics.failed += 1;
            } else if p.is_read {
                self.metrics.reads += 1;
                self.metrics.final_latency.record(now.since(p.start));
                if let Some((pt, pv)) = p.prelim {
                    self.metrics.prelim_latency.record(pt.since(p.start));
                    self.metrics.icg_reads += 1;
                    if Some(pv) != final_version {
                        self.metrics.divergent += 1;
                    }
                }
            } else {
                self.metrics.writes += 1;
                self.metrics.write_latency.record(now.since(p.start));
            }
        }
        self.issue_next(ctx, p.thread);
    }
}

impl Node<Msg> for WorkloadClient {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::ReadReply {
                op,
                phase: Phase::Preliminary,
                data,
            } => {
                if let Some(p) = self.pending.get_mut(&op) {
                    p.prelim = Some((ctx.now(), data.version));
                }
            }
            Msg::ReadReply {
                op,
                phase: Phase::Final,
                data,
            }
            | Msg::ReadReply {
                op,
                phase: Phase::Single,
                data,
            } => {
                self.complete(ctx, op, Some(data.version), false);
            }
            Msg::ReadConfirm { op, version } => {
                // The final view equals the preliminary one by definition;
                // fall back to the confirmed version if the preliminary
                // reply was lost (the workload client only tracks staleness
                // statistics, so the version itself is all it needs).
                let pv = self
                    .pending
                    .get(&op)
                    .and_then(|p| p.prelim.map(|(_, v)| v))
                    .or(Some(version));
                self.complete(ctx, op, pv, false);
            }
            Msg::WriteReply { op } => {
                self.complete(ctx, op, None, false);
            }
            Msg::OpFailed { op, .. } => {
                self.complete(ctx, op, None, true);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == KICKOFF {
            for t in 0..self.gens.len() as u32 {
                self.issue_next(ctx, t);
            }
            return;
        }
        // A per-operation deadline fired; give up if still outstanding.
        let id = OpId {
            client: ctx.id(),
            seq: timer.0,
        };
        if self.pending.contains_key(&id) {
            self.complete(ctx, id, None, true);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_labels_match_paper_notation() {
        assert_eq!(SystemConfig::baseline(1).label(), "C1");
        assert_eq!(SystemConfig::baseline(3).label(), "C3");
        assert_eq!(SystemConfig::correctable(2).label(), "CC2");
        assert_eq!(SystemConfig::correctable_optimized(2).label(), "*CC2");
    }

    #[test]
    fn metrics_divergence_math() {
        let m = ClientMetrics {
            divergent: 25,
            icg_reads: 100,
            ..Default::default()
        };
        assert!((m.divergence() - 0.25).abs() < 1e-9);
        let empty = ClientMetrics::default();
        assert_eq!(empty.divergence(), 0.0);
        assert_eq!(empty.completed(), 0);
    }
}
