//! The replica node: storage plus Cassandra-style read/write coordination.
//!
//! Every replica can act as a coordinator (as in Cassandra, where the
//! contacted node coordinates the request). Reads gather a quorum of `R`
//! replies — the coordinator's own state counts as one — and return the
//! newest version. Writes stamp a last-writer-wins version, apply locally,
//! and propagate to all peers; with `W = 1` (the paper's setting) the
//! client is acknowledged immediately and propagation continues in the
//! background, which is precisely the staleness window that ICG
//! preliminaries expose.
//!
//! **Correctable Cassandra (CC)**: for ICG reads the coordinator performs a
//! *preliminary flush* — it replies with its local state before gathering
//! the quorum (§5.2, Figure 4). This costs extra coordinator service time
//! (the paper observes a ~6% throughput drop). ***CC***: when the final
//! view equals the preliminary, a small confirmation message replaces the
//! full reply.

use std::any::Any;
use std::collections::HashMap;

use simnet::{Ctx, Node, NodeId, SimDuration, Timer};

use crate::messages::{FailReason, Msg, Phase};
use crate::storage::LocalStore;
use crate::types::{Key, OpId, ReadKind, Version, Versioned};

/// Tuning knobs of a replica.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaConfig {
    /// Coordinator CPU time per client read.
    pub read_service: SimDuration,
    /// Coordinator CPU time per client write.
    pub write_service: SimDuration,
    /// CPU time to serve a peer read.
    pub peer_read_service: SimDuration,
    /// CPU time to apply a peer write.
    pub peer_write_service: SimDuration,
    /// Extra coordinator CPU time for the preliminary flush of ICG reads.
    pub prelim_flush_extra: SimDuration,
    /// Whether coordinators push the newest version to stale replicas
    /// after a quorum read (Cassandra's read repair).
    pub read_repair: bool,
    /// Deadline for gathering quorums before failing the operation.
    pub op_timeout: SimDuration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            read_service: SimDuration::from_micros(500),
            write_service: SimDuration::from_micros(500),
            peer_read_service: SimDuration::from_micros(300),
            peer_write_service: SimDuration::from_micros(250),
            prelim_flush_extra: SimDuration::from_micros(30),
            read_repair: false,
            op_timeout: SimDuration::from_secs(5),
        }
    }
}

struct ReadSt {
    client: NodeId,
    key: Key,
    kind: ReadKind,
    best: Versioned,
    responses: u8,
    needed: u8,
    prelim: Option<Version>,
    /// Peers that answered with an older version (read-repair targets).
    stale_peers: Vec<NodeId>,
}

struct WriteSt {
    client: NodeId,
    acks_left: u8,
}

/// A quorum-store replica (and coordinator).
pub struct Replica {
    /// All other replicas of the (single, fully replicated) keyspace.
    peers: Vec<NodeId>,
    /// Local storage.
    pub store: LocalStore,
    cfg: ReplicaConfig,
    reads: HashMap<OpId, ReadSt>,
    writes: HashMap<OpId, WriteSt>,
    timer_ops: HashMap<u64, OpId>,
    next_timer: u64,
    /// Operations failed by timeout (observability for fault tests).
    pub timed_out_ops: u64,
}

impl Replica {
    /// Creates a replica; peers are wired afterwards via [`Replica::set_peers`].
    pub fn new(cfg: ReplicaConfig) -> Self {
        Replica {
            peers: Vec::new(),
            store: LocalStore::new(),
            cfg,
            reads: HashMap::new(),
            writes: HashMap::new(),
            timer_ops: HashMap::new(),
            next_timer: 0,
            timed_out_ops: 0,
        }
    }

    /// Wires the other replicas (done by the cluster builder once all
    /// nodes exist).
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// Peers sorted nearest-first from this replica's site.
    fn peers_by_proximity(&self, ctx: &Ctx<'_, Msg>) -> Vec<NodeId> {
        let my_site = ctx.site_of(ctx.id());
        let mut ps = self.peers.clone();
        ps.sort_by_key(|p| ctx.topology().base_one_way(my_site, ctx.site_of(*p)));
        ps
    }

    fn arm_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId) {
        let t = self.next_timer;
        self.next_timer += 1;
        self.timer_ops.insert(t, op);
        ctx.set_timer(self.cfg.op_timeout, Timer(t));
    }

    fn handle_client_read(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        op: OpId,
        key: Key,
        kind: ReadKind,
    ) {
        let local = self.store.get(key);
        let max_quorum = (self.peers.len() + 1) as u8;
        let needed = kind.quorum().clamp(1, max_quorum);

        let mut prelim = None;
        if kind.is_icg() {
            // Preliminary flush: leak the local state before coordinating.
            prelim = Some(local.version);
            ctx.send(
                client,
                Msg::ReadReply {
                    op,
                    phase: Phase::Preliminary,
                    data: local.clone(),
                },
            );
        }

        if needed <= 1 {
            self.reply_read_final(ctx, client, op, kind, prelim, local);
            return;
        }

        let targets: Vec<NodeId> = self
            .peers_by_proximity(ctx)
            .into_iter()
            .take((needed - 1) as usize)
            .collect();
        for t in &targets {
            ctx.send(*t, Msg::PeerRead { op, key });
        }
        self.reads.insert(
            op,
            ReadSt {
                client,
                key,
                kind,
                best: local,
                responses: 1,
                needed,
                prelim,
                stale_peers: Vec::new(),
            },
        );
        self.arm_timeout(ctx, op);
    }

    fn reply_read_final(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        op: OpId,
        kind: ReadKind,
        prelim: Option<Version>,
        best: Versioned,
    ) {
        match kind {
            ReadKind::Icg { confirm: true, .. } if prelim == Some(best.version) => {
                ctx.send(
                    client,
                    Msg::ReadConfirm {
                        op,
                        version: best.version,
                    },
                );
            }
            ReadKind::Icg { .. } => {
                ctx.send(
                    client,
                    Msg::ReadReply {
                        op,
                        phase: Phase::Final,
                        data: best,
                    },
                );
            }
            ReadKind::Single { .. } => {
                ctx.send(
                    client,
                    Msg::ReadReply {
                        op,
                        phase: Phase::Single,
                        data: best,
                    },
                );
            }
        }
    }

    fn handle_peer_read_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: NodeId,
        op: OpId,
        data: Versioned,
    ) {
        let Some(st) = self.reads.get_mut(&op) else {
            // Late response after completion or timeout.
            return;
        };
        st.responses += 1;
        if data.version > st.best.version {
            st.best = data;
        } else if data.version < st.best.version {
            st.stale_peers.push(from);
        }
        if st.responses >= st.needed {
            let st = self.reads.remove(&op).expect("state present");
            // Read repair: push the winning version to stale replicas and
            // adopt it locally.
            if self.cfg.read_repair {
                let newer_than_local = st.best.version > self.store.version_of(st.key);
                if newer_than_local {
                    self.store.apply(st.key, st.best.clone());
                }
                for peer in &st.stale_peers {
                    ctx.send(
                        *peer,
                        Msg::PeerWrite {
                            key: st.key,
                            data: st.best.clone(),
                            ack_op: None,
                        },
                    );
                }
            }
            self.reply_read_final(ctx, st.client, op, st.kind, st.prelim, st.best);
        }
    }

    fn handle_client_write(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        client: NodeId,
        op: OpId,
        key: Key,
        value: crate::types::Value,
        w: u8,
    ) {
        let version = Version {
            ts: ctx.now().as_nanos(),
            writer: ctx.id().0 as u32,
        };
        let data = Versioned { value, version };
        self.store.apply(key, data.clone());
        let acks_needed = w.saturating_sub(1).min(self.peers.len() as u8);
        let need_acks = acks_needed > 0;
        for peer in self.peers.clone() {
            ctx.send(
                peer,
                Msg::PeerWrite {
                    key,
                    data: data.clone(),
                    ack_op: need_acks.then_some(op),
                },
            );
        }
        if need_acks {
            self.writes.insert(
                op,
                WriteSt {
                    client,
                    acks_left: acks_needed,
                },
            );
            self.arm_timeout(ctx, op);
        } else {
            ctx.send(client, Msg::WriteReply { op });
        }
    }

    fn handle_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let Some(op) = self.timer_ops.remove(&token) else {
            return;
        };
        if let Some(st) = self.reads.remove(&op) {
            self.timed_out_ops += 1;
            ctx.send(
                st.client,
                Msg::OpFailed {
                    op,
                    reason: FailReason::Timeout,
                },
            );
        } else if let Some(st) = self.writes.remove(&op) {
            self.timed_out_ops += 1;
            ctx.send(
                st.client,
                Msg::OpFailed {
                    op,
                    reason: FailReason::Timeout,
                },
            );
        }
    }
}

impl Node<Msg> for Replica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::ClientRead { op, key, kind } => {
                self.handle_client_read(ctx, from, op, key, kind);
            }
            Msg::ClientWrite { op, key, value, w } => {
                self.handle_client_write(ctx, from, op, key, value, w);
            }
            Msg::PeerRead { op, key } => {
                let data = self.store.get(key);
                ctx.send(from, Msg::PeerReadResp { op, data });
            }
            Msg::PeerReadResp { op, data } => {
                self.handle_peer_read_resp(ctx, from, op, data);
            }
            Msg::PeerWrite { key, data, ack_op } => {
                self.store.apply(key, data);
                if let Some(op) = ack_op {
                    ctx.send(from, Msg::PeerWriteAck { op });
                }
            }
            Msg::PeerWriteAck { op } => {
                let finished = match self.writes.get_mut(&op) {
                    Some(st) => {
                        st.acks_left = st.acks_left.saturating_sub(1);
                        st.acks_left == 0
                    }
                    None => false,
                };
                if finished {
                    let st = self.writes.remove(&op).expect("state present");
                    ctx.send(st.client, Msg::WriteReply { op });
                }
            }
            // Replies are client-bound; a replica receiving one is a bug in
            // the wiring, but we tolerate it silently in release runs.
            Msg::ReadReply { .. }
            | Msg::ReadConfirm { .. }
            | Msg::WriteReply { .. }
            | Msg::OpFailed { .. } => {
                debug_assert!(false, "replica received a client-bound message");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        self.handle_timeout(ctx, timer.0);
    }

    fn service_cost(&self, msg: &Msg) -> SimDuration {
        match msg {
            Msg::ClientRead { kind, .. } => {
                if kind.is_icg() {
                    self.cfg.read_service + self.cfg.prelim_flush_extra
                } else {
                    self.cfg.read_service
                }
            }
            Msg::ClientWrite { .. } => self.cfg.write_service,
            Msg::PeerRead { .. } => self.cfg.peer_read_service,
            Msg::PeerWrite { .. } => self.cfg.peer_write_service,
            _ => SimDuration::ZERO,
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
