//! Cluster assembly: replicas, clients, preloading, and measured runs.

use simnet::{Engine, NodeId, SimDuration, SimTime, SiteId, Timer, Topology};

use crate::client::{WorkloadClient, KICKOFF};
use crate::messages::Msg;
use crate::replica::{Replica, ReplicaConfig};
use crate::types::{Key, Value, Version, Versioned};

/// A quorum-store deployment under simulation.
pub struct Cluster {
    /// The discrete-event engine.
    pub engine: Engine<Msg>,
    /// Replica node ids, in the order of `replica_sites`.
    pub replicas: Vec<NodeId>,
    /// Client node ids, in creation order.
    pub clients: Vec<NodeId>,
}

impl Cluster {
    /// Builds a fully replicated cluster with one replica per site.
    ///
    /// # Panics
    ///
    /// Panics if a site name is unknown in the topology.
    pub fn build(
        topology: Topology,
        replica_sites: &[&str],
        cfg: ReplicaConfig,
        seed: u64,
    ) -> Cluster {
        let sites: Vec<SiteId> = replica_sites
            .iter()
            .map(|n| {
                topology
                    .site_named(n)
                    .unwrap_or_else(|| panic!("unknown site {n}"))
            })
            .collect();
        let mut engine = Engine::new(topology, seed);
        let replicas: Vec<NodeId> = sites
            .iter()
            .map(|s| engine.add_node(*s, Box::new(Replica::new(cfg))))
            .collect();
        for (i, id) in replicas.iter().enumerate() {
            let peers: Vec<NodeId> = replicas
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            engine.node_as::<Replica>(*id).set_peers(peers);
        }
        Cluster {
            engine,
            replicas,
            clients: Vec::new(),
        }
    }

    /// Seeds every replica with the same records (version 1), modelling a
    /// converged preloaded dataset as YCSB's load phase produces.
    pub fn preload<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = (Key, Value)>,
    {
        let seeded: Vec<(Key, Versioned)> = records
            .into_iter()
            .map(|(k, v)| {
                (
                    k,
                    Versioned {
                        value: v,
                        version: Version { ts: 1, writer: 0 },
                    },
                )
            })
            .collect();
        for r in &self.replicas {
            let replica = self.engine.node_as::<Replica>(*r);
            for (k, v) in &seeded {
                replica.store.apply(*k, v.clone());
            }
        }
    }

    /// Adds a client node at `site` and schedules its kickoff.
    pub fn add_client(&mut self, site: SiteId, client: WorkloadClient) -> NodeId {
        let id = self.engine.add_node(site, Box::new(client));
        self.engine
            .schedule_timer(id, SimDuration::ZERO, Timer(KICKOFF));
        self.clients.push(id);
        id
    }

    /// Runs warm-up, resets bandwidth accounting, then runs the
    /// measurement window; returns the window's span for throughput math.
    pub fn run_measured(&mut self, warmup: SimDuration, window: SimDuration) -> SimDuration {
        let start = self.engine.now();
        self.engine.run_until(start + warmup);
        self.engine.bandwidth_mut().reset();
        self.engine.run_until(start + warmup + window);
        window
    }

    /// The standard measurement window boundaries for clients created
    /// before a [`Cluster::run_measured`] call at time zero.
    pub fn window(warmup: SimDuration, window: SimDuration) -> (SimTime, SimTime) {
        (SimTime::ZERO + warmup, SimTime::ZERO + warmup + window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SystemConfig;
    use simnet::EuUsSites;
    use ycsb::{Distribution, Workload};

    fn paper_cluster(cfg: ReplicaConfig, seed: u64) -> (Cluster, EuUsSites) {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = EuUsSites::resolve(&topo);
        let c = Cluster::build(topo, &["FRK", "IRL", "VRG"], cfg, seed);
        (c, sites)
    }

    #[test]
    fn build_wires_three_replicas() {
        let (cluster, _) = paper_cluster(ReplicaConfig::default(), 1);
        assert_eq!(cluster.replicas.len(), 3);
    }

    #[test]
    fn preload_seeds_every_replica() {
        let (mut cluster, _) = paper_cluster(ReplicaConfig::default(), 1);
        cluster.preload((0..10).map(|i| (Key::plain(i), Value::Opaque(100))));
        for r in cluster.replicas.clone() {
            let rep = cluster.engine.node_as::<Replica>(r);
            assert_eq!(rep.store.len(), 10);
            assert_eq!(rep.store.get(Key::plain(3)).version.ts, 1);
        }
    }

    #[test]
    fn closed_loop_client_completes_operations() {
        let (mut cluster, sites) = paper_cluster(ReplicaConfig::default(), 7);
        let workload = Workload::c(Distribution::Zipfian, 100);
        cluster.preload((0..100).map(|i| (Key::plain(i), Value::Opaque(100))));
        let (from, until) = Cluster::window(SimDuration::from_secs(1), SimDuration::from_secs(4));
        let frk_replica = cluster.replicas[0];
        let client = WorkloadClient::new(
            frk_replica,
            SystemConfig::baseline(1),
            &workload,
            4,
            99,
            from,
            until,
        );
        cluster.add_client(sites.irl, client);
        cluster.run_measured(SimDuration::from_secs(1), SimDuration::from_secs(4));
        let id = cluster.clients[0];
        let m = &cluster.engine.node_as::<WorkloadClient>(id).metrics;
        assert!(m.reads > 100, "only {} reads", m.reads);
        // C1 read from IRL to FRK costs ~ the 20ms RTT.
        let mut lat = m.final_latency.clone();
        let mean = lat.summary().mean.as_millis_f64();
        assert!((18.0..26.0).contains(&mean), "C1 mean {mean}ms");
        let _ = lat.p99();
    }
}
