//! Core data types of the quorum store.

use simnet::NodeId;

/// A storage key: a namespace tag plus a 64-bit id.
///
/// The case-study applications place different object families in
/// different namespaces (timelines vs. tweets, profiles vs. ads); plain
/// YCSB keys use namespace 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key {
    /// Object family (application-defined).
    pub ns: u8,
    /// Object id within the family.
    pub id: u64,
}

impl Key {
    /// A key in the default namespace.
    pub fn plain(id: u64) -> Key {
        Key { ns: 0, id }
    }

    /// Bytes this key occupies on the wire.
    pub fn wire_size(&self) -> usize {
        9
    }
}

/// A stored value.
///
/// Values are either opaque payloads (we track only their size, since the
/// simulator never inspects YCSB record contents) or lists of object ids
/// (timelines and ad-reference lists, which applications do inspect).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// `len` bytes of uninterpreted content.
    Opaque(u32),
    /// A list of referenced object ids.
    Ids(Vec<u64>),
    /// A single-field update of a multi-field record (YCSB's default
    /// update shape): only `field_len` bytes travel on the write path,
    /// but reads return the full `record_len`-byte record.
    Delta {
        /// Bytes written by the update.
        field_len: u32,
        /// Full record size returned by reads.
        record_len: u32,
    },
}

impl Value {
    /// Bytes this value occupies on the *read* path (the full record).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Opaque(n) => *n as usize,
            Value::Ids(ids) => ids.len() * 8,
            Value::Delta { record_len, .. } => *record_len as usize,
        }
    }

    /// Bytes this value occupies on the *write* path (the updated field
    /// for [`Value::Delta`], everything otherwise).
    pub fn write_size(&self) -> usize {
        match self {
            Value::Delta { field_len, .. } => *field_len as usize,
            other => other.wire_size(),
        }
    }

    /// The id list, if this is an [`Value::Ids`] value.
    pub fn ids(&self) -> Option<&[u64]> {
        match self {
            Value::Ids(ids) => Some(ids),
            _ => None,
        }
    }
}

/// Last-writer-wins version: coordinator timestamp with writer tiebreak.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Version {
    /// Coordination timestamp in simulation nanoseconds.
    pub ts: u64,
    /// Coordinating replica, breaking timestamp ties deterministically.
    pub writer: u32,
}

impl Version {
    /// The version of a never-written key.
    pub const ZERO: Version = Version { ts: 0, writer: 0 };
}

/// A value together with its version — what replicas store and what
/// clients receive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Versioned {
    /// The value.
    pub value: Value,
    /// Its last-writer-wins version.
    pub version: Version,
}

impl Versioned {
    /// The "missing" record: version zero, empty content.
    pub fn absent() -> Versioned {
        Versioned {
            value: Value::Opaque(0),
            version: Version::ZERO,
        }
    }

    /// Bytes on the wire: value plus the 12-byte version.
    pub fn wire_size(&self) -> usize {
        self.value.wire_size() + 12
    }
}

/// Identifier of one client operation, unique across the simulation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// The issuing client node.
    pub client: NodeId,
    /// Per-client sequence number.
    pub seq: u64,
}

/// How a read should be executed by the coordinator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadKind {
    /// Baseline Cassandra: one response once a read quorum of `r` is
    /// gathered (`r == 1` answers from the coordinator's local state).
    Single {
        /// Read quorum size.
        r: u8,
    },
    /// Correctable Cassandra: a preliminary response from the
    /// coordinator's local state (the "preliminary flush"), then a final
    /// response at quorum `r`. With `confirm`, a final identical to the
    /// preliminary is replaced by a small confirmation message (*CC).
    Icg {
        /// Read quorum size for the final view.
        r: u8,
        /// Enable the confirmation-message bandwidth optimization.
        confirm: bool,
    },
}

impl ReadKind {
    /// The read quorum size of the final (or only) response.
    pub fn quorum(&self) -> u8 {
        match self {
            ReadKind::Single { r } | ReadKind::Icg { r, .. } => *r,
        }
    }

    /// Whether this read produces a preliminary view.
    pub fn is_icg(&self) -> bool {
        matches!(self, ReadKind::Icg { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_is_ts_then_writer() {
        let a = Version { ts: 5, writer: 1 };
        let b = Version { ts: 5, writer: 2 };
        let c = Version { ts: 6, writer: 0 };
        assert!(a < b);
        assert!(b < c);
        assert!(Version::ZERO < a);
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Key::plain(7).wire_size(), 9);
        assert_eq!(Value::Opaque(100).wire_size(), 100);
        assert_eq!(Value::Ids(vec![1, 2, 3]).wire_size(), 24);
        assert_eq!(
            Versioned {
                value: Value::Opaque(100),
                version: Version::ZERO
            }
            .wire_size(),
            112
        );
    }

    #[test]
    fn read_kind_accessors() {
        assert_eq!(ReadKind::Single { r: 2 }.quorum(), 2);
        assert!(!ReadKind::Single { r: 1 }.is_icg());
        let icg = ReadKind::Icg {
            r: 3,
            confirm: true,
        };
        assert_eq!(icg.quorum(), 3);
        assert!(icg.is_icg());
    }

    #[test]
    fn absent_record() {
        let a = Versioned::absent();
        assert_eq!(a.version, Version::ZERO);
        assert_eq!(a.value.wire_size(), 0);
        assert_eq!(a.value.ids(), None);
    }
}
