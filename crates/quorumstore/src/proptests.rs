//! Property-based tests of the storage engine and quorum invariants.

use proptest::prelude::*;

use crate::storage::LocalStore;
use crate::types::{Key, Value, Version, Versioned};

fn arb_version() -> impl Strategy<Value = Version> {
    (0u64..1_000, 0u32..8).prop_map(|(ts, writer)| Version { ts, writer })
}

fn arb_record() -> impl Strategy<Value = (Key, Versioned)> {
    (0u64..16, arb_version(), 0u32..64).prop_map(|(k, version, len)| {
        (
            Key::plain(k),
            Versioned {
                value: Value::Opaque(len),
                version,
            },
        )
    })
}

proptest! {
    /// Last-writer-wins convergence: any two replicas that apply the same
    /// multiset of writes (in any order) end in the same state.
    #[test]
    fn lww_replicas_converge_regardless_of_order(
        writes in proptest::collection::vec(arb_record(), 1..60),
        seed in any::<u64>(),
    ) {
        let mut a = LocalStore::new();
        for (k, v) in &writes {
            a.apply(*k, v.clone());
        }
        // Replica B applies a shuffled copy.
        let mut shuffled = writes.clone();
        let mut rng = simnet::DetRng::seed_from_u64(seed);
        rng.shuffle(&mut shuffled);
        let mut b = LocalStore::new();
        for (k, v) in &shuffled {
            b.apply(*k, v.clone());
        }
        for (k, _) in &writes {
            prop_assert_eq!(a.get(*k), b.get(*k), "diverged on {:?}", k);
        }
    }

    /// The stored version never decreases as writes are applied.
    #[test]
    fn versions_are_monotone(writes in proptest::collection::vec(arb_record(), 1..60)) {
        let mut s = LocalStore::new();
        let mut highs: std::collections::HashMap<Key, Version> = Default::default();
        for (k, v) in &writes {
            let before = s.version_of(*k);
            s.apply(*k, v.clone());
            let after = s.version_of(*k);
            prop_assert!(after >= before);
            let h = highs.entry(*k).or_insert(Version::ZERO);
            *h = (*h).max(v.version);
            prop_assert_eq!(after, *h, "store must hold the max version");
        }
    }

    /// Apply is idempotent.
    #[test]
    fn apply_is_idempotent(writes in proptest::collection::vec(arb_record(), 1..30)) {
        let mut once = LocalStore::new();
        let mut twice = LocalStore::new();
        for (k, v) in &writes {
            once.apply(*k, v.clone());
            twice.apply(*k, v.clone());
            twice.apply(*k, v.clone());
        }
        for (k, _) in &writes {
            prop_assert_eq!(once.get(*k), twice.get(*k));
        }
    }

    /// Wire sizes: a write-path Delta is never larger than its read-path
    /// record, and both are consistent with the declared sizes.
    #[test]
    fn delta_write_size_is_bounded(field in 0u32..10_000, record in 0u32..10_000) {
        let v = Value::Delta { field_len: field, record_len: record };
        prop_assert_eq!(v.write_size(), field as usize);
        prop_assert_eq!(v.wire_size(), record as usize);
    }
}
