//! The Correctables binding for the quorum store (the paper's "CC binding").
//!
//! [`SimStore`] wraps a simulated cluster plus a **gateway** client node and
//! exposes a [`Binding`] whose levels are `Weak` (R = 1) and `Strong`
//! (R = `r_strong`):
//!
//! - `invoke_weak`  → a single `R = 1` read (baseline C1);
//! - `invoke_strong` → a single quorum read (baseline C2/C3);
//! - `invoke` → a server-side ICG read: preliminary flush + final quorum
//!   view (CC), with the confirmation optimization if enabled (*CC).
//!
//! Because the simulator is single-threaded, `submit` only *enqueues*
//! operations; [`SimStore::settle`] drives the engine until every
//! outstanding Correctable resolves. Operations issued from inside
//! callbacks (speculative prefetches!) are picked up by the gateway at the
//! very simulation instant the callback runs, so chained latencies are
//! measured exactly as a real asynchronous client would experience them.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, Error, KeyedOp, LevelSet, ObjectId, Upcall};
use simnet::{Ctx, Node, NodeId, SimDuration, SimTime, Timer, Topology};

use crate::cluster::Cluster;
use crate::messages::{Msg, Phase};
use crate::replica::ReplicaConfig;
use crate::types::{Key, OpId, ReadKind, Value, Versioned};

/// Operations accepted by the binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// Read a key.
    Read(Key),
    /// Write a key (always `W = 1`, as in the paper's evaluation).
    Write(Key, Value),
}

impl KeyedOp for StoreOp {
    fn object_id(&self) -> ObjectId {
        let key = match self {
            StoreOp::Read(k) => k,
            StoreOp::Write(k, _) => k,
        };
        // Spread the namespace across all bits so (ns, id) pairs rarely
        // collide; the ring re-hashes this anyway.
        ObjectId(key.id ^ u64::from(key.ns).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Timing of one completed gateway operation, in virtual milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct OpTiming {
    /// When the preliminary view arrived (ICG reads only).
    pub prelim_ms: Option<f64>,
    /// When the final view arrived.
    pub final_ms: f64,
    /// Whether this was a read.
    pub is_read: bool,
}

struct QueuedOp {
    op: StoreOp,
    upcall: Upcall<Versioned>,
    kind: ReadKind,
    close_level: ConsistencyLevel,
}

type OpQueue = Arc<Mutex<VecDeque<QueuedOp>>>;
type Timings = Arc<Mutex<Vec<OpTiming>>>;

struct GwPending {
    upcall: Upcall<Versioned>,
    close_level: ConsistencyLevel,
    start: SimTime,
    prelim: Option<Versioned>,
    prelim_at: Option<SimTime>,
    is_read: bool,
    written: Option<Versioned>,
}

/// The in-simulation client node that executes queued operations.
pub struct Gateway {
    coordinator: NodeId,
    queue: OpQueue,
    timings: Timings,
    /// Virtual now (nanoseconds), mirrored for callback-side reading.
    clock: Arc<AtomicU64>,
    next_seq: u64,
    pending: HashMap<OpId, GwPending>,
    /// Client-side deadline per operation. `None` (the default) preserves
    /// the original wait-forever behaviour; fault-injected runs set it so
    /// a lost reply fails the Correctable instead of wedging `settle`.
    client_timeout: Option<SimDuration>,
    timer_ops: HashMap<u64, OpId>,
    next_timer: u64,
}

const KICK: u64 = u64::MAX - 1;

impl Gateway {
    fn arm_client_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId) {
        if let Some(d) = self.client_timeout {
            let token = self.next_timer;
            self.next_timer += 1;
            self.timer_ops.insert(token, op);
            ctx.set_timer(d, Timer(token));
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            let id = OpId {
                client: ctx.id(),
                seq: self.next_seq,
            };
            self.next_seq += 1;
            let (msg, is_read, written) = match q.op {
                StoreOp::Read(key) => (
                    Msg::ClientRead {
                        op: id,
                        key,
                        kind: q.kind,
                    },
                    true,
                    None,
                ),
                StoreOp::Write(key, value) => {
                    let written = Versioned {
                        value: value.clone(),
                        version: crate::types::Version::ZERO,
                    };
                    (
                        Msg::ClientWrite {
                            op: id,
                            key,
                            value,
                            w: 1,
                        },
                        false,
                        Some(written),
                    )
                }
            };
            self.pending.insert(
                id,
                GwPending {
                    upcall: q.upcall,
                    close_level: q.close_level,
                    start: ctx.now(),
                    prelim: None,
                    prelim_at: None,
                    is_read,
                    written,
                },
            );
            self.arm_client_timeout(ctx, id);
            ctx.send(self.coordinator, msg);
        }
    }

    fn finish(&mut self, ctx: &Ctx<'_, Msg>, id: OpId, data: Option<Versioned>) {
        let Some(p) = self.pending.remove(&id) else {
            return;
        };
        let now = ctx.now();
        self.timings.lock().push(OpTiming {
            prelim_ms: p.prelim_at.map(|t| t.since(p.start).as_millis_f64()),
            final_ms: now.since(p.start).as_millis_f64(),
            is_read: p.is_read,
        });
        let value = data
            .or(p.prelim)
            .or(p.written)
            .unwrap_or_else(Versioned::absent);
        p.upcall.deliver(value, p.close_level);
    }
}

impl Node<Msg> for Gateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        self.clock.store(ctx.now().as_nanos(), Ordering::Relaxed);
        match msg {
            Msg::ReadReply {
                op,
                phase: Phase::Preliminary,
                data,
            } => {
                if let Some(p) = self.pending.get_mut(&op) {
                    p.prelim = Some(data.clone());
                    p.prelim_at = Some(ctx.now());
                    let up = p.upcall.clone();
                    up.deliver(data, ConsistencyLevel::WEAK);
                }
            }
            Msg::ReadReply { op, data, .. } => {
                self.finish(ctx, op, Some(data));
            }
            Msg::ReadConfirm { op, version } => {
                // *CC: the final view equals the preliminary. Confirm only
                // against the preliminary we actually hold: if it was lost
                // in transit (or somehow mismatches), promoting a missing
                // record to a strong view would fabricate a wrong result —
                // fail the operation instead and let the client retry.
                let confirmed = self
                    .pending
                    .get(&op)
                    .and_then(|p| p.prelim.clone())
                    .filter(|prelim| prelim.version == version);
                match confirmed {
                    Some(prelim) => self.finish(ctx, op, Some(prelim)),
                    None => {
                        if let Some(p) = self.pending.remove(&op) {
                            p.upcall.fail(Error::Unavailable(
                                "read confirmation without matching preliminary view".into(),
                            ));
                        }
                    }
                }
            }
            Msg::WriteReply { op } => {
                self.finish(ctx, op, None);
            }
            Msg::OpFailed { op, .. } => {
                if let Some(p) = self.pending.remove(&op) {
                    p.upcall.fail(Error::Timeout);
                }
            }
            _ => {}
        }
        // Callbacks above may have enqueued nested operations; pick them up
        // at this exact simulation instant.
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        self.clock.store(ctx.now().as_nanos(), Ordering::Relaxed);
        if timer.0 == KICK {
            self.drain(ctx);
        } else if let Some(op) = self.timer_ops.remove(&timer.0) {
            // Client-side deadline: a reply was lost (downtime, partition,
            // drop) — fail the Correctable so callers observe the outage.
            if let Some(p) = self.pending.remove(&op) {
                p.upcall.fail(Error::Timeout);
            }
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct SimState {
    cluster: Cluster,
    gateway: NodeId,
}

/// A simulated quorum store with a synchronously driveable binding.
#[derive(Clone)]
pub struct SimStore {
    state: Arc<Mutex<SimState>>,
    queue: OpQueue,
    timings: Timings,
    clock: Arc<AtomicU64>,
    r_strong: u8,
    confirm: bool,
}

impl SimStore {
    /// Builds the paper's FRK/IRL/VRG deployment with the client gateway at
    /// `client_site` (by name) connected to `coordinator_idx` (index into
    /// the replica list, FRK/IRL/VRG order).
    ///
    /// # Panics
    ///
    /// Panics if the site name is unknown.
    pub fn ec2(
        cfg: ReplicaConfig,
        r_strong: u8,
        confirm: bool,
        client_site: &str,
        coordinator_idx: usize,
        seed: u64,
    ) -> SimStore {
        SimStore::custom(
            Topology::ec2_frk_irl_vrg(),
            &["FRK", "IRL", "VRG"],
            cfg,
            r_strong,
            confirm,
            client_site,
            coordinator_idx,
            seed,
        )
    }

    /// Builds a deployment over an arbitrary topology (e.g. the Twissandra
    /// US-wide deployment of §6.3.1).
    ///
    /// # Panics
    ///
    /// Panics if a site name is unknown or `coordinator_idx` is out of
    /// range.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        topology: Topology,
        replica_sites: &[&str],
        cfg: ReplicaConfig,
        r_strong: u8,
        confirm: bool,
        client_site: &str,
        coordinator_idx: usize,
        seed: u64,
    ) -> SimStore {
        let site = topology.site_named(client_site).expect("known site");
        let mut cluster = Cluster::build(topology, replica_sites, cfg, seed);
        let queue: OpQueue = Arc::new(Mutex::new(VecDeque::new()));
        let timings: Timings = Arc::new(Mutex::new(Vec::new()));
        let clock = Arc::new(AtomicU64::new(0));
        let coordinator = cluster.replicas[coordinator_idx];
        let gateway = cluster.engine.add_node(
            site,
            Box::new(Gateway {
                coordinator,
                queue: Arc::clone(&queue),
                timings: Arc::clone(&timings),
                clock: Arc::clone(&clock),
                next_seq: 0,
                pending: HashMap::new(),
                client_timeout: None,
                timer_ops: HashMap::new(),
                next_timer: 0,
            }),
        );
        SimStore {
            state: Arc::new(Mutex::new(SimState { cluster, gateway })),
            queue,
            timings,
            clock,
            r_strong,
            confirm,
        }
    }

    /// A handle mirroring the current virtual time (nanoseconds), readable
    /// from inside Correctable callbacks while the simulation runs.
    pub fn clock(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.clock)
    }

    /// Installs a fault plan on the underlying simulation (message drops,
    /// downtime windows, site partitions). Combine with
    /// [`SimStore::set_client_timeout`] so lost replies fail operations
    /// instead of wedging [`SimStore::settle`].
    pub fn set_faults(&self, faults: simnet::Faults) {
        self.state.lock().cluster.engine.set_faults(faults);
    }

    /// Sets a client-side deadline for every subsequently submitted
    /// operation: if neither a final reply nor a coordinator failure
    /// arrives within `d` of virtual time, the operation fails with
    /// [`Error::Timeout`].
    pub fn set_client_timeout(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.cluster.engine.node_as::<Gateway>(gw).client_timeout = Some(d);
    }

    /// The replica node ids, in FRK/IRL/VRG (site-list) order — fault
    /// schedules target these.
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.state.lock().cluster.replicas.clone()
    }

    /// All site ids of the deployment's topology.
    pub fn site_ids(&self) -> Vec<simnet::SiteId> {
        let st = self.state.lock();
        (0..st.cluster.engine.topology().len())
            .map(simnet::SiteId)
            .collect()
    }

    /// Total bytes that crossed the gateway's client link so far.
    pub fn gateway_link_bytes(&self) -> u64 {
        let st = self.state.lock();
        st.cluster.engine.bandwidth().link_bytes(st.gateway)
    }

    /// The Correctables binding over this store.
    pub fn binding(&self) -> QuorumBinding {
        QuorumBinding {
            store: self.clone(),
        }
    }

    /// Seeds records on every replica (converged dataset).
    pub fn preload<I>(&self, records: I)
    where
        I: IntoIterator<Item = (Key, Value)>,
    {
        self.state.lock().cluster.preload(records);
    }

    /// Drives the simulation until every submitted operation (including
    /// operations issued from inside callbacks) has resolved.
    ///
    /// Runs in bounded virtual-time slices rather than to full quiescence,
    /// so coordinator op-timeout timers (armed several seconds out) do not
    /// drag the virtual clock forward once all work is done.
    ///
    /// # Panics
    ///
    /// Panics if operations fail to resolve within a very large horizon
    /// (indicating a protocol bug).
    pub fn settle(&self) {
        let mut st = self.state.lock();
        let slice = SimDuration::from_millis(5);
        for _ in 0..2_000_000 {
            let gw = st.gateway;
            st.cluster
                .engine
                .schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
            let limit = st.cluster.engine.now() + slice;
            st.cluster.engine.run_until(limit);
            let gateway_idle = st.cluster.engine.node_as::<Gateway>(gw).pending.is_empty();
            if gateway_idle && self.queue.lock().is_empty() {
                return;
            }
        }
        panic!("operations failed to settle within the simulation horizon");
    }

    /// Timings of all completed operations so far.
    pub fn timings(&self) -> Vec<OpTiming> {
        self.timings.lock().clone()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.state.lock().cluster.engine.now().as_millis_f64()
    }

    /// Advances virtual time without any work (models client think time).
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let until = st.cluster.engine.now() + d;
        st.cluster.engine.run_until(until);
    }
}

/// `Binding` implementation over [`SimStore`].
#[derive(Clone)]
pub struct QuorumBinding {
    store: SimStore,
}

impl Binding for QuorumBinding {
    type Op = StoreOp;
    type Val = Versioned;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: StoreOp, levels: &[ConsistencyLevel], upcall: Upcall<Versioned>) {
        let weak = levels.contains(&ConsistencyLevel::WEAK);
        let strong = levels.contains(&ConsistencyLevel::STRONG);
        let kind = match (weak, strong) {
            (true, true) => ReadKind::Icg {
                r: self.store.r_strong,
                confirm: self.store.confirm,
            },
            (false, _) => ReadKind::Single {
                r: self.store.r_strong,
            },
            (true, false) => ReadKind::Single { r: 1 },
        };
        let close_level = upcall.strongest();
        self.store.queue.lock().push_back(QueuedOp {
            op,
            upcall,
            kind,
            close_level,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::{Client, State};

    fn store(confirm: bool) -> SimStore {
        // Client in IRL, coordinator in FRK — the paper's §6.1 setup.
        let s = SimStore::ec2(ReplicaConfig::default(), 2, confirm, "IRL", 0, 42);
        s.preload((0..32).map(|i| (Key::plain(i), Value::Opaque(100))));
        s
    }

    #[test]
    fn invoke_weak_closes_with_single_view() {
        let s = store(false);
        let client = Client::new(s.binding());
        let c = client.invoke_weak(StoreOp::Read(Key::plain(1)));
        assert_eq!(c.state(), State::Updating);
        s.settle();
        let v = c.final_view().expect("settled");
        assert_eq!(v.level, ConsistencyLevel::WEAK);
        assert_eq!(v.value.value, Value::Opaque(100));
        assert!(c.preliminary_views().is_empty());
    }

    #[test]
    fn invoke_gives_preliminary_then_final() {
        let s = store(false);
        let client = Client::new(s.binding());
        let c = client.invoke(StoreOp::Read(Key::plain(1)));
        s.settle();
        assert_eq!(c.preliminary_views().len(), 1);
        assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::STRONG);
        // Preliminary (local flush) must beat final (quorum of 2) by ~ the
        // FRK–IRL RTT.
        let t = s.timings();
        assert_eq!(t.len(), 1);
        let gap = t[0].final_ms - t[0].prelim_ms.unwrap();
        assert!((15.0..30.0).contains(&gap), "gap {gap}ms");
    }

    #[test]
    fn preliminary_latency_tracks_client_coordinator_rtt() {
        let s = store(false);
        let client = Client::new(s.binding());
        let _c = client.invoke(StoreOp::Read(Key::plain(3)));
        s.settle();
        let t = s.timings()[0];
        let p = t.prelim_ms.unwrap();
        assert!((18.0..26.0).contains(&p), "prelim {p}ms");
    }

    #[test]
    fn write_then_strong_read_sees_value() {
        let s = store(false);
        let client = Client::new(s.binding());
        let w = client.invoke_strong(StoreOp::Write(Key::plain(5), Value::Opaque(77)));
        s.settle();
        assert_eq!(w.state(), State::Final);
        let r = client.invoke_strong(StoreOp::Read(Key::plain(5)));
        s.settle();
        assert_eq!(r.final_view().unwrap().value.value, Value::Opaque(77));
    }

    #[test]
    fn confirmation_mode_still_delivers_final_value() {
        let s = store(true);
        let client = Client::new(s.binding());
        let c = client.invoke(StoreOp::Read(Key::plain(2)));
        s.settle();
        // No write raced, so the final equals the preliminary and arrived
        // as a confirmation — the value must still be the real record.
        let v = c.final_view().unwrap();
        assert_eq!(v.value.value, Value::Opaque(100));
        assert_eq!(v.level, ConsistencyLevel::STRONG);
    }

    #[test]
    fn nested_invoke_from_callback_resolves_in_same_settle() {
        let s = store(false);
        let client = Client::new(s.binding());
        let binding = s.binding();
        // Speculatively chase a pointer: read key 1, then read key 2.
        let out = client.invoke(StoreOp::Read(Key::plain(1))).speculate_async(
            move |_v: &Versioned| {
                Client::new(binding.clone())
                    .invoke_strong(StoreOp::Read(Key::plain(2)))
                    .map(|v| v.clone())
            },
            |_| {},
        );
        s.settle();
        assert_eq!(out.state(), State::Final);
        // Speculation started at the preliminary (~20ms) and took a strong
        // read (~40ms): total ~60ms, well before prelim+final+strong (~80).
        let ts = s.timings();
        assert_eq!(ts.len(), 2, "outer read + nested read");
    }
}
