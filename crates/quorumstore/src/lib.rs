//! # quorumstore — a Cassandra-model quorum store with Correctable support
//!
//! The paper evaluates Correctables on a modified Apache Cassandra
//! ("Correctable Cassandra", CC). This crate rebuilds the relevant
//! mechanics from scratch on the deterministic simulator:
//!
//! - **Replication**: every key on every replica (RF = 3 over the paper's
//!   FRK/IRL/VRG EC2 sites), last-writer-wins versions.
//! - **Coordination**: any replica coordinates; reads gather `R` replies,
//!   writes stamp a version, apply locally, and propagate asynchronously
//!   (`W = 1`), producing the staleness ICG exposes.
//! - **CC** (§5.2): coordinators flush a preliminary response from local
//!   state before gathering the read quorum (Figure 4), at a small extra
//!   coordinator cost.
//! - ***CC**: a final view equal to the preliminary is replaced by a tiny
//!   confirmation message, cutting the bandwidth overhead of ICG.
//! - **Read repair** (optional) and **operation timeouts** for fault runs.
//!
//! Drive it either with the closed-loop YCSB clients
//! ([`client::WorkloadClient`], used by the Figure 5–8 harnesses) or
//! through the Correctables [`binding::SimStore`] binding (used by the
//! examples and the case studies).

pub mod binding;
pub mod client;
pub mod cluster;
pub mod messages;
#[cfg(test)]
mod proptests;
pub mod replica;
pub mod storage;
pub mod types;

pub use binding::{OpTiming, QuorumBinding, SimStore, StoreOp};
pub use client::{ClientMetrics, SystemConfig, WorkloadClient, KICKOFF};
pub use cluster::Cluster;
pub use messages::{FailReason, Msg, Phase, FRAME_BYTES};
pub use replica::{Replica, ReplicaConfig};
pub use storage::LocalStore;
pub use types::{Key, OpId, ReadKind, Value, Version, Versioned};
