//! A minimal Rust lexer: just enough token structure for the lint passes.
//!
//! The passes match on token *sequences* (`Instant :: now`, `. unwrap ( )`,
//! `unsafe {`), so the lexer's only real obligations are the ones a regex
//! can't meet: string/char literals and comments must never leak their
//! contents into the token stream (an `unwrap` inside a doc comment is not
//! a finding), lifetimes must not be confused with char literals, and every
//! token must carry its source line for diagnostics.
//!
//! There is no keyword table and no precedence — `unsafe` is just an
//! identifier token here. The item structure (functions, enums, impl
//! blocks) is recovered by [`crate::scan`] on top of this stream.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `{`, `[`, `!`, …).
    Punct,
    /// A string, char, byte, or numeric literal (contents opaque).
    Literal,
    /// A lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's kind.
    pub kind: TokKind,
    /// The token text; literals keep only a placeholder, not contents.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment (line or block), kept out of the token stream but retained
/// for the SAFETY-comment and waiver checks.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on. A run of `//` comments on
    /// consecutive lines with no code between them is merged into one
    /// `Comment` spanning the whole block, so adjacency checks treat a
    /// multi-line `// SAFETY: …` argument as a single comment.
    pub end_line: u32,
}

/// The result of lexing one source file.
pub struct Lexed {
    /// Code tokens, in order.
    pub tokens: Vec<Token>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and comments.
///
/// Unterminated literals or comments are tolerated (the rest of the file
/// is simply consumed) — a linter must degrade, not abort, on the code it
/// is pointed at.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (incl. doc comments).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                });
            }
            // Block comment, nesting like Rust's.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                    end_line: line,
                });
            }
            // String literal (also the tail of byte strings; the `b` was
            // lexed as an ident, which is harmless for our passes).
            b'"' => {
                let tok_line = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "\"…\"".to_string(),
                    line: tok_line,
                });
            }
            // Raw string r"…" / r#"…"# (and br…): count the hashes, then
            // scan to the matching close quote + hashes.
            b'r' if matches!(b.get(i + 1), Some(b'"') | Some(b'#')) => {
                let tok_line = line;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    j += 1;
                    // Scan for `"` followed by `hashes` hashes.
                    loop {
                        match b.get(j) {
                            None => break,
                            Some(&b'"') => {
                                let close = (1..=hashes).all(|k| b.get(j + k) == Some(&b'#'));
                                if close {
                                    j += 1 + hashes;
                                    break;
                                }
                                j += 1;
                            }
                            Some(&b'\n') => {
                                line += 1;
                                j += 1;
                            }
                            Some(_) => j += 1,
                        }
                    }
                    i = j;
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        text: "r\"…\"".to_string(),
                        line: tok_line,
                    });
                } else {
                    // `r#ident` raw identifier: lex as an ident.
                    let start = i;
                    i = j;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            // `'` — lifetime or char literal. A lifetime is `'` + ident
            // not closed by a `'` right after one payload char.
            b'\'' => {
                let is_lifetime = match (b.get(i + 1), b.get(i + 2)) {
                    (Some(&n), Some(&after)) => {
                        (n.is_ascii_alphabetic() || n == b'_') && after != b'\''
                    }
                    (Some(&n), None) => n.is_ascii_alphabetic() || n == b'_',
                    _ => false,
                };
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    // Char literal: `'x'`, `'\n'`, `'\u{1F600}'`.
                    let tok_line = line;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        text: "'…'".to_string(),
                        line: tok_line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Digits, `_` separators, hex/bin letters, and type
                // suffixes. A float's `.` lexes as a separate punct —
                // no pass cares about numeric structure.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    let comments = merge_line_comments(&tokens, comments);
    Lexed { tokens, comments }
}

/// Merges consecutive-line `//` comments with no code token between
/// them into single block comments (see [`Comment::end_line`]).
fn merge_line_comments(tokens: &[Token], comments: Vec<Comment>) -> Vec<Comment> {
    let mut out: Vec<Comment> = Vec::new();
    for c in comments {
        if let Some(prev) = out.last_mut() {
            let contiguous = prev.text.starts_with("//")
                && c.text.starts_with("//")
                && c.line == prev.end_line + 1
                && !tokens
                    .iter()
                    .any(|t| t.line >= prev.end_line && t.line <= c.line);
            if contiguous {
                prev.text.push('\n');
                prev.text.push_str(&c.text);
                prev.end_line = c.line;
                continue;
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(texts("foo.unwrap()"), vec!["foo", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = texts(r#"x.expect("please unwrap()")"#);
        assert!(toks.iter().filter(|t| *t == "unwrap").count() == 0);
        assert_eq!(toks.iter().filter(|t| *t == "expect").count(), 1);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("// has unwrap() in it\nlet x = 1;");
        assert!(lexed.tokens.iter().all(|t| t.text != "unwrap"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert_eq!(lexed.tokens[0].text, "let");
        assert_eq!(lexed.tokens[0].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) {}");
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let lexed = lex("let s = r#\"panic!(\"no\")\"#; /* outer /* panic! */ still */ done");
        assert!(lexed.tokens.iter().all(|t| t.text != "panic"));
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn consecutive_line_comments_merge_into_a_block() {
        let lexed = lex(
            "// SAFETY: the first `len` slots are initialized, and `len` is\n\
             // reset below so they are never read again.\n\
             let x = 1;\n\
             // standalone — code above breaks the run\n",
        );
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 2);
        assert!(lexed.comments[0].text.contains("never read again"));

        // A trailing comment after code must not merge with the next line.
        let lexed = lex("let x = 1; // note\n// SAFETY: unrelated\nlet y = 2;");
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lines_advance_through_multiline_constructs() {
        let lexed = lex("/* a\nb */\nfn g() {}");
        let fn_tok = lexed.tokens.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(fn_tok.line, 3);
        assert_eq!(lexed.comments[0].end_line, 2);
    }
}
