//! The baseline file: accepted pre-existing findings, so the CI gate is
//! *zero new violations* rather than zero violations.
//!
//! Each line is a finding fingerprint (pass, file, kind, detail — tab
//! separated) plus an accepted count. A finding is "new" when the
//! current tree has more findings with that fingerprint than the
//! baseline accepts; shrinking below the accepted count is always fine
//! (and `baseline` mode re-tightens the file to what remains).

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::Finding;

/// Accepted finding counts by fingerprint.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(e),
        };
        let mut counts = BTreeMap::new();
        for line in src.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // fingerprint = first four tab-separated fields; count = fifth.
            let mut fields: Vec<&str> = line.split('\t').collect();
            let count = if fields.len() == 5 {
                fields.pop().and_then(|c| c.parse().ok()).unwrap_or(1)
            } else {
                1
            };
            *counts.entry(fields.join("\t")).or_insert(0) += count;
        }
        Ok(Baseline { counts })
    }

    /// Splits findings into `(new, accepted)` against this baseline.
    /// Within one fingerprint the earliest findings (by line) are
    /// treated as the accepted ones — stable and closest to the file
    /// state the baseline was taken from.
    pub fn partition(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>) {
        let mut by_key: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
        for f in findings {
            by_key.entry(f.fingerprint()).or_default().push(f);
        }
        let mut fresh = Vec::new();
        let mut accepted = Vec::new();
        for (key, mut group) in by_key {
            group.sort_by_key(|f| f.line);
            let allowed = self.counts.get(&key).copied().unwrap_or(0);
            for (i, f) in group.into_iter().enumerate() {
                if i < allowed {
                    accepted.push(f);
                } else {
                    fresh.push(f);
                }
            }
        }
        fresh.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        accepted.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        (fresh, accepted)
    }

    /// Renders a baseline accepting exactly `findings`.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.fingerprint()).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# icg-lint baseline — accepted pre-existing findings.\n\
             # One fingerprint per line: pass<TAB>file<TAB>kind<TAB>detail<TAB>count.\n\
             # Regenerate with `scripts/lint.sh baseline` after deliberate changes;\n\
             # the CI gate fails only on findings NOT covered here.\n",
        );
        for (key, n) in counts {
            out.push_str(&key);
            out.push('\t');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: &'static str, detail: &str, line: u32) -> Finding {
        Finding {
            pass: "panic_path",
            file: "crates/x/src/lib.rs".into(),
            line,
            kind,
            detail: detail.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn counts_gate_new_findings_per_fingerprint() {
        let accepted = vec![finding("unwrap", "f", 10)];
        let text = Baseline::render(&accepted);
        let dir = std::env::temp_dir().join("icg-lint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline");
        std::fs::write(&path, text).unwrap();
        let bl = Baseline::load(&path).unwrap();

        // Same count: nothing new.
        let (fresh, old) = bl.partition(vec![finding("unwrap", "f", 12)]);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);

        // One more with the same fingerprint: exactly one is new.
        let (fresh, old) =
            bl.partition(vec![finding("unwrap", "f", 12), finding("unwrap", "f", 30)]);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].line, 30);
        assert_eq!(old.len(), 1);

        // A different fingerprint is new outright.
        let (fresh, _) = bl.partition(vec![finding("index", "f", 5)]);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn missing_file_is_empty() {
        let bl = Baseline::load(Path::new("/nonexistent/baseline")).unwrap();
        let (fresh, old) = bl.partition(vec![finding("unwrap", "f", 1)]);
        assert_eq!(fresh.len(), 1);
        assert!(old.is_empty());
    }
}
