//! The `icg-lint` CLI.
//!
//! ```text
//! icg-lint check              # gate: fail on findings not in the baseline
//! icg-lint report             # print every finding (baseline ignored)
//! icg-lint baseline           # rewrite lint.baseline to accept the current tree
//! icg-lint unsafety           # rewrite UNSAFETY.md from the current tree
//! ```
//!
//! Flags: `--root <dir>` (default: walk up from the current directory to
//! the first `lint.toml`), `--config <file>`, `--baseline <file>`.
//! Exit codes: 0 clean, 1 new findings (or stale UNSAFETY.md under
//! `check`), 2 usage/config error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use icg_lint::baseline::Baseline;
use icg_lint::config::Config;
use icg_lint::{run_all, unsafety};

struct Args {
    mode: String,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icg-lint: {e}");
            eprintln!("usage: icg-lint <check|report|baseline|unsafety> [--root DIR] [--config FILE] [--baseline FILE]");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.clone().map(Ok).unwrap_or_else(find_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("icg-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint.baseline"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("icg-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match args.mode.as_str() {
        "check" => check(&root, &cfg, &baseline_path),
        "report" => report(&root, &cfg),
        "baseline" => write_baseline(&root, &cfg, &baseline_path),
        "unsafety" => write_unsafety(&root, &cfg),
        other => {
            eprintln!("icg-lint: unknown mode `{other}` (want check|report|baseline|unsafety)");
            ExitCode::from(2)
        }
    }
}

fn check(root: &Path, cfg: &Config, baseline_path: &Path) -> ExitCode {
    let baseline = match Baseline::load(baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("icg-lint: {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let (fresh, accepted) = baseline.partition(run_all(root, cfg));
    let mut failed = false;
    if !fresh.is_empty() {
        failed = true;
        for f in &fresh {
            println!("{f}");
        }
        println!(
            "icg-lint: {} new finding(s) not covered by {} ({} accepted)",
            fresh.len(),
            baseline_path.display(),
            accepted.len()
        );
        println!(
            "icg-lint: fix them, waive with `// lint: allow(<pass>) — reason`, or \
             accept deliberately via `scripts/lint.sh baseline`"
        );
    }
    if let Err(_want) = unsafety::check(root, cfg, &root.join("UNSAFETY.md")) {
        failed = true;
        println!(
            "icg-lint: UNSAFETY.md is stale; regenerate with `cargo run -p icg-lint -- unsafety`"
        );
    }
    if failed {
        return ExitCode::from(1);
    }
    println!(
        "icg-lint: clean ({} accepted baseline finding(s), UNSAFETY.md current)",
        accepted.len()
    );
    ExitCode::SUCCESS
}

fn report(root: &Path, cfg: &Config) -> ExitCode {
    let findings = run_all(root, cfg);
    for f in &findings {
        println!("{f}");
    }
    println!("icg-lint: {} finding(s) before baseline", findings.len());
    ExitCode::SUCCESS
}

fn write_baseline(root: &Path, cfg: &Config, baseline_path: &Path) -> ExitCode {
    let findings = run_all(root, cfg);
    let text = Baseline::render(&findings);
    if let Err(e) = std::fs::write(baseline_path, text) {
        eprintln!("icg-lint: write {}: {e}", baseline_path.display());
        return ExitCode::from(2);
    }
    println!(
        "icg-lint: wrote {} accepting {} finding(s)",
        baseline_path.display(),
        findings.len()
    );
    ExitCode::SUCCESS
}

fn write_unsafety(root: &Path, cfg: &Config) -> ExitCode {
    let path = root.join("UNSAFETY.md");
    let text = unsafety::render(root, cfg);
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("icg-lint: write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("icg-lint: wrote {}", path.display());
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Args, String> {
    let mut mode = None;
    let mut root = None;
    let mut config = None;
    let mut baseline = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = Some(path_arg(&mut it, "--root")?),
            "--config" => config = Some(path_arg(&mut it, "--config")?),
            "--baseline" => baseline = Some(path_arg(&mut it, "--baseline")?),
            m if !m.starts_with('-') && mode.is_none() => mode = Some(m.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Args {
        mode: mode.ok_or("missing mode")?,
        root,
        config,
        baseline,
    })
}

fn path_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Walks up from the current directory to the first `lint.toml`, so the
/// binary works from any workspace subdirectory.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("no lint.toml found walking up from the current directory \
                        (pass --root or --config)"
                .into());
        }
    }
}
