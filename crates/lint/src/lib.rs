//! icg-lint — project-specific static analysis for the ICG workspace.
//!
//! Six passes enforce invariants the compiler cannot see but the
//! paper's guarantees depend on (DESIGN.md §11):
//!
//! | pass | invariant |
//! |---|---|
//! | `determinism` | sim-reachable crates take time/randomness only from the engine; no unordered-map iteration |
//! | `panic_path` | net event-loop and transport files never panic — fail soft instead |
//! | `lock_discipline` | no lock-order inversions; no guard held across a blocking call |
//! | `unsafe_audit` | every `unsafe` carries an adjacent `// SAFETY:` argument |
//! | `wire` | every wire-enum variant is encoded, decoded, and property-tested |
//! | `level_lattice` | no `match` over consistency levels enumerates only the builtins — the lattice is open |
//!
//! The engine is a hand-rolled lexer + item scanner ([`lexer`],
//! [`scan`]) — no `syn`, no `rustc` internals — because the workspace
//! builds fully offline. Passes read [`config::Config`] (`lint.toml`),
//! emit [`diag::Finding`]s, and the CI gate compares them against
//! [`baseline::Baseline`] (`lint.baseline`): merging requires zero *new*
//! findings, and `// lint: allow(<pass>) — reason` comments waive
//! individual sites at the source.

pub mod baseline;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod scan;
pub mod unsafety;

use std::path::Path;

use config::Config;
use diag::Finding;

/// The pass names, in run order — also the names `lint: allow(…)`
/// waivers and baseline fingerprints use.
pub const PASSES: &[&str] = &[
    "determinism",
    "panic_path",
    "lock_discipline",
    "unsafe_audit",
    "wire",
    "level_lattice",
];

/// Runs every pass over the workspace at `root`, returning all findings
/// sorted by file and line.
pub fn run_all(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(passes::determinism::run(root, cfg));
    out.extend(passes::panic_path::run(root, cfg));
    out.extend(passes::lock_discipline::run(root, cfg));
    out.extend(passes::unsafe_audit::run(root, cfg));
    out.extend(passes::wire::run(root, cfg));
    out.extend(passes::level_lattice::run(root, cfg));
    out.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    out
}
