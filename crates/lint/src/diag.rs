//! Findings and their stable fingerprints.

use std::fmt;

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The pass that produced it (`determinism`, `panic_path`, …).
    pub pass: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the offending site.
    pub line: u32,
    /// Short machine-ish kind within the pass (`unwrap`, `wall-clock`,
    /// `lock-cycle`, …).
    pub kind: &'static str,
    /// Line-independent detail that, with pass/file/kind, identifies the
    /// finding across unrelated edits (usually the enclosing function or
    /// the symbol involved).
    pub detail: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The baseline key: everything except the line number and prose, so
    /// a finding keeps matching its baseline entry when code above it
    /// moves. Multiple identical keys are compared by *count* — adding a
    /// second `unwrap` to a function that already had one is a new
    /// violation even though the key already exists.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.pass, self.file, self.kind, self.detail
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file, self.line, self.pass, self.kind, self.message
        )
    }
}
