//! Item-level structure on top of the token stream: functions with
//! brace-matched bodies, enum definitions with their variants, enclosing
//! `impl` blocks for qualified names, `#[cfg(test)]` module spans, and
//! the comment-adjacency queries (waivers, `// SAFETY:`).
//!
//! This is a *scanner*, not a parser: it recovers exactly the structure
//! the passes need and nothing more, by brace matching and short token
//! lookahead. Macro-generated items are invisible to it — acceptable for
//! a workspace that is hand-written by policy (no derives on the wire,
//! no proc macros anywhere).

use std::ops::Range;
use std::path::PathBuf;

use crate::lexer::{lex, Comment, TokKind, Token};

/// One function item: its (possibly impl-qualified) name and body span.
pub struct FnItem {
    /// `Type::name` inside an `impl Type`, plain `name` at module level.
    pub qual_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, *excluding* the outer braces.
    pub body: Range<usize>,
}

/// One enum definition with its variants.
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with the line each is declared on.
    pub variants: Vec<(String, u32)>,
}

/// A lexed and scanned source file.
pub struct SourceFile {
    /// Path, workspace-root-relative, `/`-separated.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// All comments, in order.
    pub comments: Vec<Comment>,
    /// Every function item found (test modules excluded).
    pub fns: Vec<FnItem>,
    /// Every enum definition found (test modules excluded).
    pub enums: Vec<EnumDef>,
    /// Token-index ranges covered by `#[cfg(test)] mod … { }` bodies.
    test_spans: Vec<Range<usize>>,
}

impl SourceFile {
    /// Lexes and scans one file. `rel_path` is stored verbatim on the
    /// result and in every diagnostic.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let tokens = lexed.tokens;
        let test_spans = find_test_spans(&tokens);
        let in_test = |idx: usize| test_spans.iter().any(|r| r.contains(&idx));

        let mut fns = Vec::new();
        let mut enums = Vec::new();

        // Enclosing-impl stack: (type name, brace depth the impl body
        // opened at). Popped when depth drops back below.
        let mut impl_stack: Vec<(String, i32)> = Vec::new();
        let mut depth: i32 = 0;

        let mut i = 0usize;
        while i < tokens.len() {
            let t = &tokens[i];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => {
                    depth -= 1;
                    while impl_stack.last().is_some_and(|(_, d)| *d > depth) {
                        impl_stack.pop();
                    }
                }
                (TokKind::Ident, "impl") if !in_test(i) => {
                    if let Some((name, open)) = scan_impl_header(&tokens, i) {
                        impl_stack.push((name, depth + 1));
                        depth += 1;
                        i = open + 1;
                        continue;
                    }
                }
                (TokKind::Ident, "fn") if !in_test(i) => {
                    if let Some((item, body_open, body_close)) =
                        scan_fn(&tokens, i, impl_stack.last().map(|(n, _)| n.as_str()))
                    {
                        fns.push(item);
                        // Keep walking *inside* the body (nested fns and
                        // braces still update `depth` / `impl_stack`).
                        let _ = (body_open, body_close);
                    }
                }
                (TokKind::Ident, "enum") if !in_test(i) => {
                    if let Some((def, close)) = scan_enum(&tokens, i) {
                        enums.push(def);
                        i = close; // the `}` closes nothing else
                    }
                }
                _ => {}
            }
            i += 1;
        }

        SourceFile {
            path: rel_path.to_string(),
            tokens,
            comments: lexed.comments,
            fns,
            enums,
            test_spans,
        }
    }

    /// Whether token index `idx` is inside a `#[cfg(test)]` module body.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&idx))
    }

    /// The qualified name of the innermost function whose body contains
    /// token index `idx`, if any.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.len())
    }

    /// Whether a comment containing `needle` ends on line `line` or the
    /// line above — the adjacency rule for `// SAFETY:` comments and
    /// waivers.
    pub fn comment_adjacent(&self, line: u32, needle: &str) -> bool {
        self.comments.iter().any(|c| {
            (c.end_line == line || c.end_line + 1 == line || c.line == line)
                && c.text.contains(needle)
        })
    }

    /// The text of the comment satisfying [`SourceFile::comment_adjacent`]
    /// (for the UNSAFETY.md inventory).
    pub fn adjacent_comment(&self, line: u32, needle: &str) -> Option<&str> {
        self.comments
            .iter()
            .find(|c| {
                (c.end_line == line || c.end_line + 1 == line || c.line == line)
                    && c.text.contains(needle)
            })
            .map(|c| c.text.as_str())
    }

    /// Whether line `line` carries a `lint: allow(<pass>)` waiver — on
    /// the same line or the line(s) directly above (a waiver comment
    /// covers the statement it annotates).
    pub fn waived(&self, line: u32, pass: &str) -> bool {
        let long = format!("lint: allow({pass})");
        let short = format!("lint:allow({pass})");
        self.comment_adjacent(line, &long) || self.comment_adjacent(line, &short)
    }
}

/// Loads and parses every `.rs` file under `dir`, recursively, sorted by
/// path for deterministic output. `root` is the workspace root the
/// stored relative paths are computed against.
pub fn parse_tree(root: &std::path::Path, dir: &std::path::Path) -> Vec<SourceFile> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(dir, &mut paths);
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let src = std::fs::read_to_string(p).ok()?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            Some(SourceFile::parse(&rel, &src))
        })
        .collect()
}

fn collect_rs(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Matches forward from an opening brace to its mate. Returns the index
/// of the closing `}` (or the last token on unbalanced input).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// `#[cfg(test)]` followed by `mod name {` — returns the body spans.
fn find_test_spans(tokens: &[Token]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if is_cfg_test {
            // Allow `pub`/`pub(crate)` etc. between the attribute and
            // `mod` by scanning a short window for the `mod` keyword.
            let mut j = i + 7;
            let window_end = (j + 6).min(tokens.len());
            while j < window_end && tokens[j].text != "mod" {
                j += 1;
            }
            if j < window_end {
                // Find the module's opening brace.
                let mut k = j + 1;
                while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
                    k += 1;
                }
                if k < tokens.len() && tokens[k].text == "{" {
                    let close = match_brace(tokens, k);
                    spans.push(k..close + 1);
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// From an `impl` token, extracts the implemented type's name and the
/// index of the body's opening brace. `impl Trait for Type` yields
/// `Type`; `impl Type` yields `Type`; generic parameters are skipped.
fn scan_impl_header(tokens: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut j = impl_idx + 1;
    let mut angle = 0i32;
    let mut names: Vec<&str> = Vec::new();
    let mut after_for: Option<usize> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Punct, "{") if angle <= 0 => {
                // Type name: first ident after `for` if present, else the
                // first ident at angle depth 0.
                let pick = after_for.unwrap_or(0);
                let name = names.get(pick).copied()?;
                return Some((name.to_string(), j));
            }
            (TokKind::Punct, ";") if angle <= 0 => return None,
            (TokKind::Ident, "for") if angle <= 0 => after_for = Some(names.len()),
            (TokKind::Ident, "where") if angle <= 0 => {}
            (TokKind::Ident, _) if angle == 0 => names.push(&t.text),
            _ => {}
        }
        j += 1;
    }
    None
}

/// From a `fn` token, extracts the item and its body token span.
/// Returns `None` for bodyless declarations (trait methods, externs).
fn scan_fn(
    tokens: &[Token],
    fn_idx: usize,
    impl_name: Option<&str>,
) -> Option<(FnItem, usize, usize)> {
    let name_tok = tokens.get(fn_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Walk to the body `{`: skip the generic list and the parameter
    // list by depth counting; a `;` at depth 0 means no body. `->` of
    // the return type contains `>` — only track `<`/`>` inside the
    // generic list (i.e. before the parameter list opens).
    let mut j = fn_idx + 2;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut seen_params = false;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") if !seen_params => angle += 1,
            (TokKind::Punct, ">") if !seen_params && angle > 0 => angle -= 1,
            (TokKind::Punct, "(") => {
                paren += 1;
            }
            (TokKind::Punct, ")") => {
                paren -= 1;
                if paren == 0 {
                    seen_params = true;
                }
            }
            (TokKind::Punct, "{") if paren == 0 && angle == 0 && seen_params => {
                let close = match_brace(tokens, j);
                let qual_name = match impl_name {
                    Some(t) => format!("{t}::{}", name_tok.text),
                    None => name_tok.text.clone(),
                };
                return Some((
                    FnItem {
                        qual_name,
                        line: tokens[fn_idx].line,
                        body: j + 1..close,
                    },
                    j,
                    close,
                ));
            }
            (TokKind::Punct, ";") if paren == 0 && angle == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// From an `enum` token, extracts the definition. Returns the def and
/// the index of the closing brace.
fn scan_enum(tokens: &[Token], enum_idx: usize) -> Option<(EnumDef, usize)> {
    let name_tok = tokens.get(enum_idx + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = enum_idx + 2;
    while j < tokens.len() && tokens[j].text != "{" {
        if tokens[j].text == ";" {
            return None;
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    let close = match_brace(tokens, j);
    // Variants: idents at brace depth 1 that start a variant clause —
    // i.e. directly after `{` or after a depth-1 `,` (skipping attrs).
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    let mut k = j;
    while k <= close {
        let t = &tokens[k];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if depth == 1 {
                    expect_variant = true;
                }
            }
            (TokKind::Punct, "}") => depth -= 1,
            (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
            (TokKind::Punct, ",") if depth == 1 => expect_variant = true,
            // Attributes on a variant: `#` `[` … `]` — the bracket pair
            // bumps depth, and `expect_variant` survives it.
            (TokKind::Punct, "#") => {}
            (TokKind::Ident, _) if depth == 1 && expect_variant => {
                variants.push((t.text.clone(), t.line));
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    Some((
        EnumDef {
            name: name_tok.text.clone(),
            line: tokens[enum_idx].line,
            variants,
        },
        close,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_get_impl_qualified_names() {
        let src = "
            impl<T: Clone> Widget<T> {
                fn poke(&self) -> bool { true }
            }
            fn free() {}
            impl Iterator for Widget<u8> {
                fn next(&mut self) -> Option<u8> { None }
            }
        ";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(names, vec!["Widget::poke", "free", "Widget::next"]);
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let src = "
            pub enum Msg {
                Ping,
                #[allow(dead_code)]
                Data { seq: u64, body: Vec<u8> },
                Pair(u32, u32),
            }
        ";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.enums.len(), 1);
        let vars: Vec<&str> = f.enums[0]
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        assert_eq!(vars, vec!["Ping", "Data", "Pair"]);
    }

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src = "
            fn real() {}
            #[cfg(test)]
            mod tests {
                fn helper() {}
                #[test]
                fn case() {}
            }
        ";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
        let helper_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "helper")
            .expect("token present");
        assert!(f.in_test_code(helper_idx));
    }

    #[test]
    fn waiver_adjacency() {
        let src = "
            // lint: allow(panic_path) — startup only, nothing is serving yet
            fn boot() { opt.unwrap(); }
        ";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.waived(3, "panic_path"));
        assert!(!f.waived(3, "determinism"));
        assert!(!f.waived(5, "panic_path"));
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() { fn inner() { deep(); } }";
        let f = SourceFile::parse("x.rs", src);
        let deep = f.tokens.iter().position(|t| t.text == "deep").unwrap();
        assert_eq!(f.enclosing_fn(deep).unwrap().qual_name, "inner");
    }
}
