//! `lint.toml` — the checked-in pass configuration, parsed by a
//! deliberately tiny TOML-subset reader.
//!
//! The workspace builds fully offline with no registry dependencies, so
//! the linter cannot pull in a TOML crate; it reads exactly the subset
//! the config uses — `[section]` headers, `key = "string"`,
//! `key = ["a", "b"]` (single- or multi-line), and comments — and
//! rejects anything else loudly rather than misreading it.

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed `lint.toml`.
#[derive(Debug, Default)]
pub struct Config {
    /// Crates (directory names under `crates/`) whose `src/` trees the
    /// determinism pass scans.
    pub determinism_crates: Vec<String>,
    /// Individual workspace-relative files the determinism pass scans,
    /// for determinism islands inside otherwise wall-clock-bound crates
    /// (e.g. the reactor's seeded-jitter backoff inside `net`).
    pub determinism_files: Vec<String>,
    /// Workspace-relative files the panic-path pass scans.
    pub panic_path_files: Vec<String>,
    /// Crates whose `src/` trees the lock-discipline pass scans.
    pub lock_discipline_crates: Vec<String>,
    /// Crates whose `src/` trees the unsafe-audit pass scans.
    pub unsafe_audit_crates: Vec<String>,
    /// Crates whose `src/` trees the level-lattice pass scans for
    /// closed matches over consistency levels.
    pub level_lattice_crates: Vec<String>,
    /// Enum names the wire pass cross-checks.
    pub wire_enums: Vec<String>,
    /// Files the wire enums are defined in.
    pub wire_enum_files: Vec<String>,
    /// The codec file holding the `impl Wire for …` blocks.
    pub wire_codec: String,
    /// The proptest file every variant must appear in.
    pub wire_proptests: String,
}

/// A config-file syntax or schema error.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Reads and parses the config file.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("{}: {e}", path.display())))?;
        Config::parse(&src)
    }

    /// Parses config text (see the module docs for the accepted subset).
    pub fn parse(src: &str) -> Result<Config, ConfigError> {
        let raw = parse_sections(src)?;
        let mut cfg = Config::default();
        for (section, keys) in &raw {
            for (key, value) in keys {
                let slot = (section.as_str(), key.as_str());
                match slot {
                    ("determinism", "crates") => cfg.determinism_crates = value.as_list()?,
                    ("determinism", "files") => cfg.determinism_files = value.as_list()?,
                    ("panic_path", "files") => cfg.panic_path_files = value.as_list()?,
                    ("lock_discipline", "crates") => {
                        cfg.lock_discipline_crates = value.as_list()?
                    }
                    ("unsafe_audit", "crates") => cfg.unsafe_audit_crates = value.as_list()?,
                    ("level_lattice", "crates") => cfg.level_lattice_crates = value.as_list()?,
                    ("wire", "enums") => cfg.wire_enums = value.as_list()?,
                    ("wire", "enum_files") => cfg.wire_enum_files = value.as_list()?,
                    ("wire", "codec") => cfg.wire_codec = value.as_string()?,
                    ("wire", "proptests") => cfg.wire_proptests = value.as_string()?,
                    _ => {
                        return Err(ConfigError(format!(
                            "unknown key `{key}` in section [{section}]"
                        )))
                    }
                }
            }
        }
        Ok(cfg)
    }
}

/// A parsed value: string or list of strings.
enum Value {
    Str(String),
    List(Vec<String>),
}

impl Value {
    fn as_list(&self) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::List(v) => Ok(v.clone()),
            Value::Str(_) => Err(ConfigError("expected a list, found a string".into())),
        }
    }

    fn as_string(&self) -> Result<String, ConfigError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::List(_) => Err(ConfigError("expected a string, found a list".into())),
        }
    }
}

fn parse_sections(src: &str) -> Result<BTreeMap<String, Vec<(String, Value)>>, ConfigError> {
    let mut out: BTreeMap<String, Vec<(String, Value)>> = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, rest)) = line.split_once('=') else {
            return Err(ConfigError(format!("line {}: expected `key = …`", n + 1)));
        };
        let key = key.trim().to_string();
        let mut rest = rest.trim().to_string();
        // A list may span lines until the closing `]`.
        if rest.starts_with('[') && !rest.ends_with(']') {
            for (_, cont) in lines.by_ref() {
                let cont = strip_comment(cont).trim().to_string();
                rest.push(' ');
                rest.push_str(&cont);
                if cont.ends_with(']') {
                    break;
                }
            }
        }
        let value = parse_value(&rest)
            .map_err(|e| ConfigError(format!("line {}: {} (value: {rest})", n + 1, e.0)))?;
        if section.is_empty() {
            return Err(ConfigError(format!(
                "line {}: key `{key}` outside any [section]",
                n + 1
            )));
        }
        out.get_mut(&section)
            .expect("section entry exists")
            .push((key, value));
    }
    Ok(out)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Result<Value, ConfigError> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[').and_then(|x| x.strip_suffix(']')) {
        let mut items = Vec::new();
        for piece in body.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // trailing comma
            }
            items.push(unquote(piece)?);
        }
        return Ok(Value::List(items));
    }
    Ok(Value::Str(unquote(s)?))
}

fn unquote(s: &str) -> Result<String, ConfigError> {
    s.strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .map(|x| x.to_string())
        .ok_or_else(|| ConfigError(format!("expected a quoted string, found `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shipped_schema() {
        let cfg = Config::parse(
            r#"
# comment
[determinism]
crates = ["simnet", "oracle"] # trailing comment
files = ["crates/net/src/reactor/backoff.rs"]

[panic_path]
files = [
    "crates/net/src/server.rs",
    "crates/net/src/pump.rs",
]

[wire]
codec = "crates/net/src/wire.rs"
enums = ["Msg"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.determinism_crates, vec!["simnet", "oracle"]);
        assert_eq!(
            cfg.determinism_files,
            vec!["crates/net/src/reactor/backoff.rs"]
        );
        assert_eq!(cfg.panic_path_files.len(), 2);
        assert_eq!(cfg.wire_codec, "crates/net/src/wire.rs");
        assert_eq!(cfg.wire_enums, vec!["Msg"]);
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(Config::parse("[determinism]\ntypo = [\"x\"]\n").is_err());
    }

    #[test]
    fn unquoted_values_are_errors() {
        assert!(Config::parse("[wire]\ncodec = nope\n").is_err());
    }
}
