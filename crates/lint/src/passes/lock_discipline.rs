//! Lock-discipline pass: lock-order inversions and guards held across
//! blocking calls.
//!
//! For every function in the configured crates the pass extracts its
//! lock-acquisition sequence — `.lock()`, and the zero-argument
//! `.read()`/`.write()` of `RwLock` — with a small scope model:
//!
//! - a `let guard = x.lock()` binding holds the lock until its block
//!   closes or an explicit `drop(guard)`;
//! - an un-bound `x.lock().y` temporary holds it to the end of the
//!   statement.
//!
//! Lock identity is the receiver chain with `self.` stripped (e.g.
//! `inner.shared`), scoped per crate. Acquiring `B` while `A` is held
//! adds the edge `A → B` to the crate's lock-order graph; a cycle in
//! that graph means two code paths can acquire the same pair of locks
//! in opposite orders — the classic ABBA deadlock, reported with one
//! witness site per edge.
//!
//! Separately, any blocking call — channel `send`/`recv`, socket
//! I/O, `thread::sleep` — made while a guard is held is reported:
//! holding a lock across a blocking call turns one slow peer into a
//! stalled lock for every thread behind it. (`Condvar::wait` is *not*
//! in the blocking set: handing a guard to a condvar is the one
//! legitimate hold-and-block.)

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use super::{crate_sources, push_unless_waived, receiver_chain};
use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

const PASS: &str = "lock_discipline";

/// Calls that can block the calling thread indefinitely (or for a
/// scheduling quantum) while a guard is held.
const BLOCKING: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "flush",
    "accept",
    "connect",
    "connect_timeout",
    "sleep",
];

/// One `A → B` edge with its witness site.
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    func: String,
}

/// Runs the pass over every configured crate.
pub fn run(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for krate in &cfg.lock_discipline_crates {
        let files = crate_sources(root, krate);
        let mut edges: Vec<Edge> = Vec::new();
        for sf in &files {
            scan_file(sf, &mut edges, &mut out);
        }
        report_cycles(krate, &edges, &mut out);
    }
    out
}

/// A held guard.
struct Guard {
    lock: String,
    /// Variable name for `let`-bound guards (released by `drop(var)`).
    var: Option<String>,
    /// Brace depth (relative to the function body) it was acquired at;
    /// released when the block at this depth closes.
    depth: i32,
    /// Un-bound temporaries die at the next `;` at their depth.
    temporary: bool,
    line: u32,
}

fn scan_file(sf: &SourceFile, edges: &mut Vec<Edge>, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for func in &sf.fns {
        if sf.in_test_code(func.body.start) {
            continue;
        }
        let mut guards: Vec<Guard> = Vec::new();
        let mut depth = 0i32;
        let mut i = func.body.start;
        while i < func.body.end {
            let t = &toks[i];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, "}") => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                (TokKind::Punct, ";") => {
                    guards.retain(|g| !(g.temporary && g.depth == depth));
                }
                // `drop ( var )` releases a named guard early.
                (TokKind::Ident, "drop") if toks.get(i + 1).is_some_and(|t| t.text == "(") => {
                    if let Some(v) = toks.get(i + 2) {
                        if v.kind == TokKind::Ident
                            && toks.get(i + 3).is_some_and(|t| t.text == ")")
                        {
                            guards.retain(|g| g.var.as_deref() != Some(v.text.as_str()));
                        }
                    }
                }
                // `. lock ( )` / `. read ( )` / `. write ( )` — the
                // zero-argument forms only, so `stream.read(&mut buf)`
                // (io::Read) never matches.
                (TokKind::Punct, ".") => {
                    let is_acquire = toks.get(i + 1).is_some_and(|m| {
                        m.kind == TokKind::Ident
                            && matches!(m.text.as_str(), "lock" | "read" | "write")
                    }) && toks.get(i + 2).is_some_and(|t| t.text == "(")
                        && toks.get(i + 3).is_some_and(|t| t.text == ")");
                    if is_acquire {
                        if let Some(lock) = receiver_chain(toks, i) {
                            let line = toks[i + 1].line;
                            for held in &guards {
                                if held.lock != lock {
                                    edges.push(Edge {
                                        from: held.lock.clone(),
                                        to: lock.clone(),
                                        file: sf.path.clone(),
                                        line,
                                        func: func.qual_name.clone(),
                                    });
                                }
                            }
                            let (var, temporary) = binding_of(sf, i);
                            guards.push(Guard {
                                lock,
                                var,
                                depth,
                                temporary,
                                line,
                            });
                            i += 4;
                            continue;
                        }
                    }
                    // Blocking method call while any guard is held.
                    if let Some(m) = toks.get(i + 1) {
                        if m.kind == TokKind::Ident
                            && BLOCKING.contains(&m.text.as_str())
                            && toks.get(i + 2).is_some_and(|t| t.text == "(")
                        {
                            for g in &guards {
                                push_unless_waived(
                                    out,
                                    sf,
                                    Finding {
                                        pass: PASS,
                                        file: sf.path.clone(),
                                        line: m.line,
                                        kind: "blocking-under-lock",
                                        detail: format!(
                                            "{} holds `{}` across .{}()",
                                            func.qual_name, g.lock, m.text
                                        ),
                                        message: format!(
                                            "`{}` holds lock `{}` (acquired line {}) across \
                                             blocking call `.{}()`; release the guard first",
                                            func.qual_name, g.lock, g.line, m.text
                                        ),
                                    },
                                );
                            }
                        }
                    }
                }
                // Path-call blocking: `thread :: sleep (`.
                (TokKind::Ident, "sleep") => {
                    let is_path = i
                        .checked_sub(1)
                        .and_then(|k| toks.get(k))
                        .is_some_and(|t| t.text == ":");
                    if is_path && toks.get(i + 1).is_some_and(|t| t.text == "(") {
                        for g in &guards {
                            push_unless_waived(
                                out,
                                sf,
                                Finding {
                                    pass: PASS,
                                    file: sf.path.clone(),
                                    line: t.line,
                                    kind: "blocking-under-lock",
                                    detail: format!(
                                        "{} holds `{}` across thread::sleep",
                                        func.qual_name, g.lock
                                    ),
                                    message: format!(
                                        "`{}` holds lock `{}` (acquired line {}) across \
                                         `thread::sleep`; release the guard first",
                                        func.qual_name, g.lock, g.line
                                    ),
                                },
                            );
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Whether the acquisition whose `.` is at `dot` is `let`-bound, and to
/// which variable: scans back across the receiver chain for
/// `let [mut] var =`.
fn binding_of(sf: &SourceFile, dot: usize) -> (Option<String>, bool) {
    let toks = &sf.tokens;
    // Walk back over the receiver chain (idents and dots).
    let mut j = dot;
    while j > 0 {
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident || prev.text == "." {
            j -= 1;
        } else {
            break;
        }
    }
    // Expect `var = receiver…`. Both `let g = …` and re-assignment
    // `g = …` hold for the enclosing block; the variable name is what
    // `drop(g)` releases.
    if j == 0 || toks[j - 1].text != "=" {
        return (None, true);
    }
    match (j - 1).checked_sub(1).map(|x| &toks[x]) {
        Some(v) if v.kind == TokKind::Ident => (Some(v.text.clone()), false),
        _ => (None, true),
    }
}

/// Strongly-connected components of the lock-order graph; any SCC with
/// more than one lock (or a self-edge) is an inversion cycle.
fn report_cycles(krate: &str, edges: &[Edge], out: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
        adj.entry(e.to.as_str()).or_default();
    }
    // Reachability by DFS from every node (graphs here are tiny).
    let reach = |start: &str| -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if let Some(next) = adj.get(n) {
                for m in next {
                    if seen.insert(m) {
                        stack.push(m);
                    }
                }
            }
        }
        seen
    };
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let reachable: BTreeMap<&str, BTreeSet<&str>> = nodes.iter().map(|n| (*n, reach(n))).collect();

    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    for n in &nodes {
        // `n` is on a cycle iff it reaches itself.
        if !reachable[n].contains(n) {
            continue;
        }
        let mut scc: Vec<&str> = nodes
            .iter()
            .copied()
            .filter(|m| reachable[n].contains(m) && reachable[m].contains(n))
            .collect();
        scc.sort_unstable();
        if !reported.insert(scc.clone()) {
            continue;
        }
        // Witness: the first edge inside the SCC, by file/line.
        let mut witnesses: Vec<&Edge> = edges
            .iter()
            .filter(|e| scc.contains(&e.from.as_str()) && scc.contains(&e.to.as_str()))
            .collect();
        witnesses.sort_by_key(|e| (&e.file, e.line));
        let sites: Vec<String> = witnesses
            .iter()
            .map(|e| {
                format!(
                    "{} → {} in `{}` ({}:{})",
                    e.from, e.to, e.func, e.file, e.line
                )
            })
            .collect();
        let first = witnesses.first().expect("cycle has at least one edge");
        out.push(Finding {
            pass: PASS,
            file: first.file.clone(),
            line: first.line,
            kind: "lock-cycle",
            detail: format!("{krate}: {}", scc.join(" ⇄ ")),
            message: format!(
                "lock-order inversion cycle across functions in crate `{krate}`: {}",
                sites.join("; ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_src(src: &str) -> (Vec<Edge>, Vec<Finding>) {
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut edges = Vec::new();
        let mut out = Vec::new();
        scan_file(&sf, &mut edges, &mut out);
        (edges, out)
    }

    #[test]
    fn abba_cycle_is_reported() {
        let src = "
            fn ab(&self) { let a = self.m1.lock(); let b = self.m2.lock(); }
            fn ba(&self) { let b = self.m2.lock(); let a = self.m1.lock(); }
        ";
        let (edges, mut out) = run_src(src);
        assert_eq!(edges.len(), 2);
        report_cycles("x", &edges, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, "lock-cycle");
        assert!(out[0].detail.contains("m1"));
        assert!(out[0].detail.contains("m2"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn ab(&self) { let a = self.m1.lock(); let b = self.m2.lock(); }
            fn also_ab(&self) { let a = self.m1.lock(); let b = self.m2.lock(); }
        ";
        let (edges, mut out) = run_src(src);
        report_cycles("x", &edges, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn guard_across_send_is_reported_and_drop_releases() {
        let src = "
            fn bad(&self) { let g = self.state.lock(); self.tx.send(1); }
            fn good(&self) { let g = self.state.lock(); drop(g); self.tx.send(1); }
        ";
        let (_, out) = run_src(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, "blocking-under-lock");
        assert!(out[0].detail.contains("bad"));
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "fn ok(&self) { self.state.lock().push(1); self.tx.send(1); }";
        let (_, out) = run_src(src);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn block_scope_releases_let_guards() {
        let src = "fn ok(&self) { { let g = self.state.lock(); g.bump(); } self.tx.send(1); }";
        let (_, out) = run_src(src);
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let src = "fn pump(&self) { self.stream.read(&mut self.buf); }";
        let (edges, out) = run_src(src);
        assert!(edges.is_empty());
        assert!(out.is_empty());
    }
}
