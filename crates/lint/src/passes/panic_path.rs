//! Panic-path pass: no `unwrap`/`expect`, panicking macros, or `[...]`
//! indexing in the files that run the net event loops and transport
//! threads.
//!
//! `ReplicaServer`'s loop thread owns all protocol state; a panic there
//! silently kills the replica while its listener keeps accepting — the
//! worst failure mode, because clients see timeouts instead of
//! connection refusals and failover never triggers. The same goes for
//! the client loop and the per-connection reader/writer threads. These
//! files must fail soft: `Option`/`Result` plumbing, `get()` instead of
//! indexing, messages dropped instead of asserted.
//!
//! Deliberate construction-time panics (spawning threads at startup,
//! API-misuse asserts in constructors) carry `lint: allow(panic_path)`
//! waivers with a justification — the point is that every panic site in
//! these files is either impossible on the serving path or explicitly
//! argued for, never incidental.

use std::path::Path;

use super::{parse_one, push_unless_waived};
use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

const PASS: &str = "panic_path";

/// Macros that unconditionally (or on a failed condition) panic.
/// `debug_assert*` is excluded: it compiles out of release servers.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that can directly precede `[` without it being an index
/// expression (slice patterns, array literals in statements).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "in", "if", "while", "match", "return", "else", "mut", "ref", "move", "as", "box",
];

/// Runs the pass over every configured file.
pub fn run(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for rel in &cfg.panic_path_files {
        let Some(sf) = parse_one(root, rel) else {
            out.push(Finding {
                pass: PASS,
                file: rel.clone(),
                line: 0,
                kind: "missing-file",
                detail: rel.clone(),
                message: "file listed in [panic_path].files does not exist".into(),
            });
            continue;
        };
        check_file(&sf, &mut out);
    }
    out
}

fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.in_test_code(i) {
            continue;
        }
        // Only sites inside function bodies are panic *paths*.
        let Some(func) = sf.enclosing_fn(i) else {
            continue;
        };
        let fn_name = func.qual_name.clone();
        let t = &toks[i];

        // `.unwrap()` / `.expect(…)`.
        if t.text == "." {
            if let Some(m) = toks.get(i + 1) {
                if (m.text == "unwrap" || m.text == "expect")
                    && toks.get(i + 2).is_some_and(|t| t.text == "(")
                {
                    let kind = if m.text == "unwrap" {
                        "unwrap"
                    } else {
                        "expect"
                    };
                    push_unless_waived(
                        out,
                        sf,
                        Finding {
                            pass: PASS,
                            file: sf.path.clone(),
                            line: m.line,
                            kind,
                            detail: fn_name.clone(),
                            message: format!(
                                "`.{}()` in `{}`: a panic here kills an event-loop or \
                                 transport thread; plumb the error instead",
                                m.text, fn_name
                            ),
                        },
                    );
                }
            }
        }

        // Panicking macros: `name!(…)`.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            push_unless_waived(
                out,
                sf,
                Finding {
                    pass: PASS,
                    file: sf.path.clone(),
                    line: t.line,
                    kind: "panic-macro",
                    detail: format!("{}! in {}", t.text, fn_name),
                    message: format!(
                        "`{}!` in `{}`: event-loop and transport threads must fail soft, \
                         not panic",
                        t.text, fn_name
                    ),
                },
            );
        }

        // Indexing: `[` in postfix position (after an ident, `]`, or `)`).
        if t.text == "[" {
            let Some(prev) = i.checked_sub(1).and_then(|k| toks.get(k)) else {
                continue;
            };
            let postfix = match prev.kind {
                TokKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev.text.as_str()),
                TokKind::Punct => prev.text == "]" || prev.text == ")",
                _ => false,
            };
            if postfix {
                push_unless_waived(
                    out,
                    sf,
                    Finding {
                        pass: PASS,
                        file: sf.path.clone(),
                        line: t.line,
                        kind: "index",
                        detail: fn_name.clone(),
                        message: format!(
                            "`[…]` indexing in `{fn_name}`: out-of-bounds panics the \
                             thread; use `.get()` and handle the miss"
                        ),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/net/src/x.rs", src);
        let mut out = Vec::new();
        check_file(&sf, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_macros_and_indexing() {
        let f = findings(
            "fn pump(v: Vec<u32>, o: Option<u32>) -> u32 {\n\
                 let a = o.unwrap();\n\
                 let b = o.expect(\"present\");\n\
                 if a > b { panic!(\"no\"); }\n\
                 v[0]\n\
             }",
        );
        let kinds: Vec<&str> = f.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec!["unwrap", "expect", "panic-macro", "index"]);
    }

    #[test]
    fn ignores_literals_attrs_and_test_modules() {
        let f = findings(
            "#[derive(Debug)]\n\
             struct S { x: [u8; 4] }\n\
             fn ok(s: &S) -> &[u8] { let all = &s.x; all }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t(v: Vec<u8>) -> u8 { v[0] }\n\
             }",
        );
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn waiver_suppresses_with_justification() {
        let f = findings(
            "fn boot() {\n\
                 // lint: allow(panic_path) — startup, nothing serving yet\n\
                 std::thread::Builder::new().spawn(|| {}).expect(\"spawn\");\n\
             }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn debug_assert_is_allowed() {
        let f = findings("fn inv(a: u32) { debug_assert!(a > 0); }");
        assert!(f.is_empty());
    }
}
