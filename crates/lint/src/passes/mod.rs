//! The six project-specific passes.
//!
//! Each pass loads the files its `lint.toml` section names, walks their
//! token streams, and emits [`Finding`]s. Findings on a line carrying a
//! `// lint: allow(<pass>)` waiver comment (same line or directly
//! above) are suppressed at emission; everything else is subject to the
//! baseline when the caller gates.

pub mod determinism;
pub mod level_lattice;
pub mod lock_discipline;
pub mod panic_path;
pub mod unsafe_audit;
pub mod wire;

use std::path::Path;

use crate::diag::Finding;
use crate::lexer::{TokKind, Token};
use crate::scan::SourceFile;

/// Emits `f` unless the site carries a waiver comment for its pass.
pub(crate) fn push_unless_waived(out: &mut Vec<Finding>, sf: &SourceFile, f: Finding) {
    if !sf.waived(f.line, f.pass) {
        out.push(f);
    }
}

/// Whether tokens at `i` spell the path `head::tail` (`::` lexes as two
/// `:` puncts).
pub(crate) fn is_path2(tokens: &[Token], i: usize, head: &str, tail: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == head)
        && tokens.get(i + 1).is_some_and(|t| t.text == ":")
        && tokens.get(i + 2).is_some_and(|t| t.text == ":")
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == tail)
}

/// The source files of one crate's `src/` tree.
pub(crate) fn crate_sources(root: &Path, krate: &str) -> Vec<SourceFile> {
    crate::scan::parse_tree(root, &root.join("crates").join(krate).join("src"))
}

/// Parses one workspace-relative file, if it exists.
pub(crate) fn parse_one(root: &Path, rel: &str) -> Option<SourceFile> {
    let src = std::fs::read_to_string(root.join(rel)).ok()?;
    Some(SourceFile::parse(rel, &src))
}

/// The receiver chain ending at the `.` token at `dot` — e.g. for
/// `self.inner.shared.lock()` with `dot` at the last `.`, returns
/// `inner.shared` (leading `self` stripped). `None` when the receiver
/// is not a plain ident chain (a call or index result).
pub(crate) fn receiver_chain(tokens: &[Token], dot: usize) -> Option<String> {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot;
    loop {
        // Expect an ident directly before the current `.`.
        let prev = j.checked_sub(1)?;
        let t = tokens.get(prev)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        parts.push(&t.text);
        // Another link (`ident .`) before it?
        match prev.checked_sub(1).and_then(|k| tokens.get(k)) {
            Some(d) if d.text == "." => j = prev - 1,
            _ => break,
        }
    }
    parts.reverse();
    if parts.first() == Some(&"self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("."))
    }
}
