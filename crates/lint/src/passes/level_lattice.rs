//! Level-lattice pass: a `match` over consistency levels must not
//! enumerate only the builtin levels.
//!
//! The lattice is open by design (DESIGN.md §13): `ConsistencyLevel`
//! is a registry handle, not a closed enum, and deployments register
//! custom levels at runtime (`icg-replicad --levels`). Nothing in the
//! type system stops code from writing
//!
//! ```text
//! match level {
//!     ConsistencyLevel::WEAK => …,
//!     ConsistencyLevel::STRONG => …,
//! }
//! ```
//!
//! — or to satisfy the compiler with `_ => unreachable!()`, a
//! "can't happen" fallback that a registered fifth level promptly
//! reaches. This pass flags any match whose arms name builtin level
//! constants (`CACHE`/`WEAK`/`UPDATE`/`CAUSAL`/`STRONG`, bare or
//! `ConsistencyLevel::`-qualified) without a single arm that can
//! *usefully* receive a non-builtin level: a binding, a `_`, a guard,
//! or a custom-level constant — where a fallback whose body goes
//! straight to `unreachable!`/`panic!`/`todo!`/`unimplemented!` does
//! not count. Rank queries (`rank()`, `at_least()`,
//! `weakest()`/`strongest()`) are the lattice-correct alternative and
//! never trip the pass.

use std::path::Path;

use super::{crate_sources, push_unless_waived};
use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{TokKind, Token};
use crate::scan::SourceFile;

const PASS: &str = "level_lattice";

/// The builtin level constants; naming one in a pattern marks the
/// match as a match over consistency levels.
const BUILTINS: &[&str] = &["CACHE", "WEAK", "UPDATE", "CAUSAL", "STRONG"];

/// Runs the pass.
pub fn run(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for krate in &cfg.level_lattice_crates {
        for sf in crate_sources(root, krate) {
            check_file(&sf, &mut out);
        }
    }
    out
}

fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "match" {
            continue;
        }
        let Some(open) = find_body_open(toks, i + 1) else {
            continue;
        };
        let arms = parse_arms(toks, open);
        if arms.is_empty() {
            continue;
        }
        let names_builtin = arms
            .iter()
            .any(|a| mentions_builtin_level(toks, a.pat.clone()));
        if !names_builtin {
            continue;
        }
        let has_open_arm = arms
            .iter()
            .any(|a| is_open_arm(toks, a.pat.clone()) && !panics_immediately(toks, a.body));
        if has_open_arm {
            continue;
        }
        let f = Finding {
            pass: PASS,
            file: sf.path.clone(),
            line: t.line,
            kind: "closed-level-match",
            detail: format!("line {}", t.line),
            message: "match over ConsistencyLevel enumerates only builtin levels; \
                      the lattice is open — handle registered custom levels with a \
                      binding/`_` arm or use rank queries (`rank()`, `at_least`)"
                .into(),
        };
        push_unless_waived(out, sf, f);
    }
}

/// Finds the `{` opening the match body: the first brace at bracket
/// depth zero after the scrutinee (struct literals are not legal in a
/// bare match scrutinee, so any earlier brace sits inside `(...)` or
/// `[...]`).
fn find_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None, // not a match expression after all
            _ => {}
        }
    }
    None
}

/// One match arm: its pattern token range (everything before the `=>`,
/// including any `if` guard) and where its body starts.
struct Arm {
    pat: std::ops::Range<usize>,
    body: usize,
}

/// Splits the match body at `open` into arms.
fn parse_arms(toks: &[Token], open: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "}" {
            break; // end of the match body
        }
        // Pattern: up to `=>` at this arm's own bracket depth.
        let pat_start = i;
        let mut depth = 0i32;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        if depth == 0 {
                            return arms; // unbalanced; degrade quietly
                        }
                        depth -= 1;
                    }
                    "=" if depth == 0 && toks.get(i + 1).is_some_and(|n| n.text == ">") => {
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if i >= toks.len() {
            break;
        }
        arms.push(Arm {
            pat: pat_start..i,
            body: i + 2,
        });
        i += 2; // past `=>`
        i = skip_arm_body(toks, i);
    }
    arms
}

/// Whether an arm body goes straight to a panic-family macro — a
/// fallback in letter only, still assuming the builtin set is closed.
fn panics_immediately(toks: &[Token], body: usize) -> bool {
    let mut j = body;
    // Skip a block opener: `=> { unreachable!(…) }`.
    if toks.get(j).is_some_and(|t| t.text == "{") {
        j += 1;
    }
    toks.get(j).is_some_and(|t| {
        t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
    }) && toks.get(j + 1).is_some_and(|t| t.text == "!")
}

/// Advances past one arm body, returning the index after it. A body
/// that *is* a braced block ends at its closing brace (trailing comma
/// optional); any other body is an expression running to the next
/// comma at bracket depth zero — braces inside it (struct literals,
/// `if`/`match` expressions) are balanced, not terminators.
fn skip_arm_body(toks: &[Token], mut i: usize) -> usize {
    let block_body = toks
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == "{");
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    if depth == 0 {
                        return i; // the match's own close; leave it
                    }
                    depth -= 1;
                    if depth == 0 && block_body {
                        // The arm's block just closed; eat a trailing comma.
                        if toks.get(i + 1).is_some_and(|n| n.text == ",") {
                            return i + 2;
                        }
                        return i + 1;
                    }
                }
                "," if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Whether the pattern names a builtin level constant, bare (`WEAK`)
/// or qualified (`ConsistencyLevel::WEAK`).
fn mentions_builtin_level(toks: &[Token], range: std::ops::Range<usize>) -> bool {
    range.clone().any(|j| {
        let t = &toks[j];
        t.kind == TokKind::Ident && BUILTINS.contains(&t.text.as_str())
    })
}

/// Whether the arm can receive a level that is not a builtin constant:
/// a wildcard, a binding, a guard, or a custom (non-builtin) level
/// constant.
fn is_open_arm(toks: &[Token], range: std::ops::Range<usize>) -> bool {
    for j in range {
        let t = &toks[j];
        match t.kind {
            TokKind::Ident if t.text == "_" => return true,
            TokKind::Ident if t.text == "if" => return true, // guard
            TokKind::Ident => {
                let qualified_elsewhere = toks
                    .get(j + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct && n.text == ":");
                let first = t.text.chars().next().unwrap_or('_');
                if first.is_ascii_lowercase() && !qualified_elsewhere {
                    return true; // a binding such as `other`
                }
                // An UPPER_CASE constant that is not a builtin level:
                // a custom level the arm handles explicitly.
                let path_tail = j >= 2
                    && toks.get(j - 1).is_some_and(|p| p.text == ":")
                    && toks.get(j - 2).is_some_and(|p| p.text == ":");
                if path_tail
                    && first.is_ascii_uppercase()
                    && t.text.chars().all(|c| c == '_' || c.is_ascii_uppercase())
                    && !BUILTINS.contains(&t.text.as_str())
                    && !qualified_elsewhere
                {
                    return true;
                }
            }
            TokKind::Punct if t.text == "_" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("lib.rs", src);
        let mut out = Vec::new();
        check_file(&sf, &mut out);
        out
    }

    #[test]
    fn closed_builtin_match_is_flagged() {
        let src = "
            fn f(l: ConsistencyLevel) -> u8 {
                match l {
                    ConsistencyLevel::WEAK => 0,
                    ConsistencyLevel::STRONG => 1,
                }
            }
        ";
        let out = findings(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, "closed-level-match");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn wildcard_binding_and_guard_arms_are_open() {
        for tail in [
            "_ => 2,",
            "other => other.rank(),",
            "l if l.rank() > 20 => 2,",
        ] {
            let src = format!(
                "fn f(l: ConsistencyLevel) -> u8 {{
                     match l {{ ConsistencyLevel::WEAK => 0, {tail} }}
                 }}"
            );
            assert!(findings(&src).is_empty(), "arm `{tail}` should be open");
        }
    }

    #[test]
    fn custom_level_constant_counts_as_open() {
        let src = "
            fn f(l: ConsistencyLevel) -> u8 {
                match l { levels::WEAK => 0, levels::AUDIT => 1 }
            }
        ";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn panicking_fallback_is_still_closed() {
        for body in ["unreachable!(\"no\")", "panic!(\"no\")", "{ todo!() }"] {
            let src = format!(
                "fn f(l: ConsistencyLevel) -> u8 {{
                     match l {{
                         ConsistencyLevel::WEAK => 0,
                         ConsistencyLevel::STRONG => 1,
                         _ => {body},
                     }}
                 }}"
            );
            let out = findings(&src);
            assert_eq!(out.len(), 1, "fallback `{body}` is closed in spirit");
        }
    }

    #[test]
    fn bare_imported_constants_are_still_level_matches() {
        let src = "
            fn f(l: ConsistencyLevel) -> u8 {
                match l { WEAK => 0, STRONG => 1 }
            }
        ";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn unrelated_matches_are_ignored() {
        let src = "
            fn f(x: Option<u8>) -> u8 {
                match x { Some(v) => v, None => 0 }
            }
            fn g(m: Msg) { match m { Msg::Ping => {} Msg::Pong => {} } }
        ";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn nested_match_in_an_arm_body_is_scanned() {
        let src = "
            fn f(l: ConsistencyLevel, x: Option<u8>) -> u8 {
                match x {
                    Some(_) => match l {
                        ConsistencyLevel::WEAK => 0,
                        ConsistencyLevel::STRONG => 1,
                    },
                    None => 0,
                }
            }
        ";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let src = "
            fn f(l: ConsistencyLevel) -> u8 {
                // lint: allow(level_lattice) — builtin-only by construction
                match l {
                    ConsistencyLevel::WEAK => 0,
                    ConsistencyLevel::STRONG => 1,
                }
            }
        ";
        assert!(findings(src).is_empty());
    }
}
