//! Unsafe-audit pass: every `unsafe` site carries an adjacent
//! `// SAFETY:` comment arguing why it is sound.
//!
//! The comment must *end* on the line of the `unsafe` token or the line
//! directly above — far-away prose doesn't count, because the argument
//! has to survive refactors next to the code it justifies. The same
//! scan feeds the generated `UNSAFETY.md` inventory (see
//! [`crate::unsafety`]).

use std::path::Path;

use super::{crate_sources, push_unless_waived};
use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

const PASS: &str = "unsafe_audit";

/// One `unsafe` occurrence, for findings and the inventory.
pub struct UnsafeSite {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `unsafe` token.
    pub line: u32,
    /// Enclosing function, or `<item>` for `unsafe fn`/`unsafe impl`.
    pub context: String,
    /// The adjacent SAFETY comment, if any (first line, trimmed).
    pub safety: Option<String>,
}

/// Runs the pass over every configured crate.
pub fn run(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for krate in &cfg.unsafe_audit_crates {
        for sf in crate_sources(root, krate) {
            let mut sites = Vec::new();
            collect_file(&sf, &mut sites);
            for site in sites {
                if site.safety.is_none() {
                    push_unless_waived(
                        &mut out,
                        &sf,
                        Finding {
                            pass: PASS,
                            file: site.file.clone(),
                            line: site.line,
                            kind: "missing-safety-comment",
                            detail: site.context.clone(),
                            message: format!(
                                "`unsafe` in `{}` without an adjacent `// SAFETY:` comment; \
                                 state the invariant that makes this sound, next to the code",
                                site.context
                            ),
                        },
                    );
                }
            }
        }
    }
    out
}

/// Collects every `unsafe` site in the configured crates (test modules
/// excluded), with its SAFETY comment when present — the input to both
/// the findings above and the `UNSAFETY.md` inventory.
pub fn collect_sites(root: &Path, cfg: &Config) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for krate in &cfg.unsafe_audit_crates {
        for sf in crate_sources(root, krate) {
            collect_file(&sf, &mut sites);
        }
    }
    sites
}

fn collect_file(sf: &SourceFile, sites: &mut Vec<UnsafeSite>) {
    for (i, t) in sf.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" || sf.in_test_code(i) {
            continue;
        }
        let context = sf
            .enclosing_fn(i)
            .map(|f| f.qual_name.clone())
            .unwrap_or_else(|| "<item>".into());
        let safety = sf
            .adjacent_comment(t.line, "SAFETY:")
            .map(first_safety_line);
        sites.push(UnsafeSite {
            file: sf.path.clone(),
            line: t.line,
            context,
            safety,
        });
    }
}

/// The `SAFETY:` line of a comment, markers stripped.
fn first_safety_line(comment: &str) -> String {
    let tail = comment
        .split("SAFETY:")
        .nth(1)
        .unwrap_or(comment)
        .trim_start();
    let line = tail.lines().next().unwrap_or(tail);
    line.trim_end_matches("*/").trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<UnsafeSite> {
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        collect_file(&sf, &mut out);
        out
    }

    #[test]
    fn adjacent_safety_comment_is_found() {
        let s = sites(
            "fn read_it(p: *const u8) -> u8 {\n\
                 // SAFETY: caller guarantees `p` is valid for reads.\n\
                 unsafe { *p }\n\
             }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(
            s[0].safety.as_deref(),
            Some("caller guarantees `p` is valid for reads.")
        );
        assert_eq!(s[0].context, "read_it");
    }

    #[test]
    fn missing_or_distant_comment_is_a_finding() {
        let s = sites(
            "// SAFETY: too far away to count.\n\
             \n\
             \n\
             fn bad(p: *const u8) -> u8 { unsafe { *p } }",
        );
        assert_eq!(s.len(), 1);
        assert!(s[0].safety.is_none());
    }

    #[test]
    fn same_line_comment_counts() {
        let s = sites("fn f(p: *const u8) -> u8 { unsafe { *p } // SAFETY: valid per caller\n }");
        assert_eq!(s.len(), 1);
        assert!(s[0].safety.is_some());
    }
}
