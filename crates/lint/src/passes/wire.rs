//! Wire-exhaustiveness pass: every variant of every wire enum must be
//! handled by the codec's `encode` *and* `decode`, and exercised by the
//! wire property tests.
//!
//! The codec is hand-rolled (no derives, by design — DESIGN.md §10), so
//! nothing in the type system forces a newly added `Msg` variant into
//! `impl Wire for Msg`: `encode`'s match would still be exhaustive if
//! someone added a `_ =>` arm, and `decode` is just a tag match that
//! silently rejects what it doesn't know. This pass closes that gap
//! mechanically: add a variant and the linter fails until the codec and
//! `prop_wire.rs` know about it.
//!
//! A variant `V` of enum `E` counts as covered by a file when the
//! qualified path `E::V` (or `Self::V` inside `impl Wire for E`)
//! appears in it.

use std::path::Path;

use super::parse_one;
use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::{EnumDef, SourceFile};

const PASS: &str = "wire";

/// Runs the pass.
pub fn run(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.wire_enums.is_empty() {
        return out;
    }
    let enum_files: Vec<SourceFile> = cfg
        .wire_enum_files
        .iter()
        .filter_map(|p| parse_one(root, p))
        .collect();
    let codec = parse_one(root, &cfg.wire_codec);
    let props = parse_one(root, &cfg.wire_proptests);
    let (Some(codec), Some(props)) = (codec, props) else {
        out.push(Finding {
            pass: PASS,
            file: cfg.wire_codec.clone(),
            line: 0,
            kind: "missing-file",
            detail: "codec or proptest file".into(),
            message: format!(
                "cannot read `{}` or `{}` named in [wire]",
                cfg.wire_codec, cfg.wire_proptests
            ),
        });
        return out;
    };

    for name in &cfg.wire_enums {
        let Some((def_file, def)) = find_enum(&enum_files, name) else {
            out.push(Finding {
                pass: PASS,
                file: cfg.wire_enum_files.first().cloned().unwrap_or_default(),
                line: 0,
                kind: "enum-not-found",
                detail: name.clone(),
                message: format!(
                    "enum `{name}` listed in [wire].enums not found in any \
                     [wire].enum_files entry"
                ),
            });
            continue;
        };
        check_enum(def_file, def, &codec, &props, &mut out);
    }
    out
}

fn find_enum<'a>(files: &'a [SourceFile], name: &str) -> Option<(&'a SourceFile, &'a EnumDef)> {
    files
        .iter()
        .find_map(|sf| sf.enums.iter().find(|e| e.name == name).map(|e| (sf, e)))
}

fn check_enum(
    def_file: &SourceFile,
    def: &EnumDef,
    codec: &SourceFile,
    props: &SourceFile,
    out: &mut Vec<Finding>,
) {
    let name = &def.name;
    let encode = format!("{name}::encode");
    let decode = format!("{name}::decode");
    let encode_fn = codec.fns.iter().find(|f| f.qual_name == encode);
    let decode_fn = codec.fns.iter().find(|f| f.qual_name == decode);
    if encode_fn.is_none() || decode_fn.is_none() {
        out.push(Finding {
            pass: PASS,
            file: def_file.path.clone(),
            line: def.line,
            kind: "no-wire-impl",
            detail: name.clone(),
            message: format!(
                "enum `{name}` has no `impl Wire for {name}` (encode + decode) in the codec"
            ),
        });
        return;
    }
    let encode_fn = encode_fn.expect("checked above");
    let decode_fn = decode_fn.expect("checked above");

    let encode_ranges = with_helper_bodies(codec, encode_fn.body.clone());
    let decode_ranges = with_helper_bodies(codec, decode_fn.body.clone());
    for (variant, line) in &def.variants {
        let in_encode = encode_ranges
            .iter()
            .any(|r| mentions_variant(codec, r.clone(), name, variant));
        let in_decode = decode_ranges
            .iter()
            .any(|r| mentions_variant(codec, r.clone(), name, variant));
        let in_props = mentions_variant(props, 0..props.tokens.len(), name, variant);
        let mut missing: Vec<(&str, &str)> = Vec::new();
        if !in_encode {
            missing.push(("unencoded", "the codec's `encode`"));
        }
        if !in_decode {
            missing.push(("undecoded", "the codec's `decode`"));
        }
        if !in_props {
            missing.push(("unproptested", "the wire property tests"));
        }
        for (kind, what) in missing {
            push_finding(out, def_file, *line, kind, name, variant, what);
        }
    }
}

fn push_finding(
    out: &mut Vec<Finding>,
    def_file: &SourceFile,
    line: u32,
    kind: &'static str,
    name: &str,
    variant: &str,
    what: &str,
) {
    let f = Finding {
        pass: PASS,
        file: def_file.path.clone(),
        line,
        kind,
        detail: format!("{name}::{variant}"),
        message: format!(
            "wire enum variant `{name}::{variant}` is not covered by {what}; a frame \
             carrying it would be unrepresentable or silently rejected"
        ),
    };
    super::push_unless_waived(out, def_file, f);
}

/// The body range plus the bodies of module-level helper functions in
/// the codec file that the range calls (`shared tag decoders like
/// `decode_msg_body` keep variant construction out of the `impl Wire`
/// body itself). One level of following — helpers of helpers would
/// need a fixpoint nobody's codec warrants yet.
fn with_helper_bodies(
    codec: &SourceFile,
    body: std::ops::Range<usize>,
) -> Vec<std::ops::Range<usize>> {
    let mut ranges = vec![body.clone()];
    for i in body {
        let t = &codec.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // A call `helper(` where `helper` is a module-level fn in the
        // codec file (qualified names are method/assoc calls, skip).
        if codec.tokens.get(i + 1).is_none_or(|n| n.text != "(") {
            continue;
        }
        if i > 0 && codec.tokens[i - 1].text == ":" {
            continue;
        }
        if let Some(f) = codec.fns.iter().find(|f| f.qual_name == t.text) {
            if !ranges.contains(&f.body) {
                ranges.push(f.body.clone());
            }
        }
    }
    ranges
}

/// Whether `E::V` (or `Self::V`) appears in `range` of `sf`'s tokens.
fn mentions_variant(
    sf: &SourceFile,
    range: std::ops::Range<usize>,
    enum_name: &str,
    variant: &str,
) -> bool {
    let toks = &sf.tokens;
    for i in range {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != enum_name && t.text != "Self") {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text == variant)
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(types_src: &str, codec_src: &str, props_src: &str) -> Vec<Finding> {
        let types = SourceFile::parse("types.rs", types_src);
        let codec = SourceFile::parse("codec.rs", codec_src);
        let props = SourceFile::parse("prop.rs", props_src);
        let mut out = Vec::new();
        let def = &types.enums[0];
        check_enum(&types, def, &codec, &props, &mut out);
        out
    }

    const TYPES: &str = "pub enum Msg { Ping, Pong, Data(u32) }";

    #[test]
    fn fully_covered_enum_is_clean() {
        let codec = "
            impl Wire for Msg {
                fn encode(&self, b: &mut Vec<u8>) {
                    match self { Msg::Ping => {}, Msg::Pong => {}, Msg::Data(x) => {} }
                }
                fn decode(r: &mut R) -> Result<Self, E> {
                    match r.u8()? {
                        0 => Ok(Msg::Ping), 1 => Ok(Msg::Pong), 2 => Ok(Msg::Data(r.u32()?)),
                        t => Err(E::BadTag(t)),
                    }
                }
            }
        ";
        let props = "fn arb() { let _ = (Msg::Ping, Msg::Pong, Msg::Data(1)); }";
        assert!(check(TYPES, codec, props).is_empty());
    }

    #[test]
    fn missing_decode_arm_and_proptest_are_flagged() {
        let codec = "
            impl Wire for Msg {
                fn encode(&self, b: &mut Vec<u8>) {
                    match self { Msg::Ping => {}, Msg::Pong => {}, Msg::Data(x) => {} }
                }
                fn decode(r: &mut R) -> Result<Self, E> {
                    match r.u8()? { 0 => Ok(Msg::Ping), 1 => Ok(Msg::Pong), t => Err(E::BadTag(t)) }
                }
            }
        ";
        let props = "fn arb() { let _ = (Msg::Ping, Msg::Pong); }";
        let out = check(TYPES, codec, props);
        let kinds: Vec<(&str, &str)> = out.iter().map(|f| (f.kind, f.detail.as_str())).collect();
        assert_eq!(
            kinds,
            vec![("undecoded", "Msg::Data"), ("unproptested", "Msg::Data")]
        );
    }

    #[test]
    fn missing_impl_is_one_finding() {
        let out = check(TYPES, "fn unrelated() {}", "");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, "no-wire-impl");
    }

    #[test]
    fn variants_built_in_a_called_helper_count() {
        let codec = "
            impl Wire for Msg {
                fn encode(&self, b: &mut Vec<u8>) {
                    match self { Msg::Ping => {}, Msg::Pong => {}, Msg::Data(x) => {} }
                }
                fn decode(r: &mut R) -> Result<Self, E> {
                    let tag = r.u8()?;
                    decode_body(tag, r)
                }
            }
            fn decode_body(tag: u8, r: &mut R) -> Result<Msg, E> {
                match tag {
                    0 => Ok(Msg::Ping), 1 => Ok(Msg::Pong), 2 => Ok(Msg::Data(r.u32()?)),
                    t => Err(E::BadTag(t)),
                }
            }
        ";
        let props = "fn arb() { let _ = (Msg::Ping, Msg::Pong, Msg::Data(1)); }";
        assert!(check(TYPES, codec, props).is_empty());
    }

    #[test]
    fn self_qualified_arms_count() {
        let codec = "
            impl Wire for Msg {
                fn encode(&self, b: &mut Vec<u8>) {
                    match self { Self::Ping => {}, Self::Pong => {}, Self::Data(x) => {} }
                }
                fn decode(r: &mut R) -> Result<Self, E> {
                    match r.u8()? {
                        0 => Ok(Self::Ping), 1 => Ok(Self::Pong), 2 => Ok(Self::Data(r.u32()?)),
                        t => Err(E::BadTag(t)),
                    }
                }
            }
        ";
        let props = "fn arb() { let _ = (Msg::Ping, Msg::Pong, Msg::Data(1)); }";
        assert!(check(TYPES, codec, props).is_empty());
    }
}
