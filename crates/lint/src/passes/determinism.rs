//! Determinism pass: no wall-clock time, ambient randomness, or
//! unordered-map iteration in sim-reachable crates.
//!
//! The explorer's `(seed, schedule)` repro pairs (DESIGN.md §8) replay a
//! run by re-executing it; any dependence on `Instant::now`,
//! `SystemTime::now`, a thread-local RNG, or the per-process SipHash
//! seed of `HashMap` iteration order makes the replay diverge from the
//! recorded failure. Simulated code must take time from the sim clock
//! and randomness from the seeded engine RNG, and iterate only ordered
//! containers (or sort first).

use std::collections::BTreeSet;
use std::path::Path;

use super::{crate_sources, is_path2, parse_one, push_unless_waived};
use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scan::SourceFile;

const PASS: &str = "determinism";

/// Ambient-randomness entry points of the vendored `rand` shim.
const AMBIENT_RNG: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// Iteration methods whose order is the hasher's, not the program's.
const ORDER_SENSITIVE: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Runs the pass over every configured crate.
pub fn run(root: &Path, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for krate in &cfg.determinism_crates {
        for sf in crate_sources(root, krate) {
            check_file(&sf, &mut out);
        }
    }
    for rel in &cfg.determinism_files {
        let Some(sf) = parse_one(root, rel) else {
            out.push(Finding {
                pass: PASS,
                file: rel.clone(),
                line: 0,
                kind: "missing-file",
                detail: rel.clone(),
                message: "file listed in [determinism].files does not exist".into(),
            });
            continue;
        };
        check_file(&sf, &mut out);
    }
    out
}

fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let maps = unordered_map_names(sf);
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.in_test_code(i) {
            continue;
        }
        let in_fn = |idx: usize| {
            sf.enclosing_fn(idx)
                .map(|f| f.qual_name.clone())
                .unwrap_or_else(|| "<module>".into())
        };
        // Wall-clock reads.
        for ty in ["Instant", "SystemTime"] {
            if is_path2(toks, i, ty, "now") {
                push_unless_waived(
                    out,
                    sf,
                    Finding {
                        pass: PASS,
                        file: sf.path.clone(),
                        line: toks[i].line,
                        kind: "wall-clock",
                        detail: format!("{}::now in {}", ty, in_fn(i)),
                        message: format!(
                            "`{ty}::now()` in sim-reachable code; take time from the sim \
                             clock so (seed, schedule) repros replay identically"
                        ),
                    },
                );
            }
        }
        // Ambient randomness.
        if toks[i].kind == TokKind::Ident && AMBIENT_RNG.contains(&toks[i].text.as_str()) {
            push_unless_waived(
                out,
                sf,
                Finding {
                    pass: PASS,
                    file: sf.path.clone(),
                    line: toks[i].line,
                    kind: "ambient-rng",
                    detail: format!("{} in {}", toks[i].text, in_fn(i)),
                    message: format!(
                        "`{}` in sim-reachable code; draw from the seeded engine RNG instead",
                        toks[i].text
                    ),
                },
            );
        }
        // Iteration over a HashMap/HashSet-typed name.
        if toks[i].text == "." {
            if let Some(m) = toks.get(i + 1) {
                if m.kind == TokKind::Ident
                    && ORDER_SENSITIVE.contains(&m.text.as_str())
                    && toks.get(i + 2).is_some_and(|t| t.text == "(")
                {
                    if let Some(prev) = i.checked_sub(1).and_then(|k| toks.get(k)) {
                        if prev.kind == TokKind::Ident && maps.contains(prev.text.as_str()) {
                            emit_iteration(sf, out, toks[i].line, &prev.text, &m.text, &in_fn(i));
                        }
                    }
                }
            }
        }
        // `for pat in [&[mut]] name {` over a map-typed name.
        if toks[i].kind == TokKind::Ident && toks[i].text == "in" {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.text == "&" || t.text == "mut")
            {
                j += 1;
            }
            let (Some(name), Some(open)) = (toks.get(j), toks.get(j + 1)) else {
                continue;
            };
            if name.kind == TokKind::Ident && maps.contains(name.text.as_str()) && open.text == "{"
            {
                emit_iteration(sf, out, toks[i].line, &name.text, "for-loop", &in_fn(i));
            }
        }
    }
}

fn emit_iteration(
    sf: &SourceFile,
    out: &mut Vec<Finding>,
    line: u32,
    name: &str,
    how: &str,
    in_fn: &str,
) {
    push_unless_waived(
        out,
        sf,
        Finding {
            pass: PASS,
            file: sf.path.clone(),
            line,
            kind: "map-iteration",
            detail: format!("{name}.{how} in {in_fn}"),
            message: format!(
                "iteration over unordered map `{name}` ({how}); iteration order depends \
                 on the per-process hasher seed — use a BTreeMap or sort first"
            ),
        },
    );
}

/// Names declared with a `HashMap`/`HashSet` type in this file: struct
/// fields and `let` bindings with explicit annotations (`name: HashMap<…>`)
/// plus `let [mut] name = HashMap::new()/with_capacity(…)`.
fn unordered_map_names(sf: &SourceFile) -> BTreeSet<String> {
    let toks = &sf.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `name : HashMap` (field, param, or annotated let).
        if let (Some(colon), Some(name)) = (
            i.checked_sub(1).and_then(|k| toks.get(k)),
            i.checked_sub(2).and_then(|k| toks.get(k)),
        ) {
            if colon.text == ":"
                && name.kind == TokKind::Ident
                // Exclude the path case `std::collections::HashMap`.
                && i.checked_sub(3)
                    .and_then(|k| toks.get(k))
                    .is_none_or(|t| t.text != ":")
            {
                names.insert(name.text.clone());
                continue;
            }
        }
        // `let [mut] name = HashMap ::` (constructor binding).
        if let (Some(eq), Some(name_idx)) = (i.checked_sub(1), i.checked_sub(2)) {
            let name = &toks[name_idx];
            if toks[eq].text == "=" && name.kind == TokKind::Ident && name.text != "mut" {
                let mut before = name_idx.checked_sub(1);
                if before
                    .and_then(|k| toks.get(k))
                    .is_some_and(|t| t.text == "mut")
                {
                    before = before.and_then(|k| k.checked_sub(1));
                }
                if before
                    .and_then(|k| toks.get(k))
                    .is_some_and(|t| t.text == "let")
                {
                    names.insert(name.text.clone());
                }
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check_file(&sf, &mut out);
        out
    }

    #[test]
    fn flags_wall_clock_and_rng() {
        let f =
            findings("fn tick() { let t = Instant::now(); let r = thread_rng(); let _ = (t, r); }");
        let kinds: Vec<&str> = f.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, vec!["wall-clock", "ambient-rng"]);
    }

    #[test]
    fn flags_hashmap_iteration_but_not_lookup() {
        let f = findings(
            "struct S { m: HashMap<u32, u32> }\n\
             impl S {\n\
                 fn ok(&self) -> Option<&u32> { self.m.get(&1) }\n\
                 fn bad(&self) -> u32 { self.m.values().sum() }\n\
             }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "map-iteration");
        assert!(f[0].detail.contains("S::bad"));
    }

    #[test]
    fn for_loop_over_map_binding() {
        let f = findings(
            "fn walk() { let mut seen = HashMap::new(); seen.insert(1, 2);\n\
             for kv in &seen { let _ = kv; } }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("for-loop"));
    }

    #[test]
    fn btreemap_iteration_is_fine_and_waivers_work() {
        let f = findings("fn ok(m: &BTreeMap<u32, u32>) -> u32 { m.values().sum() }");
        assert!(f.is_empty());
        let f = findings(
            "fn logged(m: HashMap<u32, u32>) {\n\
                 // lint: allow(determinism) — debug dump, order irrelevant\n\
                 for kv in &m { println!(\"{kv:?}\"); }\n\
             }",
        );
        assert!(f.is_empty());
    }
}
