//! Lock-discipline fixture: two functions acquiring the same pair of
//! mutexes in opposite orders — the seeded ABBA inversion.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *gb - *ga
    }
}
