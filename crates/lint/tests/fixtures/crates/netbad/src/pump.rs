//! Panic-path fixture: exactly one `.unwrap()` on the event-loop path,
//! plus one waived `.expect()` that must NOT be reported.

pub fn pump(first: Option<u32>) -> u32 {
    // Seeded violation: unwrap in an event-loop file.
    first.unwrap()
}

pub fn boot() {
    // lint: allow(panic_path) — startup, nothing is serving yet
    std::thread::Builder::new().spawn(|| {}).expect("spawn");
}
