//! Determinism fixture: exactly one wall-clock read; everything else
//! is clean (ordered iteration, engine-provided time).

use std::collections::BTreeMap;
use std::time::Instant;

pub struct Sim {
    pub events: BTreeMap<u64, u32>,
}

impl Sim {
    /// Clean: BTreeMap iteration is ordered.
    pub fn sum(&self) -> u32 {
        self.events.values().sum()
    }

    /// Seeded violation: wall-clock time in sim-reachable code.
    pub fn stamp(&self) -> Instant {
        Instant::now()
    }
}
