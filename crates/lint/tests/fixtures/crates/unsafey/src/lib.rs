//! Unsafe-audit fixture: one `unsafe` with a SAFETY comment (clean) and
//! one without (the seeded violation).

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}
