//! Level-lattice fixture: exactly one closed match over builtin
//! consistency levels; the other matches are lattice-correct.

pub struct ConsistencyLevel;

impl ConsistencyLevel {
    pub const WEAK: u8 = 10;
    pub const STRONG: u8 = 40;
}

/// Seeded violation: the fallback exists only to satisfy the compiler;
/// a registered custom level lands in `unreachable!`.
pub fn closed(level: u8) -> &'static str {
    match level {
        ConsistencyLevel::WEAK => "weak",
        ConsistencyLevel::STRONG => "strong",
        _ => unreachable!("builtins only"),
    }
}

/// Clean: the guard and wildcard arms genuinely handle any registered
/// level, builtin or not.
pub fn open(level: u8) -> &'static str {
    match level {
        ConsistencyLevel::WEAK => "weak",
        other if other >= ConsistencyLevel::STRONG => "strong-or-above",
        _ => "custom",
    }
}

/// Clean: not a level match at all.
pub fn unrelated(x: Option<u8>) -> u8 {
    match x {
        Some(v) => v,
        None => 0,
    }
}
