//! Wire fixture proptests: exercise `Ping` and `Pong` but not `Drop`.

fn arbitrary_msg(coin: bool) -> FMsg {
    if coin {
        FMsg::Ping
    } else {
        FMsg::Pong
    }
}
