//! Wire fixture: `Drop` is the seeded uncovered variant — encode knows
//! it, but decode and the proptests do not.

pub enum FMsg {
    Ping,
    Pong,
    Drop,
}
