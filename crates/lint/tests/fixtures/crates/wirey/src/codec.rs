//! Wire fixture codec: encode covers every variant, decode misses
//! `FMsg::Drop` (the seeded violation).

use super::types::FMsg;

impl Wire for FMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FMsg::Ping => buf.push(0),
            FMsg::Pong => buf.push(1),
            FMsg::Drop => buf.push(2),
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FMsg::Ping),
            1 => Ok(FMsg::Pong),
            t => Err(WireError::BadTag(t)),
        }
    }
}
