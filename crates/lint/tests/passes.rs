//! Integration tests: each pass flags exactly its seeded fixture
//! violation, waivers and the baseline behave end-to-end, and the real
//! workspace is clean against its checked-in config and baseline.

use std::path::{Path, PathBuf};

use icg_lint::baseline::Baseline;
use icg_lint::config::Config;
use icg_lint::{run_all, unsafety};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn each_pass_flags_exactly_its_seeded_fixture() {
    let root = fixture_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("fixture config parses");
    let findings = run_all(&root, &cfg);
    let got: Vec<(String, &str, String)> = findings
        .iter()
        .map(|f| (f.pass.to_string(), f.kind, f.file.clone()))
        .collect();
    let want = vec![
        (
            "level_lattice".to_string(),
            "closed-level-match",
            "crates/levely/src/lib.rs".to_string(),
        ),
        (
            "lock_discipline".to_string(),
            "lock-cycle",
            "crates/locky/src/lib.rs".to_string(),
        ),
        (
            "panic_path".to_string(),
            "unwrap",
            "crates/netbad/src/pump.rs".to_string(),
        ),
        (
            "determinism".to_string(),
            "wall-clock",
            "crates/simbad/src/lib.rs".to_string(),
        ),
        (
            "unsafe_audit".to_string(),
            "missing-safety-comment",
            "crates/unsafey/src/lib.rs".to_string(),
        ),
        (
            "wire".to_string(),
            "undecoded",
            "crates/wirey/src/types.rs".to_string(),
        ),
        (
            "wire".to_string(),
            "unproptested",
            "crates/wirey/src/types.rs".to_string(),
        ),
    ];
    assert_eq!(got, want, "full findings: {findings:#?}");

    // The waived `.expect()` in the netbad fixture must not appear at all.
    assert!(
        findings.iter().all(|f| !f.detail.contains("boot")),
        "waiver in fixture was not honored: {findings:#?}"
    );

    // The wire findings both point at the seeded uncovered variant.
    assert!(findings
        .iter()
        .filter(|f| f.pass == "wire")
        .all(|f| f.detail == "FMsg::Drop"));
}

#[test]
fn baseline_accepts_exactly_the_current_findings() {
    let root = fixture_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("fixture config parses");
    let findings = run_all(&root, &cfg);
    assert!(!findings.is_empty());

    // Empty baseline: everything is new.
    let empty = Baseline::default();
    let (fresh, accepted) = empty.partition(findings.clone());
    assert_eq!(fresh.len(), findings.len());
    assert!(accepted.is_empty());

    // A baseline rendered from the findings accepts all of them.
    let dir = std::env::temp_dir().join("icg-lint-fixture-baseline");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("lint.baseline");
    std::fs::write(&path, Baseline::render(&findings)).expect("write baseline");
    let full = Baseline::load(&path).expect("load baseline");
    let (fresh, accepted) = full.partition(findings.clone());
    assert!(fresh.is_empty(), "still new: {fresh:#?}");
    assert_eq!(accepted.len(), findings.len());
}

#[test]
fn real_workspace_is_clean_against_checked_in_baseline() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("workspace lint.toml parses");
    let baseline = Baseline::load(&root.join("lint.baseline")).expect("baseline loads");
    let (fresh, _) = baseline.partition(run_all(&root, &cfg));
    assert!(
        fresh.is_empty(),
        "new lint findings in the workspace:\n{}",
        fresh
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_unsafety_inventory_is_current() {
    let root = workspace_root();
    let cfg = Config::load(&root.join("lint.toml")).expect("workspace lint.toml parses");
    assert!(
        unsafety::check(&root, &cfg, &root.join("UNSAFETY.md")).is_ok(),
        "UNSAFETY.md is stale; regenerate with `cargo run -p icg-lint -- unsafety`"
    );
}
