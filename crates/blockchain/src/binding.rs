//! The multi-view Correctables binding over the blockchain (§4.5).
//!
//! Consistency levels are *confirmation depths*: `conf-1` (in the tip
//! block, weak — reorgs can still drop it) through `conf-6` (irreversible
//! with overwhelming probability — "strongly consistent"). One
//! `invoke(pay(...))` therefore delivers up to six incremental views, each
//! strictly stronger than the last — the paper's prime example of an
//! application wanting *many* preliminary views for user feedback, since
//! finality takes tens of (virtual) minutes.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, LevelSet, Upcall};
use simnet::{Ctx, Engine, Node, NodeId, SimDuration, SimTime, Timer, Topology};

use crate::chain::TxId;
use crate::network::{Miner, Msg};

/// The confirmation depth treated as final ("strongly consistent with
/// high probability" — Bitcoin's conventional six).
pub const FINAL_DEPTH: u64 = 6;

/// The consistency level of a given confirmation depth. Depths register
/// lazily in the process-wide level lattice (idempotent — the same
/// name/rank pair always yields the same level), ranked between CACHE
/// and WEAK: even six confirmations are probabilistic, not a quorum.
pub fn conf_level(depth: u64) -> ConsistencyLevel {
    const NAMES: [&str; 6] = ["conf-1", "conf-2", "conf-3", "conf-4", "conf-5", "conf-6"];
    let d = depth.clamp(1, FINAL_DEPTH);
    ConsistencyLevel::register(NAMES[(d - 1) as usize], d as u8)
        .expect("confirmation-depth levels are well-formed")
}

/// A submitted payment, as seen by the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxStatus {
    /// The transaction.
    pub tx: TxId,
    /// Current confirmation depth.
    pub confirmations: u64,
}

struct Queued {
    tx: TxId,
    upcall: Upcall<TxStatus>,
}

type OpQueue = Arc<Mutex<VecDeque<Queued>>>;

struct WatchPending {
    upcall: Upcall<TxStatus>,
    submitted: SimTime,
    confirmed_at: Vec<(u64, f64)>,
}

/// Per-transaction confirmation timeline (virtual milliseconds).
#[derive(Clone, Debug)]
pub struct TxTimeline {
    /// The transaction.
    pub tx: TxId,
    /// (depth, ms after submission) per delivered view.
    pub confirmations_ms: Vec<(u64, f64)>,
}

type Timelines = Arc<Mutex<Vec<TxTimeline>>>;

const KICK: u64 = u64::MAX - 1;

struct Wallet {
    node: NodeId,
    queue: OpQueue,
    timelines: Timelines,
    pending: HashMap<TxId, WatchPending>,
}

impl Wallet {
    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            self.pending.insert(
                q.tx,
                WatchPending {
                    upcall: q.upcall,
                    submitted: ctx.now(),
                    confirmed_at: Vec::new(),
                },
            );
            ctx.send(self.node, Msg::SubmitTx { tx: q.tx });
        }
    }
}

impl Node<Msg> for Wallet {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        if let Msg::Confirmation { tx, depth } = msg {
            let mut done = false;
            if let Some(p) = self.pending.get_mut(&tx) {
                let ms = ctx.now().since(p.submitted).as_millis_f64();
                p.confirmed_at.push((depth, ms));
                p.upcall.deliver(
                    TxStatus {
                        tx,
                        confirmations: depth,
                    },
                    conf_level(depth),
                );
                done = depth >= FINAL_DEPTH;
            }
            if done {
                let p = self.pending.remove(&tx).expect("present");
                self.timelines.lock().push(TxTimeline {
                    tx,
                    confirmations_ms: p.confirmed_at,
                });
            }
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == KICK {
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct ChainState {
    engine: Engine<Msg>,
    wallet: NodeId,
    miners: Vec<NodeId>,
}

/// A simulated blockchain network with a wallet binding.
#[derive(Clone)]
pub struct SimChain {
    state: Arc<Mutex<ChainState>>,
    queue: OpQueue,
    timelines: Timelines,
}

impl SimChain {
    /// Builds a network with one miner per paper site plus a wallet in
    /// `client_site`, with the given *global* mean block interval.
    ///
    /// # Panics
    ///
    /// Panics if the site name is unknown.
    pub fn ec2(block_interval: SimDuration, client_site: &str, seed: u64) -> SimChain {
        let topo = Topology::ec2_frk_irl_vrg();
        let client_site_id = topo.site_named(client_site).expect("known site");
        let mut engine = Engine::new(topo, seed);
        let sites = ["FRK", "IRL", "VRG"];
        let per_miner = block_interval * sites.len() as u64;
        let miners: Vec<NodeId> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let site = engine.topology().site_named(s).expect("site");
                engine.add_node(site, Box::new(Miner::new(i as u32, per_miner)))
            })
            .collect();
        for (i, id) in miners.iter().enumerate() {
            let peers: Vec<NodeId> = miners
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            engine.node_as::<Miner>(*id).set_peers(peers);
            // Kick off mining.
            engine.schedule_timer(*id, SimDuration::ZERO, Timer(u64::MAX));
        }
        let queue: OpQueue = Arc::new(Mutex::new(VecDeque::new()));
        let timelines: Timelines = Arc::new(Mutex::new(Vec::new()));
        let wallet = engine.add_node(
            client_site_id,
            Box::new(Wallet {
                node: miners[0],
                queue: Arc::clone(&queue),
                timelines: Arc::clone(&timelines),
                pending: HashMap::new(),
            }),
        );
        SimChain {
            state: Arc::new(Mutex::new(ChainState {
                engine,
                wallet,
                miners,
            })),
            queue,
            timelines,
        }
    }

    /// The Correctables binding (six confirmation levels).
    pub fn binding(&self) -> ChainBinding {
        ChainBinding {
            chain: self.clone(),
        }
    }

    /// Runs the network for `d` of virtual time (mining never goes idle,
    /// so the blockchain is driven by explicit time budgets).
    pub fn run_for(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let kick = st.wallet;
        st.engine
            .schedule_timer(kick, SimDuration::ZERO, Timer(KICK));
        let until = st.engine.now() + d;
        st.engine.run_until(until);
    }

    /// Confirmation timelines of finalized transactions.
    pub fn timelines(&self) -> Vec<TxTimeline> {
        self.timelines.lock().clone()
    }

    /// Total reorganizations observed across all miners.
    pub fn total_reorgs(&self) -> u64 {
        let mut st = self.state.lock();
        let miners = st.miners.clone();
        miners
            .into_iter()
            .map(|m| st.engine.node_as::<Miner>(m).chain.reorgs)
            .sum()
    }

    /// The main-chain height at the wallet's node.
    pub fn height(&self) -> u64 {
        let mut st = self.state.lock();
        let m = st.miners[0];
        st.engine.node_as::<Miner>(m).chain.height()
    }
}

/// `Binding` implementation over [`SimChain`].
#[derive(Clone)]
pub struct ChainBinding {
    chain: SimChain,
}

impl Binding for ChainBinding {
    type Op = TxId;
    type Val = TxStatus;

    fn consistency_levels(&self) -> LevelSet {
        (1..=FINAL_DEPTH).map(conf_level).collect()
    }

    fn submit(&self, tx: TxId, _levels: &[ConsistencyLevel], upcall: Upcall<TxStatus>) {
        self.chain.queue.lock().push_back(Queued { tx, upcall });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::{Client, State};

    fn network(seed: u64) -> SimChain {
        // 30-second virtual blocks keep tests fast while preserving
        // plenty of propagation-induced forks.
        SimChain::ec2(SimDuration::from_secs(30), "IRL", seed)
    }

    #[test]
    fn payment_accumulates_six_incremental_views() {
        let chain = network(3);
        let client = Client::new(chain.binding());
        assert_eq!(client.consistency_levels().len(), 6);
        let c = client.invoke(4242);
        chain.run_for(SimDuration::from_secs(3600));
        assert_eq!(c.state(), State::Final, "six confirmations within an hour");
        let prelims = c.preliminary_views();
        // Monotone depths, closing at 6.
        let mut last = 0;
        for v in &prelims {
            assert!(v.value.confirmations > last);
            last = v.value.confirmations;
        }
        let fin = c.final_view().unwrap();
        assert_eq!(fin.value.confirmations, FINAL_DEPTH);
        assert_eq!(fin.level, conf_level(FINAL_DEPTH));
    }

    #[test]
    fn confirmation_levels_are_strictly_ordered() {
        for d in 1..FINAL_DEPTH {
            assert!(conf_level(d) < conf_level(d + 1));
        }
        assert!(conf_level(1) > ConsistencyLevel::CACHE);
    }

    #[test]
    fn chain_grows_and_forks_resolve() {
        let chain = network(9);
        chain.run_for(SimDuration::from_secs(3600));
        // Expected ~120 blocks/hour at 30 s intervals.
        let h = chain.height();
        assert!((60..240).contains(&h), "height {h}");
    }

    #[test]
    fn timelines_record_increasing_depths() {
        let chain = network(11);
        let client = Client::new(chain.binding());
        let _c = client.invoke(7);
        chain.run_for(SimDuration::from_secs(3600));
        let t = chain.timelines();
        assert_eq!(t.len(), 1);
        let depths: Vec<u64> = t[0].confirmations_ms.iter().map(|(d, _)| *d).collect();
        assert!(depths.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*depths.last().unwrap(), FINAL_DEPTH);
        // Later confirmations take longer.
        let times: Vec<f64> = t[0].confirmations_ms.iter().map(|(_, ms)| *ms).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }
}
