//! The simulated blockchain network: miners, gossip, and tx watching.
//!
//! Miners find blocks after exponentially distributed intervals, include
//! mempool transactions, and gossip blocks to their peers; concurrent
//! finds produce natural forks that the longest-chain rule resolves.
//! Clients submit transactions to a node and receive one notification per
//! *new maximum* confirmation depth — the incremental views of §4.5.

use std::any::Any;
use std::collections::HashMap;

use simnet::{Ctx, Node, NodeId, SimDuration, Timer, Wire};

use crate::chain::{Block, BlockId, Chain, TxId};

/// Timer token: try to mine the next block.
const MINE: u64 = 1;

/// Protocol messages.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → node: watch and broadcast a transaction.
    SubmitTx {
        /// Client-chosen transaction id.
        tx: TxId,
    },
    /// Node ↔ node: transaction gossip.
    GossipTx {
        /// The transaction.
        tx: TxId,
    },
    /// Node ↔ node: block gossip.
    GossipBlock {
        /// The block.
        block: Block,
    },
    /// Node → client: the watched transaction reached a new confirmation
    /// depth.
    Confirmation {
        /// The transaction.
        tx: TxId,
        /// Its (new maximum) confirmation depth.
        depth: u64,
    },
}

impl Wire for Msg {
    fn wire_size(&self) -> usize {
        60 + match self {
            Msg::SubmitTx { .. } | Msg::GossipTx { .. } => 250,
            Msg::GossipBlock { block } => 80 + block.txs.len() * 250,
            Msg::Confirmation { .. } => 17,
        }
    }

    fn category(&self) -> &'static str {
        match self {
            Msg::SubmitTx { .. } => "btc-submit",
            Msg::GossipTx { .. } => "btc-tx",
            Msg::GossipBlock { .. } => "btc-block",
            Msg::Confirmation { .. } => "btc-conf",
        }
    }
}

/// A mining full node.
pub struct Miner {
    /// Mining index (used to derive unique block ids).
    pub index: u32,
    peers: Vec<NodeId>,
    /// Local chain view.
    pub chain: Chain,
    mempool: Vec<TxId>,
    /// Blocks whose parents have not arrived yet.
    orphans: Vec<Block>,
    /// Watched transactions: tx → (client, highest depth reported).
    watchers: HashMap<TxId, (NodeId, u64)>,
    /// Mean time between this miner's blocks.
    pub mean_interval: SimDuration,
    next_block_seq: u64,
    /// Blocks this miner produced.
    pub mined: u64,
}

impl Miner {
    /// Creates miner `index` with the given per-miner mean block interval.
    pub fn new(index: u32, mean_interval: SimDuration) -> Self {
        Miner {
            index,
            peers: Vec::new(),
            chain: Chain::new(),
            mempool: Vec::new(),
            orphans: Vec::new(),
            watchers: HashMap::new(),
            mean_interval,
            next_block_seq: 0,
            mined: 0,
        }
    }

    /// Wires the other nodes.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    fn schedule_mining(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let delay_ms = ctx.rng().exponential(self.mean_interval.as_millis_f64());
        ctx.set_timer(SimDuration::from_millis_f64(delay_ms.max(1.0)), Timer(MINE));
    }

    fn mine_block(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let parent = self.chain.tip();
        let height = self.chain.height() + 1;
        // Globally unique, deterministic block id.
        let id: BlockId = 1 + u64::from(self.index) + (self.next_block_seq + 1) * 1_000;
        self.next_block_seq += 1;
        let txs: Vec<TxId> = self.mempool.drain(..).collect();
        let block = Block {
            id,
            parent,
            height,
            txs,
        };
        self.mined += 1;
        self.accept_block(ctx, block.clone());
        for p in self.peers.clone() {
            ctx.send(
                p,
                Msg::GossipBlock {
                    block: block.clone(),
                },
            );
        }
    }

    fn accept_block(&mut self, ctx: &mut Ctx<'_, Msg>, block: Block) {
        if !self.chain.insert(block) {
            return;
        }
        // Try to connect any orphans that were waiting.
        while let Some(pos) = self
            .orphans
            .iter()
            .position(|b| self.chain.contains(b.parent) && !self.chain.contains(b.id))
        {
            let b = self.orphans.swap_remove(pos);
            self.chain.insert(b);
        }
        // Drop mempool txs that are now on the main chain.
        self.mempool.retain(|tx| !self.chain.on_main_chain(*tx));
        self.notify_watchers(ctx);
    }

    fn notify_watchers(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut to_send = Vec::new();
        for (tx, (client, reported)) in &mut self.watchers {
            let depth = self.chain.confirmations(*tx);
            if depth > *reported {
                *reported = depth;
                to_send.push((*client, *tx, depth));
            }
        }
        for (client, tx, depth) in to_send {
            ctx.send(client, Msg::Confirmation { tx, depth });
        }
    }
}

impl Node<Msg> for Miner {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::SubmitTx { tx } => {
                self.watchers.insert(tx, (from, 0));
                if !self.mempool.contains(&tx) && !self.chain.on_main_chain(tx) {
                    self.mempool.push(tx);
                }
                for p in self.peers.clone() {
                    ctx.send(p, Msg::GossipTx { tx });
                }
            }
            Msg::GossipTx { tx } => {
                if !self.mempool.contains(&tx) && !self.chain.on_main_chain(tx) {
                    self.mempool.push(tx);
                }
            }
            Msg::GossipBlock { block } => {
                if self.chain.contains(block.id) {
                    return;
                }
                if self.chain.contains(block.parent) {
                    self.accept_block(ctx, block);
                } else {
                    self.orphans.push(block);
                }
            }
            Msg::Confirmation { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == MINE {
            self.mine_block(ctx);
            self.schedule_mining(ctx);
        } else if timer.0 == u64::MAX {
            // Kickoff: start the mining clock.
            self.schedule_mining(ctx);
        }
    }

    fn service_cost(&self, msg: &Msg) -> SimDuration {
        match msg {
            Msg::GossipBlock { .. } => SimDuration::from_millis(2),
            _ => SimDuration::from_micros(100),
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
