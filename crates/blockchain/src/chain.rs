//! A minimal longest-chain blockchain: blocks, forks, and confirmation
//! depths.
//!
//! Just enough consensus to exercise the paper's §4.5 use case: Correctables
//! "can track transaction confirmations as they accumulate and eventually
//! the transaction becomes an irrevocable part of the blockchain, i.e.,
//! strongly-consistent with high probability".

use std::collections::HashMap;

/// A transaction identifier.
pub type TxId = u64;
/// A block identifier.
pub type BlockId = u64;

/// One mined block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Unique id.
    pub id: BlockId,
    /// Parent block id (`0` = the implicit genesis).
    pub parent: BlockId,
    /// Distance from genesis (genesis children have height 1).
    pub height: u64,
    /// Transactions included.
    pub txs: Vec<TxId>,
}

/// A node's view of the block DAG with longest-chain fork choice.
#[derive(Clone, Debug, Default)]
pub struct Chain {
    blocks: HashMap<BlockId, Block>,
    tip: BlockId,
    /// Height of a transaction's block on the main chain.
    tx_heights: HashMap<TxId, u64>,
    /// Number of reorganizations observed (tip moved off its ancestor).
    pub reorgs: u64,
}

impl Chain {
    /// An empty chain (only genesis, id 0, height 0).
    pub fn new() -> Self {
        Chain::default()
    }

    /// The current tip id (`0` = genesis).
    pub fn tip(&self) -> BlockId {
        self.tip
    }

    /// The current chain height.
    pub fn height(&self) -> u64 {
        self.blocks.get(&self.tip).map(|b| b.height).unwrap_or(0)
    }

    /// Whether a block id is known.
    pub fn contains(&self, id: BlockId) -> bool {
        id == 0 || self.blocks.contains_key(&id)
    }

    /// Inserts a block; returns `true` if it was new and its parent is
    /// known (orphans are rejected — callers re-gossip them).
    pub fn insert(&mut self, block: Block) -> bool {
        if self.contains(block.id) || !self.contains(block.parent) {
            return false;
        }
        let old_tip = self.tip;
        let better = match self.blocks.get(&self.tip) {
            None => true,
            Some(t) => block.height > t.height || (block.height == t.height && block.id < t.id),
        };
        self.blocks.insert(block.id, block.clone());
        if better {
            self.tip = block.id;
            // Detect a reorg: the new tip's parent is not the old tip.
            if old_tip != 0 && block.parent != old_tip {
                self.reorgs += 1;
            }
            self.reindex();
        }
        true
    }

    /// Confirmation depth of a transaction on the main chain
    /// (1 = in the tip block; 0 = not on the main chain).
    pub fn confirmations(&self, tx: TxId) -> u64 {
        match self.tx_heights.get(&tx) {
            Some(h) => self.height().saturating_sub(*h) + 1,
            None => 0,
        }
    }

    /// Whether a transaction is already on the main chain.
    pub fn on_main_chain(&self, tx: TxId) -> bool {
        self.tx_heights.contains_key(&tx)
    }

    /// Ids of the main-chain blocks, tip first.
    pub fn main_chain(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut cur = self.tip;
        while cur != 0 {
            out.push(cur);
            cur = self.blocks.get(&cur).map(|b| b.parent).unwrap_or(0);
        }
        out
    }

    fn reindex(&mut self) {
        self.tx_heights.clear();
        for id in self.main_chain() {
            let b = &self.blocks[&id];
            for tx in &b.txs {
                self.tx_heights.insert(*tx, b.height);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(id: BlockId, parent: BlockId, height: u64, txs: Vec<TxId>) -> Block {
        Block {
            id,
            parent,
            height,
            txs,
        }
    }

    #[test]
    fn confirmations_accumulate() {
        let mut c = Chain::new();
        assert!(c.insert(blk(1, 0, 1, vec![100])));
        assert_eq!(c.confirmations(100), 1);
        assert!(c.insert(blk(2, 1, 2, vec![])));
        assert!(c.insert(blk(3, 2, 3, vec![])));
        assert_eq!(c.confirmations(100), 3);
        assert_eq!(c.confirmations(999), 0);
    }

    #[test]
    fn longest_chain_wins_and_reorgs_are_counted() {
        let mut c = Chain::new();
        c.insert(blk(1, 0, 1, vec![100]));
        c.insert(blk(2, 1, 2, vec![]));
        // A competing fork from genesis overtakes with height 3.
        c.insert(blk(10, 0, 1, vec![200]));
        c.insert(blk(11, 10, 2, vec![]));
        assert_eq!(c.tip(), 2, "shorter fork must not displace the tip");
        c.insert(blk(12, 11, 3, vec![]));
        assert_eq!(c.tip(), 12);
        assert_eq!(c.reorgs, 1);
        // Tx 100 fell off the main chain; tx 200 is now deep.
        assert_eq!(c.confirmations(100), 0);
        assert_eq!(c.confirmations(200), 3);
    }

    #[test]
    fn equal_height_ties_break_deterministically() {
        let mut a = Chain::new();
        a.insert(blk(5, 0, 1, vec![]));
        a.insert(blk(3, 0, 1, vec![]));
        let mut b = Chain::new();
        b.insert(blk(3, 0, 1, vec![]));
        b.insert(blk(5, 0, 1, vec![]));
        assert_eq!(a.tip(), b.tip(), "insertion order must not matter");
        assert_eq!(a.tip(), 3);
    }

    #[test]
    fn orphans_are_rejected() {
        let mut c = Chain::new();
        assert!(!c.insert(blk(2, 1, 2, vec![])), "parent 1 unknown");
        assert!(c.insert(blk(1, 0, 1, vec![])));
        assert!(c.insert(blk(2, 1, 2, vec![])));
    }
}
