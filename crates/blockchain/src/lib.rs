//! # blockchain — transaction confirmations as incremental views (§4.5)
//!
//! The paper names blockchain applications as a prime use case for *many*
//! incremental views: "Correctables can track transaction confirmations
//! as they accumulate and eventually the transaction becomes an
//! irrevocable part of the blockchain" — a use case the authors
//! implemented but omitted for space. This crate supplies it: a
//! longest-chain network simulator ([`network::Miner`] over exponential
//! block intervals, with natural forks and reorgs) and a Correctables
//! binding ([`binding::SimChain`]) whose consistency levels are the
//! confirmation depths `conf-1` … `conf-6`.

pub mod binding;
pub mod chain;
pub mod network;

pub use binding::{conf_level, ChainBinding, SimChain, TxStatus, TxTimeline, FINAL_DEPTH};
pub use chain::{Block, BlockId, Chain, TxId};
pub use network::{Miner, Msg};
