//! Property-based tests of the workload generators.

use proptest::prelude::*;

use ycsb::{seeded_rng, Distribution, KeyChooser, Workload, Zipfian};

fn arb_dist() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Uniform),
        Just(Distribution::Zipfian),
        Just(Distribution::ScrambledZipfian),
        Just(Distribution::Latest),
    ]
}

proptest! {
    /// Every chooser keeps keys inside the record space, for any space
    /// size and distribution.
    #[test]
    fn keys_always_in_range(
        records in 1u64..5_000,
        dist in arb_dist(),
        seed in any::<u64>(),
    ) {
        let chooser = KeyChooser::new(dist, records);
        let mut rng = seeded_rng(seed);
        for _ in 0..500 {
            prop_assert!(chooser.next(&mut rng) < records);
        }
    }

    /// Generators are pure functions of (workload, seed).
    #[test]
    fn generators_are_deterministic(
        records in 1u64..1_000,
        dist in arb_dist(),
        seed in any::<u64>(),
        read_prop in 0.0f64..=1.0,
    ) {
        let mut w = Workload::a(dist, records);
        w.read_proportion = read_prop;
        let mut g1 = w.generator(seed);
        let mut g2 = w.generator(seed);
        for _ in 0..200 {
            prop_assert_eq!(g1.next_op(), g2.next_op());
        }
    }

    /// The read/update mix statistically tracks the configured proportion.
    #[test]
    fn mix_tracks_read_proportion(read_prop in 0.05f64..0.95, seed in any::<u64>()) {
        let mut w = Workload::a(Distribution::Uniform, 100);
        w.read_proportion = read_prop;
        let mut g = w.generator(seed);
        let n = 4_000;
        let reads = (0..n).filter(|_| g.next_op().is_read()).count();
        let frac = reads as f64 / n as f64;
        prop_assert!((frac - read_prop).abs() < 0.05, "frac {frac} vs {read_prop}");
    }

    /// Zipfian rank-popularity is monotone: lower ranks are at least as
    /// popular as higher ranks (within sampling noise, aggregated).
    #[test]
    fn zipfian_head_dominates_tail(seed in any::<u64>()) {
        let z = Zipfian::new(1_000);
        let mut rng = seeded_rng(seed);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..3_000 {
            let k = z.next(&mut rng);
            if k < 100 {
                head += 1;
            } else if k >= 900 {
                tail += 1;
            }
        }
        prop_assert!(head > tail, "head {head} vs tail {tail}");
    }

    /// Latest mirrors Zipfian onto the end of the keyspace.
    #[test]
    fn latest_head_is_at_the_end(seed in any::<u64>()) {
        let chooser = KeyChooser::new(Distribution::Latest, 1_000);
        let mut rng = seeded_rng(seed);
        let mut newest = 0u32;
        let mut oldest = 0u32;
        for _ in 0..3_000 {
            let k = chooser.next(&mut rng);
            if k >= 900 {
                newest += 1;
            } else if k < 100 {
                oldest += 1;
            }
        }
        prop_assert!(newest > oldest, "newest {newest} vs oldest {oldest}");
    }
}
