//! YCSB request-distribution generators.
//!
//! Ports of the key choosers from the YCSB benchmark (Cooper et al., SoCC
//! 2010) that the paper's evaluation uses: Zipfian (with the standard
//! constant 0.99), scrambled Zipfian, Latest (Zipfian over recency), and
//! Uniform. The Zipfian math follows the YCSB `ZipfianGenerator`
//! (Gray et al.'s algorithm) so popularity skew matches the original
//! benchmark.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The request distributions used in the paper's experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian over key ids; popular keys are clustered at low ids.
    Zipfian,
    /// Zipfian over hashed key ids; popular keys spread across the space.
    ScrambledZipfian,
    /// Skewed towards the most recently inserted/updated keys.
    Latest,
}

/// Standard YCSB Zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// YCSB's precomputed `zeta(10^10, 0.99)`, used by the scrambled-Zipfian
/// generator. Dividing by this larger normalizer flattens the head of the
/// distribution exactly as YCSB's default `requestdistribution=zipfian`
/// does — the reason the paper's "Latest" runs diverge far more than its
/// "Zipfian" runs (Figure 7).
pub const ZETAN_10B: f64 = 26.469_028_201_783_02;

const FNV_OFFSET_BASIS_64: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME_64: u64 = 0x0000_0100_0000_01B3;

/// YCSB's 64-bit FNV hash, used by the scrambled Zipfian chooser.
pub fn fnv_hash64(mut val: u64) -> u64 {
    let mut hash = FNV_OFFSET_BASIS_64;
    for _ in 0..8 {
        let octet = val & 0xff;
        val >>= 8;
        hash ^= octet;
        hash = hash.wrapping_mul(FNV_PRIME_64);
    }
    hash
}

/// Zipfian generator over `0..items`, following YCSB's implementation.
#[derive(Clone, Debug)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2theta: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a generator over `0..items` with the standard constant.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(items: u64) -> Self {
        Zipfian::with_constant(items, ZIPFIAN_CONSTANT)
    }

    /// Creates a generator with an explicit Zipfian constant.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn with_constant(items: u64, constant: f64) -> Self {
        let zetan = Self::zeta(items, constant);
        Zipfian::with_zetan(items, constant, zetan)
    }

    /// Creates a generator with an explicit `zeta(n)` normalizer, as
    /// YCSB's scrambled-Zipfian generator does (it always uses
    /// [`ZETAN_10B`] regardless of the actual item count).
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn with_zetan(items: u64, constant: f64, zetan: f64) -> Self {
        assert!(items > 0, "Zipfian over an empty key space");
        let theta = constant;
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            zeta2theta,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 0..n {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
        }
        sum
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Draws the next key id in `0..items` (low ids are the popular ones).
    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        self.next_scaled(rng, self.items, self.zetan, self.eta)
    }

    /// Draws over a prefix `0..n` of the key space, recomputing the tail
    /// constants incrementally — used by the Latest chooser whose horizon
    /// grows with every insert.
    pub fn next_over(&self, rng: &mut SmallRng, n: u64) -> u64 {
        if n == self.items {
            return self.next(rng);
        }
        // Recompute the constants for the new horizon. This is O(n); the
        // Latest chooser caches a `Zipfian` per horizon to avoid paying it
        // on every draw.
        let zetan = Self::zeta(n, self.theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2theta / zetan);
        self.next_scaled(rng, n, zetan, eta)
    }

    fn next_scaled(&self, rng: &mut SmallRng, n: u64, zetan: f64, eta: f64) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let raw = (n as f64 * (eta * u - eta + 1.0).powf(self.alpha)) as u64;
        raw.min(n - 1)
    }
}

/// A key chooser combining a distribution with the record space.
#[derive(Clone, Debug)]
pub struct KeyChooser {
    dist: Distribution,
    records: u64,
    zipf: Option<Zipfian>,
}

impl KeyChooser {
    /// Creates a chooser over `0..records`.
    ///
    /// # Panics
    ///
    /// Panics if `records` is zero.
    pub fn new(dist: Distribution, records: u64) -> Self {
        assert!(records > 0, "empty key space");
        let zipf = match dist {
            Distribution::Uniform => None,
            // YCSB's "zipfian" request distribution is the scrambled
            // generator with the 10-billion-item normalizer.
            Distribution::ScrambledZipfian => {
                Some(Zipfian::with_zetan(records, ZIPFIAN_CONSTANT, ZETAN_10B))
            }
            _ => Some(Zipfian::new(records)),
        };
        KeyChooser {
            dist,
            records,
            zipf,
        }
    }

    /// The distribution in use.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Draws a key id in `0..records`.
    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        match self.dist {
            Distribution::Uniform => rng.gen_range(0..self.records),
            Distribution::Zipfian => self.zipf.as_ref().expect("zipf built").next(rng),
            Distribution::ScrambledZipfian => {
                let z = self.zipf.as_ref().expect("zipf built").next(rng);
                fnv_hash64(z) % self.records
            }
            Distribution::Latest => {
                // Most recent key (highest id) is the most popular.
                let z = self.zipf.as_ref().expect("zipf built").next(rng);
                self.records - 1 - z
            }
        }
    }
}

/// Convenience: a seeded `SmallRng` for workload driving.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq_of(dist: Distribution, records: u64, draws: usize) -> Vec<u64> {
        let chooser = KeyChooser::new(dist, records);
        let mut rng = seeded_rng(99);
        let mut freq = vec![0u64; records as usize];
        for _ in 0..draws {
            let k = chooser.next(&mut rng);
            assert!(k < records, "key {k} out of range");
            freq[k as usize] += 1;
        }
        freq
    }

    #[test]
    fn zipfian_is_head_heavy() {
        let freq = freq_of(Distribution::Zipfian, 1000, 100_000);
        // Key 0 must be by far the most popular.
        let max = *freq.iter().max().unwrap();
        assert_eq!(freq[0], max);
        // Head (first 10%) should dominate: > 50% of all draws.
        let head: u64 = freq[..100].iter().sum();
        assert!(head > 50_000, "head had {head}");
    }

    #[test]
    fn zipfian_ratio_roughly_matches_theory() {
        let freq = freq_of(Distribution::Zipfian, 1000, 400_000);
        // P(0)/P(1) should be near 2^theta ≈ 1.99; allow slack.
        let ratio = freq[0] as f64 / freq[1] as f64;
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn latest_is_tail_heavy() {
        let records = 1000;
        let freq = freq_of(Distribution::Latest, records, 100_000);
        let max = *freq.iter().max().unwrap();
        assert_eq!(freq[(records - 1) as usize], max);
        let tail: u64 = freq[900..].iter().sum();
        assert!(tail > 50_000, "tail had {tail}");
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let freq = freq_of(Distribution::ScrambledZipfian, 1000, 100_000);
        // The hottest key should not be at position 0 (hashed away)
        // with overwhelming probability, and skew must persist.
        let max = *freq.iter().max().unwrap();
        let hot = freq.iter().position(|&f| f == max).unwrap();
        assert!(max > 1_000, "still skewed, max={max}");
        // All keys in range (checked by freq_of) and determinism below.
        let again = freq_of(Distribution::ScrambledZipfian, 1000, 100_000);
        assert_eq!(freq, again);
        let _ = hot;
    }

    #[test]
    fn uniform_is_flat() {
        let freq = freq_of(Distribution::Uniform, 100, 100_000);
        let min = *freq.iter().min().unwrap() as f64;
        let max = *freq.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "uniform too skewed: {min}..{max}");
    }

    #[test]
    fn fnv_is_stable() {
        // Known-answer: hashing must be deterministic across runs.
        assert_eq!(fnv_hash64(0), fnv_hash64(0));
        assert_ne!(fnv_hash64(1), fnv_hash64(2));
    }

    #[test]
    fn zipfian_over_prefix_stays_in_range() {
        let z = Zipfian::new(1000);
        let mut rng = seeded_rng(5);
        for _ in 0..10_000 {
            let v = z.next_over(&mut rng, 10);
            assert!(v < 10);
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn empty_keyspace_panics() {
        let _ = KeyChooser::new(Distribution::Uniform, 0);
    }
}
