//! # ycsb — workload generators for the evaluation harness
//!
//! A faithful port of the parts of the Yahoo! Cloud Serving Benchmark
//! (YCSB) that the paper's evaluation uses: core workloads A (update
//! heavy), B (read mostly), and C (read only), with Uniform, Zipfian,
//! scrambled-Zipfian, and Latest request distributions.
//!
//! ## Example
//!
//! ```
//! use ycsb::{Distribution, Op, Workload};
//!
//! let workload = Workload::a(Distribution::Latest, 1_000);
//! let mut gen = workload.generator(42);
//! let ops: Vec<Op> = (0..4).map(|_| gen.next_op()).collect();
//! assert!(ops.iter().all(|op| op.key() < 1_000));
//! ```

pub mod dist;
pub mod workload;

pub use dist::{fnv_hash64, seeded_rng, Distribution, KeyChooser, Zipfian, ZIPFIAN_CONSTANT};
pub use workload::{Generator, Op, Workload};
