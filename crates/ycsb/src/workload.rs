//! YCSB core workloads A, B, and C.
//!
//! - **A** — update heavy: 50% reads / 50% updates;
//! - **B** — read mostly: 95% reads / 5% updates;
//! - **C** — read only.
//!
//! The paper (§6.2.1) runs A/B/C with Zipfian and Latest request
//! distributions, 100-byte objects for microbenchmarks, and a 1 K-record
//! dataset for the divergence study.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::dist::{Distribution, KeyChooser};

/// One generated operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the record with this key id.
    Read(u64),
    /// Overwrite the record with this key id with `len` fresh bytes.
    Update {
        /// Key id.
        key: u64,
        /// New value length in bytes.
        len: usize,
    },
}

impl Op {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match self {
            Op::Read(k) => *k,
            Op::Update { key, .. } => *key,
        }
    }

    /// Whether this is a read.
    pub fn is_read(&self) -> bool {
        matches!(self, Op::Read(_))
    }
}

/// Configuration of a YCSB workload instance.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Fraction of reads in `[0, 1]`; the rest are updates.
    pub read_proportion: f64,
    /// Request distribution.
    pub distribution: Distribution,
    /// Number of records in the dataset.
    pub record_count: u64,
    /// Full record size in bytes — what a read returns (YCSB default
    /// records are 1 kB; the paper's microbenchmarks use 100 B objects).
    pub value_size: usize,
    /// Bytes written by one update — YCSB updates write a single field
    /// (100 B) by default, not the whole record.
    pub update_size: usize,
}

impl Workload {
    /// Workload A: 50% reads, 50% updates.
    pub fn a(distribution: Distribution, record_count: u64) -> Self {
        Workload {
            read_proportion: 0.5,
            distribution,
            record_count,
            value_size: 100,
            update_size: 100,
        }
    }

    /// Workload B: 95% reads, 5% updates.
    pub fn b(distribution: Distribution, record_count: u64) -> Self {
        Workload {
            read_proportion: 0.95,
            distribution,
            record_count,
            value_size: 100,
            update_size: 100,
        }
    }

    /// Workload C: read-only.
    pub fn c(distribution: Distribution, record_count: u64) -> Self {
        Workload {
            read_proportion: 1.0,
            distribution,
            record_count,
            value_size: 100,
            update_size: 100,
        }
    }

    /// Workload name by read proportion, for labeling output.
    pub fn label(&self) -> &'static str {
        if self.read_proportion >= 1.0 {
            "C"
        } else if self.read_proportion >= 0.95 {
            "B"
        } else {
            "A"
        }
    }

    /// Builds a per-client generator with its own deterministic stream.
    pub fn generator(&self, seed: u64) -> Generator {
        Generator {
            chooser: KeyChooser::new(self.distribution, self.record_count),
            read_proportion: self.read_proportion,
            update_size: self.update_size,
            rng: crate::dist::seeded_rng(seed),
        }
    }

    /// Sets the full-record and update-field sizes (builder style).
    pub fn with_sizes(mut self, value_size: usize, update_size: usize) -> Self {
        self.value_size = value_size;
        self.update_size = update_size;
        self
    }
}

/// A deterministic stream of operations for one simulated client thread.
#[derive(Clone, Debug)]
pub struct Generator {
    chooser: KeyChooser,
    read_proportion: f64,
    update_size: usize,
    rng: SmallRng,
}

impl Generator {
    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.chooser.next(&mut self.rng);
        if self.rng.gen::<f64>() < self.read_proportion {
            Op::Read(key)
        } else {
            Op::Update {
                key,
                len: self.update_size,
            }
        }
    }

    /// The configured update size.
    pub fn update_size(&self) -> usize {
        self.update_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(w: &Workload, n: usize) -> (usize, usize) {
        let mut g = w.generator(7);
        let mut reads = 0;
        let mut updates = 0;
        for _ in 0..n {
            match g.next_op() {
                Op::Read(_) => reads += 1,
                Op::Update { .. } => updates += 1,
            }
        }
        (reads, updates)
    }

    #[test]
    fn workload_a_is_half_and_half() {
        let (r, u) = mix_of(&Workload::a(Distribution::Zipfian, 1000), 20_000);
        let frac = r as f64 / (r + u) as f64;
        assert!((frac - 0.5).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn workload_b_is_read_mostly() {
        let (r, u) = mix_of(&Workload::b(Distribution::Zipfian, 1000), 20_000);
        let frac = r as f64 / (r + u) as f64;
        assert!((frac - 0.95).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let (r, u) = mix_of(&Workload::c(Distribution::Latest, 1000), 5_000);
        assert_eq!(u, 0);
        assert_eq!(r, 5_000);
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::a(Distribution::Zipfian, 10).label(), "A");
        assert_eq!(Workload::b(Distribution::Zipfian, 10).label(), "B");
        assert_eq!(Workload::c(Distribution::Zipfian, 10).label(), "C");
    }

    #[test]
    fn generators_with_same_seed_agree() {
        let w = Workload::a(Distribution::Latest, 100);
        let mut g1 = w.generator(3);
        let mut g2 = w.generator(3);
        for _ in 0..100 {
            assert_eq!(g1.next_op(), g2.next_op());
        }
    }

    #[test]
    fn update_len_matches_value_size() {
        let mut w = Workload::a(Distribution::Zipfian, 10);
        w.update_size = 321;
        let mut g = w.generator(1);
        loop {
            if let Op::Update { len, .. } = g.next_op() {
                assert_eq!(len, 321);
                break;
            }
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let w = Workload::a(Distribution::ScrambledZipfian, 123);
        let mut g = w.generator(11);
        for _ in 0..10_000 {
            assert!(g.next_op().key() < 123);
        }
    }
}
