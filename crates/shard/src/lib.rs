//! # icg-shard — a sharded multi-object routing layer for Correctables
//!
//! Every binding in this workspace serves exactly one replicated object
//! (one register, one queue, one timeline). This crate turns any such
//! single-object [`Binding`](correctables::Binding) into a horizontally
//! scaled multi-object store while preserving the incremental-consistency
//! pipeline of each shard:
//!
//! - [`HashRing`] — a consistent-hash ring with virtual nodes mapping
//!   [`ObjectId`](correctables::ObjectId) keys to shards. Vnode placement
//!   is a deterministic function of `(seed, shard id)` drawn from the
//!   vendored xoshiro RNG, so two rings built with the same parameters
//!   are identical and adding a shard leaves every existing shard's
//!   points untouched (the precondition for bounded key movement).
//! - [`RebalancePlan`] — the diff of two rings: which hash ranges change
//!   owner, and what fraction of the keyspace they cover.
//! - [`ShardedBinding`] — implements `Binding` itself: each keyed op is
//!   routed to the owning shard's inner binding and that shard's
//!   per-level `Upcall` deliveries are re-emitted unchanged, so a client
//!   sees exactly the ICG semantics of the shard that served it. A
//!   [`scatter`](ShardedBinding::scatter) invocation fans one multi-get
//!   out across shards and merges views with weakest-common-level
//!   semantics: intermediate views surface at the weakest level every
//!   touched shard has reached, and the Correctable closes only when
//!   every shard has delivered its strongest view.
//! - [`Worker`] / [`PipelineConfig`] — the batching pipeline: one worker
//!   thread per shard drains a bounded submission queue up to
//!   `batch_max` ops per lock acquisition, so the hot path costs one
//!   lock round per batch instead of per op.
//! - [`MemBinding`] — a minimal in-memory single-shard counter store
//!   used as the reference backend for router tests, the
//!   `sharded_counters` example, and the `micro_shard` benchmarks.
//!
//! The per-level delivery discipline each shard keeps is the same one
//! update-consistency work relies on for convergence across partitions;
//! the router never reorders or synthesizes views, it only routes and
//! merges them.

// Public API documentation is complete and enforced: CI's lint job runs
// clippy with `-D warnings`, which promotes this to an error.
#![warn(missing_docs)]

pub mod mem;
pub mod pipeline;
pub mod ring;
pub mod router;

pub use mem::{KvOp, MemBinding};
pub use pipeline::{PipelineConfig, Worker};
pub use ring::{HashRing, MovedRange, RebalancePlan, ShardId};
pub use router::ShardedBinding;
