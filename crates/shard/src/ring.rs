//! The consistent-hash ring: virtual nodes over the 64-bit hash circle.
//!
//! Each shard owns `vnodes` points on the circle; a key is owned by the
//! shard whose point is the first at or clockwise-after the key's hash.
//! Points are drawn from the vendored xoshiro RNG seeded per shard, so:
//!
//! 1. lookups are a pure function of `(seed, vnodes, shard set, key)` —
//!    every router replica computes the same placement; and
//! 2. adding a shard adds only that shard's points, moving in expectation
//!    `1/(n+1)` of the keyspace (to the new shard, and nowhere else).
//!
//! [`RebalancePlan`] makes the second property operational: it diffs two
//! rings into the exact hash ranges that change owner.

use correctables::ObjectId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Identifies one shard of a sharded store.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct ShardId(pub u32);

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation used to
/// place keys on the circle.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring with virtual nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, index into shards)` pairs sorted by point (ties broken by
    /// shard id so the order is membership-independent).
    points: Vec<(u64, u32)>,
    /// The member shards, in construction order.
    shards: Vec<ShardId>,
    vnodes: usize,
    seed: u64,
}

impl HashRing {
    /// A ring over shards `0..shard_count`.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` or `vnodes` is zero.
    pub fn new(shard_count: u32, vnodes: usize, seed: u64) -> HashRing {
        let ids: Vec<ShardId> = (0..shard_count).map(ShardId).collect();
        HashRing::with_shards(&ids, vnodes, seed)
    }

    /// A ring over an explicit shard set (e.g. after adding or removing
    /// members). A shard's points depend only on `(seed, its id)`, never
    /// on the other members.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, contains duplicates, or `vnodes` is
    /// zero.
    pub fn with_shards(shards: &[ShardId], vnodes: usize, seed: u64) -> HashRing {
        assert!(!shards.is_empty(), "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one vnode per shard");
        let mut seen = shards.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), shards.len(), "duplicate shard in ring");
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for (idx, &shard) in shards.iter().enumerate() {
            // Independent deterministic stream per shard: membership
            // changes never disturb the points of surviving shards.
            let mut rng = SmallRng::seed_from_u64(mix64(seed) ^ u64::from(shard.0));
            for _ in 0..vnodes {
                points.push((rng.gen::<u64>(), idx as u32));
            }
        }
        points.sort_unstable_by_key(|&(p, idx)| (p, shards[idx as usize]));
        HashRing {
            points,
            shards: shards.to_vec(),
            vnodes,
            seed,
        }
    }

    /// A ring equal to `self` plus one more shard.
    pub fn with_added(&self, shard: ShardId) -> HashRing {
        let mut shards = self.shards.clone();
        shards.push(shard);
        HashRing::with_shards(&shards, self.vnodes, self.seed)
    }

    /// Where `key` lands on the hash circle.
    #[inline]
    pub fn position(&self, key: ObjectId) -> u64 {
        mix64(key.0 ^ self.seed)
    }

    /// The shard owning `key`.
    #[inline]
    pub fn owner(&self, key: ObjectId) -> ShardId {
        self.shards[self.owner_index(key)]
    }

    /// The index (into [`HashRing::shards`]) of the shard owning `key`.
    #[inline]
    pub fn owner_index(&self, key: ObjectId) -> usize {
        self.index_of_position(self.position(key))
    }

    /// The shard owning hash-circle position `pos`: the first point at or
    /// clockwise-after `pos`, wrapping past zero.
    #[inline]
    pub fn owner_of_position(&self, pos: u64) -> ShardId {
        self.shards[self.index_of_position(pos)]
    }

    #[inline]
    fn index_of_position(&self, pos: u64) -> usize {
        let idx = self.points.partition_point(|(p, _)| *p < pos);
        let (_, shard_idx) = self.points[idx % self.points.len()];
        shard_idx as usize
    }

    /// The member shards, in construction order.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// All `(point, shard)` pairs, sorted by point.
    pub fn points(&self) -> Vec<(u64, ShardId)> {
        self.points
            .iter()
            .map(|&(p, idx)| (p, self.shards[idx as usize]))
            .collect()
    }
}

/// A contiguous hash range changing owner between two rings.
///
/// The range is the half-open circle arc `(after, upto]`: it wraps past
/// zero when `after >= upto`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MovedRange {
    /// Exclusive start of the arc.
    pub after: u64,
    /// Inclusive end of the arc.
    pub upto: u64,
    /// Owner in the old ring.
    pub from: ShardId,
    /// Owner in the new ring.
    pub to: ShardId,
}

impl MovedRange {
    /// How many hash positions the arc covers.
    pub fn span(&self) -> u64 {
        self.upto.wrapping_sub(self.after)
    }

    /// Whether circle position `pos` falls inside the arc.
    pub fn contains(&self, pos: u64) -> bool {
        pos.wrapping_sub(self.after).wrapping_sub(1) < self.span()
    }
}

/// The diff of two rings: every key range whose owner changes, and the
/// fraction of the keyspace that has to move.
#[derive(Clone, Debug)]
pub struct RebalancePlan {
    /// Maximal arcs changing owner, in circle order.
    pub moved: Vec<MovedRange>,
}

impl RebalancePlan {
    /// Diffs `old` against `new`.
    ///
    /// Both rings must share `seed` (otherwise every key moves and the
    /// plan, while correct, is useless), but may differ in membership
    /// and vnode count.
    pub fn diff(old: &HashRing, new: &HashRing) -> RebalancePlan {
        // Owners are constant on the arcs between consecutive boundary
        // points of either ring, so probing one position per arc is exact.
        let mut bounds: Vec<u64> = old
            .points
            .iter()
            .chain(new.points.iter())
            .map(|(p, _)| *p)
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut moved: Vec<MovedRange> = Vec::new();
        let n = bounds.len();
        for i in 0..n {
            // The arc ending (inclusive) at bounds[i], starting just
            // after the previous boundary (wrapping around the circle).
            let after = bounds[(i + n - 1) % n];
            let upto = bounds[i];
            let from = old.owner_of_position(upto);
            let to = new.owner_of_position(upto);
            if from == to {
                continue;
            }
            // Coalesce with the previous arc when contiguous and moving
            // between the same pair of shards — unless the merge would
            // close the full circle, which `(after, upto]` cannot
            // represent (span would read as zero); keep two arcs then.
            match moved.last_mut() {
                Some(last)
                    if last.upto == after
                        && last.from == from
                        && last.to == to
                        && upto != last.after =>
                {
                    last.upto = upto;
                }
                _ => moved.push(MovedRange {
                    after,
                    upto,
                    from,
                    to,
                }),
            }
        }
        // The i = 0 arc is the wrap arc and was pushed before the arc
        // that may abut it from below; coalesce across the zero point so
        // `moved` really is maximal arcs.
        if moved.len() >= 2 {
            let first = moved[0];
            let last = *moved.last().expect("len >= 2");
            if last.upto == first.after
                && last.from == first.from
                && last.to == first.to
                && first.upto != last.after
            {
                moved[0].after = last.after;
                moved.pop();
            }
        }
        RebalancePlan { moved }
    }

    /// Fraction of the hash circle changing owner, in `[0, 1]`.
    pub fn moved_fraction(&self) -> f64 {
        let total: u128 = self.moved.iter().map(|r| u128::from(r.span())).sum();
        total as f64 / 2.0_f64.powi(64)
    }

    /// Whether `key` (placed by `ring`) changes owner under this plan.
    pub fn moves_key(&self, ring: &HashRing, key: ObjectId) -> bool {
        let pos = ring.position(key);
        self.moved.iter().any(|r| r.contains(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic() {
        let a = HashRing::new(8, 64, 7);
        let b = HashRing::new(8, 64, 7);
        assert_eq!(a.points(), b.points());
        for k in 0..1000 {
            assert_eq!(a.owner(ObjectId(k)), b.owner(ObjectId(k)));
        }
    }

    #[test]
    fn different_seeds_place_differently() {
        let a = HashRing::new(8, 64, 1);
        let b = HashRing::new(8, 64, 2);
        let diverges = (0..1000).any(|k| a.owner(ObjectId(k)) != b.owner(ObjectId(k)));
        assert!(diverges);
    }

    #[test]
    fn load_spreads_across_all_shards() {
        let ring = HashRing::new(8, 128, 42);
        let mut counts = [0usize; 8];
        for k in 0..8000 {
            counts[ring.owner_index(ObjectId(k))] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            // Perfect balance would be 1000; vnode placement keeps every
            // shard within a loose factor of it.
            assert!((400..2200).contains(c), "shard {i} got {c} of 8000 keys");
        }
    }

    #[test]
    fn adding_a_shard_only_moves_keys_to_it() {
        let old = HashRing::new(4, 128, 9);
        let new = old.with_added(ShardId(4));
        for k in 0..4000u64 {
            let (o, n) = (old.owner(ObjectId(k)), new.owner(ObjectId(k)));
            if o != n {
                assert_eq!(n, ShardId(4), "key {k} moved to an old shard");
            }
        }
    }

    #[test]
    fn plan_agrees_with_lookups() {
        let old = HashRing::new(4, 64, 3);
        let new = old.with_added(ShardId(4));
        let plan = RebalancePlan::diff(&old, &new);
        assert!(!plan.moved.is_empty());
        assert!(plan.moved.iter().all(|r| r.to == ShardId(4)));
        for k in 0..2000u64 {
            let key = ObjectId(k);
            let moved = old.owner(key) != new.owner(key);
            assert_eq!(plan.moves_key(&old, key), moved, "key {k}");
        }
    }

    #[test]
    fn plan_fraction_tracks_expected_movement() {
        let old = HashRing::new(8, 128, 11);
        let plan = RebalancePlan::diff(&old, &old.with_added(ShardId(8)));
        let f = plan.moved_fraction();
        // Expectation is 1/9 ≈ 0.111; generous envelope either side.
        assert!(f > 0.02 && f < 2.0 / 9.0, "moved fraction {f}");
    }

    #[test]
    fn full_circle_ownership_change_is_representable() {
        // Replacing the only shard moves the entire keyspace; since one
        // (after, upto] arc cannot express a full circle, the plan must
        // report it as multiple arcs summing to ~the whole hash space.
        let old = HashRing::with_shards(&[ShardId(0)], 32, 5);
        let new = HashRing::with_shards(&[ShardId(1)], 32, 5);
        let plan = RebalancePlan::diff(&old, &new);
        assert!(plan.moved.len() >= 2);
        assert!(plan.moved.iter().all(|r| r.span() > 0));
        assert!(
            plan.moved_fraction() > 0.999,
            "moved {}",
            plan.moved_fraction()
        );
        for k in 0..512 {
            assert!(plan.moves_key(&old, ObjectId(k)), "key {k}");
        }
    }

    #[test]
    fn moved_arcs_are_maximal() {
        // No two circularly-adjacent arcs abut while moving between the
        // same pair of shards — including across the zero point.
        for seed in 0..32 {
            let old = HashRing::new(4, 48, seed);
            let plan = RebalancePlan::diff(&old, &old.with_added(ShardId(4)));
            let m = &plan.moved;
            for i in 0..m.len() {
                let a = m[i];
                let b = m[(i + 1) % m.len()];
                if m.len() > 1 {
                    assert!(
                        !(a.upto == b.after && a.from == b.from && a.to == b.to),
                        "seed {seed}: arcs {i} and next abut between the same shards"
                    );
                }
            }
        }
    }

    #[test]
    fn moved_range_wraps_past_zero() {
        let r = MovedRange {
            after: u64::MAX - 10,
            upto: 10,
            from: ShardId(0),
            to: ShardId(1),
        };
        assert_eq!(r.span(), 21);
        assert!(r.contains(u64::MAX));
        assert!(r.contains(0));
        assert!(r.contains(10));
        assert!(!r.contains(11));
        assert!(!r.contains(u64::MAX - 10));
    }
}
