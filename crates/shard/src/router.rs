//! [`ShardedBinding`]: the multi-object router.
//!
//! The router implements [`Binding`] itself, so a `Client` (and every
//! combinator, speculation helper, and load driver in the workspace)
//! works over a sharded store unchanged. Each keyed op is routed to the
//! owning shard's inner binding — inline on the caller thread, or through
//! the per-shard batching [`Worker`]s — and that shard's per-level upcall
//! deliveries flow through untouched. [`ShardedBinding::scatter`] adds
//! the one genuinely multi-shard operation: a multi-get whose merged
//! Correctable carries weakest-common-level semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{
    Binding, ConsistencyLevel, Correctable, Error, KeyedOp, LevelSelection, LevelSet, Upcall, View,
};

use crate::pipeline::{PipelineConfig, Worker};
use crate::ring::HashRing;

type Job<B> = (
    <B as Binding>::Op,
    Arc<[ConsistencyLevel]>,
    Upcall<<B as Binding>::Val>,
);

struct Inner<B: Binding> {
    shards: Vec<B>,
    ring: HashRing,
    /// The common level set of all shards, sorted weakest-first.
    levels: LevelSet,
    /// Per-shard batching workers; empty in inline mode.
    workers: Vec<Worker<Job<B>>>,
    /// Ops routed to each shard so far.
    routed: Vec<AtomicU64>,
}

/// A sharded multi-object store over `N` single-object bindings.
pub struct ShardedBinding<B: Binding> {
    inner: Arc<Inner<B>>,
}

impl<B: Binding> Clone for ShardedBinding<B> {
    fn clone(&self) -> Self {
        ShardedBinding {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<B: Binding> ShardedBinding<B>
where
    B::Op: KeyedOp,
{
    /// A router that submits on the caller thread — no worker threads, no
    /// batching. The cheapest mode, and the right one for single-threaded
    /// (simulated) shard backends driven by an external `settle` loop.
    pub fn inline(shards: Vec<B>, vnodes: usize, seed: u64) -> Self {
        let (ring, levels, routed) = Self::layout(&shards, vnodes, seed);
        ShardedBinding {
            inner: Arc::new(Inner {
                shards,
                ring,
                levels,
                workers: Vec::new(),
                routed,
            }),
        }
    }

    fn layout(shards: &[B], vnodes: usize, seed: u64) -> (HashRing, LevelSet, Vec<AtomicU64>) {
        assert!(
            !shards.is_empty(),
            "sharded binding needs at least one shard"
        );
        let levels = shards[0].consistency_levels();
        for (i, s) in shards.iter().enumerate().skip(1) {
            let ls = s.consistency_levels();
            assert_eq!(
                ls, levels,
                "shard {i} advertises different consistency levels"
            );
        }
        let ring = HashRing::new(shards.len() as u32, vnodes, seed);
        let routed = (0..shards.len()).map(|_| AtomicU64::new(0)).collect();
        (ring, levels, routed)
    }

    /// The ring this router places keys with.
    pub fn ring(&self) -> &HashRing {
        &self.inner.ring
    }

    /// The inner binding of shard `idx`.
    pub fn shard(&self, idx: usize) -> &B {
        &self.inner.shards[idx]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Ops routed to each shard so far.
    pub fn routed_per_shard(&self) -> Vec<u64> {
        self.inner
            .routed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Blocks until every pipeline queue is drained and every worker is
    /// idle. A no-op in inline mode.
    ///
    /// Callbacks may chain ops to shards whose workers were already
    /// checked this pass, so passes repeat until one completes with no
    /// new ops routed — only then is "all drained" a true barrier.
    pub fn quiesce(&self) {
        if self.inner.workers.is_empty() {
            return;
        }
        loop {
            let before: u64 = self
                .inner
                .routed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum();
            for w in &self.inner.workers {
                w.quiesce();
            }
            let after: u64 = self
                .inner
                .routed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .sum();
            if after == before {
                return;
            }
        }
    }

    /// Invokes a batch of independent keyed ops, coalescing the per-shard
    /// submissions: jobs are grouped by owning shard and handed to each
    /// shard's worker under one queue-lock acquisition.
    ///
    /// Returns one Correctable per op, in input order.
    pub fn invoke_batch(
        &self,
        ops: Vec<B::Op>,
        selection: &LevelSelection,
    ) -> Vec<Correctable<B::Val>> {
        let levels = match selection.resolve(&self.inner.levels) {
            Ok(ls) if !ls.is_empty() => ls,
            Ok(_) => {
                let err = Error::Unavailable("no consistency level selected".into());
                return ops
                    .iter()
                    .map(|_| Correctable::failed(err.clone()))
                    .collect();
            }
            Err(bad) => {
                return ops
                    .iter()
                    .map(|_| Correctable::failed(Error::UnsupportedLevel(bad)))
                    .collect()
            }
        };
        // One shared level list for the whole batch; each job bumps a
        // refcount instead of cloning a Vec.
        let shared: Arc<[ConsistencyLevel]> = levels.as_slice().into();
        let mut per_shard: Vec<Vec<Job<B>>> =
            (0..self.inner.shards.len()).map(|_| Vec::new()).collect();
        let mut outs = Vec::with_capacity(ops.len());
        for op in ops {
            let idx = self.inner.ring.owner_index(op.object_id());
            self.inner.routed[idx].fetch_add(1, Ordering::Relaxed);
            let (c, handle) = Correctable::pending();
            outs.push(c);
            per_shard[idx].push((
                op,
                Arc::clone(&shared),
                Upcall::for_levels(handle, levels.as_slice()),
            ));
        }
        for (idx, jobs) in per_shard.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            if self.inner.workers.is_empty() {
                for (op, ls, up) in jobs {
                    self.inner.shards[idx].submit(op, &ls, up);
                }
            } else {
                self.inner.workers[idx].submit_many(jobs);
            }
        }
        outs
    }

    /// Multi-get/scatter across all levels: one logical invocation fanned
    /// out to every owning shard, merged with weakest-common-level
    /// semantics (see [`gather`]).
    pub fn scatter(&self, ops: Vec<B::Op>) -> Correctable<Vec<B::Val>> {
        self.scatter_with(ops, &LevelSelection::All)
    }

    /// [`ShardedBinding::scatter`] restricted to selected levels.
    pub fn scatter_with(
        &self,
        ops: Vec<B::Op>,
        selection: &LevelSelection,
    ) -> Correctable<Vec<B::Val>> {
        gather(self.invoke_batch(ops, selection))
    }
}

impl<B> ShardedBinding<B>
where
    B: Binding + Clone + Send + 'static,
    B::Op: KeyedOp + Send + 'static,
{
    /// A router with one batching worker thread per shard (see
    /// [`PipelineConfig`]): the hot submission path costs one lock
    /// acquisition per batch instead of per op, and bounded queues give
    /// backpressure per shard.
    pub fn pipelined(shards: Vec<B>, vnodes: usize, seed: u64, cfg: PipelineConfig) -> Self {
        let (ring, levels, routed) = Self::layout(&shards, vnodes, seed);
        let workers = shards
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let shard = b.clone();
                Worker::spawn(&format!("icg-shard-{i}"), cfg, move |batch: Vec<Job<B>>| {
                    for (op, ls, up) in batch {
                        shard.submit(op, &ls, up);
                    }
                })
            })
            .collect();
        ShardedBinding {
            inner: Arc::new(Inner {
                shards,
                ring,
                levels,
                workers,
                routed,
            }),
        }
    }
}

impl<B: Binding> Binding for ShardedBinding<B>
where
    B::Op: KeyedOp,
{
    type Op = B::Op;
    type Val = B::Val;

    fn consistency_levels(&self) -> LevelSet {
        self.inner.levels.clone()
    }

    fn submit(&self, op: B::Op, levels: &[ConsistencyLevel], upcall: Upcall<B::Val>) {
        let idx = self.inner.ring.owner_index(op.object_id());
        self.inner.routed[idx].fetch_add(1, Ordering::Relaxed);
        if self.inner.workers.is_empty() {
            self.inner.shards[idx].submit(op, levels, upcall);
        } else {
            self.inner.workers[idx].submit((op, levels.into(), upcall));
        }
    }
}

/// Merges many Correctables with **weakest-common-level** semantics:
///
/// - an intermediate view surfaces as soon as *every* part has delivered
///   at least one view, at the weakest level any part currently sits at,
///   and again each time that common floor rises;
/// - the result closes only when every part has delivered its strongest
///   (final) view, at the weakest of the final levels;
/// - the first part error fails the merge.
///
/// This is the multi-shard generalization of a single binding's
/// incremental delivery: the merged view is never claimed stronger than
/// its weakest constituent.
pub fn gather<T: Clone + Send + 'static>(parts: Vec<Correctable<T>>) -> Correctable<Vec<T>> {
    let (out, handle) = Correctable::pending();
    let n = parts.len();
    if n == 0 {
        let _ = handle.close(Vec::new(), ConsistencyLevel::STRONG);
        return out;
    }
    struct GatherState<T> {
        latest: Vec<Option<View<T>>>,
        finals: usize,
        emitted: Option<ConsistencyLevel>,
        /// Emissions decided (in level order) but not yet delivered.
        pending: std::collections::VecDeque<(Vec<T>, ConsistencyLevel, bool)>,
        /// Some thread is draining `pending`; others just enqueue.
        emitting: bool,
    }
    impl<T: Clone> GatherState<T> {
        /// Queues the next emission if the common floor advanced.
        /// Decisions are made (and ordered) under the state lock; actual
        /// delivery happens in [`drain`] with the lock released, so user
        /// callbacks on the merged Correctable never run under it.
        fn advance(&mut self, n: usize) {
            if self.latest.iter().any(|v| v.is_none()) {
                return;
            }
            let floor = self
                .latest
                .iter()
                .map(|v| v.as_ref().expect("checked").level)
                .min()
                .expect("non-empty");
            let closes = self.finals == n;
            if !closes && self.emitted.is_some_and(|e| floor.rank() <= e.rank()) {
                return;
            }
            self.emitted = Some(floor);
            let values = self
                .latest
                .iter()
                .map(|v| v.as_ref().expect("checked").value.clone())
                .collect();
            self.pending.push_back((values, floor, closes));
        }
    }
    /// Delivers queued emissions with the state lock released. A single
    /// active emitter drains FIFO (preserving level order); deliveries
    /// decided re-entrantly from inside an emitted callback are picked up
    /// by the already-running drain instead of recursing into the lock.
    fn drain<T: Clone + Send + 'static>(
        state: &Mutex<GatherState<T>>,
        handle: &correctables::Handle<Vec<T>>,
    ) {
        loop {
            let (values, level, closes) = {
                let mut g = state.lock();
                if g.emitting {
                    return;
                }
                match g.pending.pop_front() {
                    Some(e) => {
                        g.emitting = true;
                        e
                    }
                    None => return,
                }
            };
            if closes {
                let _ = handle.close(values, level);
            } else {
                let _ = handle.update(values, level);
            }
            state.lock().emitting = false;
        }
    }
    let state = Arc::new(Mutex::new(GatherState {
        latest: (0..n).map(|_| None).collect(),
        finals: 0,
        emitted: None,
        pending: std::collections::VecDeque::new(),
        emitting: false,
    }));
    for (i, part) in parts.iter().enumerate() {
        let st = Arc::clone(&state);
        let h = handle.clone();
        part.on_update(move |v: &View<T>| {
            {
                let mut g = st.lock();
                g.latest[i] = Some(v.clone());
                g.advance(n);
            }
            drain(&st, &h);
        });
        let st = Arc::clone(&state);
        let h = handle.clone();
        part.on_final(move |v: &View<T>| {
            {
                let mut g = st.lock();
                g.latest[i] = Some(v.clone());
                g.finals += 1;
                g.advance(n);
            }
            drain(&st, &h);
        });
        let h = handle.clone();
        part.on_error(move |e: &Error| {
            let _ = h.fail(e.clone());
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::ConsistencyLevel;
    const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    use correctables::{Client, State};

    use crate::mem::{KvOp, MemBinding};

    fn sharded(n: usize) -> ShardedBinding<MemBinding> {
        ShardedBinding::inline((0..n).map(|_| MemBinding::default()).collect(), 64, 42)
    }

    #[test]
    fn routes_by_key_and_reemits_levels_unchanged() {
        let s = sharded(4);
        let client = Client::new(s.clone());
        for k in 0..64 {
            client.invoke_strong(KvOp::Put(k, k * 10));
        }
        for k in 0..64 {
            let c = client.invoke(KvOp::Get(k));
            assert_eq!(c.state(), State::Final);
            assert_eq!(c.preliminary_views().len(), 1);
            assert_eq!(c.preliminary_views()[0].level, WEAK);
            let fin = c.final_view().unwrap();
            assert_eq!(fin.level, STRONG);
            assert_eq!(fin.value, k * 10);
        }
        // Keys actually spread over the shards.
        let routed = s.routed_per_shard();
        assert!(routed.iter().all(|&r| r > 0), "unbalanced: {routed:?}");
        assert_eq!(routed.iter().sum::<u64>(), 128);
    }

    #[test]
    fn same_key_always_lands_on_same_shard() {
        let s = sharded(8);
        let client = Client::new(s.clone());
        client.invoke_strong(KvOp::Add(7, 1));
        client.invoke_strong(KvOp::Add(7, 2));
        client.invoke_strong(KvOp::Add(7, 3));
        let c = client.invoke_strong(KvOp::Get(7));
        assert_eq!(c.final_view().unwrap().value, 6);
        // Exactly one shard holds the object.
        let holders = (0..8).filter(|&i| s.shard(i).peek(7).is_some()).count();
        assert_eq!(holders, 1);
    }

    #[test]
    fn pipelined_router_delivers_everything() {
        let s = ShardedBinding::pipelined(
            (0..4).map(|_| MemBinding::default()).collect(),
            64,
            1,
            PipelineConfig {
                queue_cap: 128,
                batch_max: 16,
            },
        );
        let client = Client::new(s.clone());
        let writes: Vec<_> = (0..256)
            .map(|k| client.invoke_strong(KvOp::Add(k, 1)))
            .collect();
        s.quiesce();
        assert!(writes.iter().all(|c| c.state() == State::Final));
        let reads = s.invoke_batch((0..256).map(KvOp::Get).collect(), &LevelSelection::All);
        s.quiesce();
        for (k, c) in reads.iter().enumerate() {
            assert_eq!(c.final_view().unwrap().value, 1, "key {k}");
        }
    }

    #[test]
    fn chained_ops_from_worker_callbacks_do_not_deadlock() {
        use std::time::{Duration, Instant};
        // Tiny queues + per-op drains: maximal pressure on the bound.
        // Each completion chains a follow-up op from inside its callback,
        // which runs on a pipeline worker thread; those submissions must
        // bypass the capacity wait or the fleet deadlocks.
        let s = ShardedBinding::pipelined(
            (0..4).map(|_| MemBinding::default()).collect(),
            64,
            9,
            PipelineConfig {
                queue_cap: 2,
                batch_max: 1,
            },
        );
        let client = std::sync::Arc::new(Client::new(s.clone()));
        let chained = std::sync::Arc::new(Mutex::new(Vec::new()));
        const OPS: u64 = 200;
        for k in 0..OPS {
            let cl = std::sync::Arc::clone(&client);
            let ch = std::sync::Arc::clone(&chained);
            client.invoke_strong(KvOp::Add(k, 1)).on_final(move |_| {
                // Invoke before taking the list lock: a submission may
                // block on backpressure (when this callback runs on the
                // submitting thread), and holding a lock that the other
                // completions' callbacks also take would deadlock the
                // workers that must drain the queues.
                let chained_op = cl.invoke_strong(KvOp::Add(k + 1_000, 1));
                ch.lock().push(chained_op);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let issued = chained.lock().len() as u64;
            if issued == OPS {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "chains stalled at {issued}/{OPS}"
            );
            std::thread::yield_now();
        }
        for c in chained.lock().iter() {
            c.wait_final(Duration::from_secs(30)).expect("chained op");
        }
        assert_eq!(s.routed_per_shard().iter().sum::<u64>(), 2 * OPS);
    }

    #[test]
    fn scatter_closes_at_weakest_common_level() {
        let s = sharded(4);
        for k in 0..16 {
            Client::new(s.clone()).invoke_strong(KvOp::Put(k, 100 + k));
        }
        let c = s.scatter((0..16).map(KvOp::Get).collect());
        assert_eq!(c.state(), State::Final);
        // MemBinding delivers WEAK then STRONG per shard, so the merge
        // surfaces one WEAK common view before closing at STRONG.
        let prelims = c.preliminary_views();
        assert!(!prelims.is_empty());
        assert_eq!(prelims[0].level, WEAK);
        assert!(prelims
            .windows(2)
            .all(|w| w[0].level.rank() < w[1].level.rank()));
        let fin = c.final_view().unwrap();
        assert_eq!(fin.level, STRONG);
        assert_eq!(fin.value, (0..16).map(|k| 100 + k).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_of_nothing_closes_immediately() {
        let s = sharded(2);
        let c = s.scatter(Vec::new());
        assert_eq!(c.final_view().unwrap().value, Vec::<u64>::new());
    }

    #[test]
    fn gather_floor_rises_with_slowest_part() {
        let (a, ha) = Correctable::<u32>::pending();
        let (b, hb) = Correctable::<u32>::pending();
        let g = gather(vec![a, b]);
        ha.update(1, WEAK).unwrap();
        // Only one part has delivered: nothing surfaces yet.
        assert!(g.preliminary_views().is_empty());
        hb.update(2, CAUSAL).unwrap();
        // Both delivered; the common floor is WEAK.
        assert_eq!(g.preliminary_views().len(), 1);
        assert_eq!(g.preliminary_views()[0].level, WEAK);
        assert_eq!(g.preliminary_views()[0].value, vec![1, 2]);
        ha.update(3, CAUSAL).unwrap();
        // Floor rises to CAUSAL.
        assert_eq!(g.preliminary_views().len(), 2);
        assert_eq!(g.preliminary_views()[1].level, CAUSAL);
        ha.close(4, STRONG).unwrap();
        // One part final, the other not: still open.
        assert_eq!(g.state(), State::Updating);
        hb.close(5, STRONG).unwrap();
        let fin = g.final_view().unwrap();
        assert_eq!(fin.level, STRONG);
        assert_eq!(fin.value, vec![4, 5]);
    }

    #[test]
    fn quiesce_is_a_barrier_for_cross_shard_chained_ops() {
        // Callbacks running on one shard's worker chain ops to other
        // shards, possibly ones quiesce already checked that pass;
        // quiesce must still not return until those chains resolved.
        for round in 0..20 {
            let s = ShardedBinding::pipelined(
                (0..4).map(|_| MemBinding::default()).collect(),
                64,
                round,
                PipelineConfig {
                    queue_cap: 8,
                    batch_max: 2,
                },
            );
            let client = std::sync::Arc::new(Client::new(s.clone()));
            let chained = std::sync::Arc::new(Mutex::new(Vec::new()));
            const OPS: u64 = 64;
            for k in 0..OPS {
                let cl = std::sync::Arc::clone(&client);
                let ch = std::sync::Arc::clone(&chained);
                client.invoke_strong(KvOp::Add(k, 1)).on_final(move |_| {
                    let follow = cl.invoke_strong(KvOp::Add(OPS + (k * 31) % 256, 1));
                    ch.lock().push(follow);
                });
            }
            s.quiesce();
            let chained = chained.lock();
            assert_eq!(chained.len() as u64, OPS, "round {round}");
            for (i, c) in chained.iter().enumerate() {
                assert_eq!(
                    c.state(),
                    State::Final,
                    "round {round}: chained op {i} still pending after quiesce"
                );
            }
        }
    }

    #[test]
    fn gather_reentrant_delivery_from_merged_callback_is_safe() {
        // A callback on the merged Correctable that synchronously drives
        // more deliveries into the gather's own parts must not deadlock
        // (the merge lock is never held while user callbacks run) and the
        // merged views must stay in level order.
        let (a, ha) = Correctable::<u32>::pending();
        let (b, hb) = Correctable::<u32>::pending();
        let g = gather(vec![a, b]);
        let ha2 = ha.clone();
        let hb2 = hb.clone();
        g.on_update(move |v| {
            if v.level == WEAK {
                // Raise both parts to CAUSAL from inside the emission.
                let _ = ha2.update(30, CAUSAL);
                let _ = hb2.update(40, CAUSAL);
            }
        });
        ha.update(1, WEAK).unwrap();
        hb.update(2, WEAK).unwrap();
        // The WEAK emission triggered the CAUSAL round re-entrantly.
        let prelims = g.preliminary_views();
        assert_eq!(prelims.len(), 2);
        assert_eq!(prelims[0].level, WEAK);
        assert_eq!(prelims[0].value, vec![1, 2]);
        assert_eq!(prelims[1].level, CAUSAL);
        assert_eq!(prelims[1].value, vec![30, 40]);
        ha.close(5, STRONG).unwrap();
        hb.close(6, STRONG).unwrap();
        assert_eq!(g.final_view().unwrap().value, vec![5, 6]);
    }

    #[test]
    fn gather_close_level_is_weakest_final() {
        let (a, ha) = Correctable::<u32>::pending();
        let (b, hb) = Correctable::<u32>::pending();
        let g = gather(vec![a, b]);
        ha.close(1, STRONG).unwrap();
        hb.close(2, CAUSAL).unwrap();
        assert_eq!(g.final_view().unwrap().level, CAUSAL);
    }

    #[test]
    fn gather_fails_on_first_part_error() {
        let (a, ha) = Correctable::<u32>::pending();
        let (b, _hb) = Correctable::<u32>::pending();
        let g = gather(vec![a, b]);
        ha.fail(Error::Timeout).unwrap();
        assert_eq!(g.state(), State::Error);
    }

    #[test]
    fn mismatched_shard_levels_are_rejected() {
        let ok = MemBinding::default();
        let weak_only = MemBinding::weak_only();
        let r = std::panic::catch_unwind(|| ShardedBinding::inline(vec![ok, weak_only], 8, 0));
        assert!(r.is_err());
    }
}
