//! The batching pipeline: per-shard worker threads behind bounded
//! submission queues.
//!
//! Routing an op through a [`Worker`] replaces the per-op cost of the
//! submission path (queue lock, wakeup, inner-binding dispatch) with a
//! per-*batch* cost: the worker drains up to
//! [`PipelineConfig::batch_max`] jobs under one lock acquisition and
//! executes them back to back, and [`Worker::submit_many`] pushes a whole
//! producer-side batch under one lock acquisition too. Queues are
//! bounded ([`PipelineConfig::queue_cap`]) so a slow shard exerts
//! backpressure on its producers instead of growing without bound.
//!
//! One exception to the bound: submissions issued *from a pipeline
//! worker thread* (ops chained from inside upcall callbacks — e.g. a
//! speculation chain) skip the capacity wait. A worker must never block
//! on a full queue — its own, or a sibling's in a cycle of full queues —
//! because the only threads that drain those queues are the workers
//! themselves; blocking one would deadlock the fleet. The queue may
//! therefore transiently exceed `queue_cap` by the number of in-flight
//! chained ops.
//!
//! The bypass cannot protect submissions from callbacks running on
//! *other* threads: a submit there may block on backpressure like any
//! producer, so never hold a lock that other completions' callbacks also
//! take while submitting (acquire such locks only after the submit call
//! returns).

use std::cell::Cell;
use std::collections::VecDeque;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

thread_local! {
    /// Whether the current thread is a pipeline worker (set once at
    /// worker startup, never cleared).
    static ON_PIPELINE_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn on_pipeline_worker() -> bool {
    ON_PIPELINE_WORKER.with(Cell::get)
}

/// Tuning of one shard worker.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Bound on the submission queue; submitters block when it is full.
    pub queue_cap: usize,
    /// Most jobs drained (and executed) per queue-lock acquisition.
    pub batch_max: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            queue_cap: 1024,
            batch_max: 64,
        }
    }
}

struct Queue<J> {
    jobs: VecDeque<J>,
    /// The worker is between draining a batch and finishing its execution.
    busy: bool,
    closed: bool,
}

struct Shared<J> {
    queue: Mutex<Queue<J>>,
    not_empty: Condvar,
    not_full: Condvar,
    idle: Condvar,
}

/// One worker thread draining a bounded job queue in batches.
pub struct Worker<J> {
    shared: std::sync::Arc<Shared<J>>,
    thread: Option<JoinHandle<()>>,
    cfg: PipelineConfig,
}

impl<J: Send + 'static> Worker<J> {
    /// Spawns a worker; `exec` runs each drained batch (jobs in
    /// submission order) on the worker thread.
    ///
    /// # Panics
    ///
    /// Panics if `queue_cap` or `batch_max` is zero, or the OS refuses
    /// the thread.
    pub fn spawn(
        name: &str,
        cfg: PipelineConfig,
        mut exec: impl FnMut(Vec<J>) + Send + 'static,
    ) -> Worker<J> {
        assert!(
            cfg.queue_cap > 0 && cfg.batch_max > 0,
            "degenerate pipeline config"
        );
        let shared = std::sync::Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::with_capacity(cfg.queue_cap.min(4096)),
                busy: false,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            idle: Condvar::new(),
        });
        let worker = std::sync::Arc::clone(&shared);
        let batch_max = cfg.batch_max;
        let thread = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                ON_PIPELINE_WORKER.with(|w| w.set(true));
                loop {
                    let batch: Vec<J> = {
                        let mut q = worker.queue.lock();
                        loop {
                            if !q.jobs.is_empty() {
                                break;
                            }
                            q.busy = false;
                            worker.idle.notify_all();
                            if q.closed {
                                return;
                            }
                            worker.not_empty.wait(&mut q);
                        }
                        q.busy = true;
                        let n = q.jobs.len().min(batch_max);
                        q.jobs.drain(..n).collect()
                    };
                    worker.not_full.notify_all();
                    exec(batch);
                }
            })
            .expect("spawn shard worker thread");
        Worker {
            shared,
            thread: Some(thread),
            cfg,
        }
    }
}

impl<J> Worker<J> {
    /// Enqueues one job, blocking while the queue is full — except from a
    /// pipeline worker thread, which skips the capacity wait (see the
    /// module docs: a blocked worker could never be drained).
    pub fn submit(&self, job: J) {
        let mut q = self.shared.queue.lock();
        if !on_pipeline_worker() {
            while q.jobs.len() >= self.cfg.queue_cap {
                self.shared.not_full.wait(&mut q);
            }
        }
        q.jobs.push_back(job);
        drop(q);
        self.shared.not_empty.notify_one();
    }

    /// Enqueues a whole batch under (at most) one lock acquisition per
    /// `queue_cap` jobs — the producer-side half of batching. Worker
    /// threads skip the capacity wait, as in [`Worker::submit`].
    pub fn submit_many(&self, jobs: impl IntoIterator<Item = J>) {
        let mut it = jobs.into_iter();
        // Pull the next job before checking capacity: an exhausted
        // iterator must return immediately, never wait for room it
        // doesn't need.
        let Some(mut next) = it.next() else {
            return;
        };
        let mut q = self.shared.queue.lock();
        if on_pipeline_worker() {
            q.jobs.push_back(next);
            q.jobs.extend(it);
            drop(q);
            self.shared.not_empty.notify_one();
            return;
        }
        loop {
            let mut pushed = false;
            while q.jobs.len() < self.cfg.queue_cap {
                q.jobs.push_back(next);
                pushed = true;
                match it.next() {
                    Some(j) => next = j,
                    None => {
                        drop(q);
                        self.shared.not_empty.notify_one();
                        return;
                    }
                }
            }
            // Queue full mid-batch: wake the worker, wait for room.
            if pushed {
                self.shared.not_empty.notify_one();
            }
            self.shared.not_full.wait(&mut q);
        }
    }

    /// Blocks until the queue is empty and the worker is not executing a
    /// batch. Jobs submitted after quiesce returns are unaffected.
    pub fn quiesce(&self) {
        let mut q = self.shared.queue.lock();
        while !q.jobs.is_empty() || q.busy {
            self.shared.idle.wait(&mut q);
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().jobs.len()
    }
}

impl<J> Drop for Worker<J> {
    fn drop(&mut self) {
        self.shared.queue.lock().closed = true;
        self.shared.not_empty.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_every_job_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = Arc::clone(&log);
        let w = Worker::spawn("t", PipelineConfig::default(), move |batch: Vec<u32>| {
            l.lock().extend(batch);
        });
        for i in 0..500 {
            w.submit(i);
        }
        w.quiesce();
        assert_eq!(*log.lock(), (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn drains_in_batches_bounded_by_batch_max() {
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&sizes);
        let cfg = PipelineConfig {
            queue_cap: 256,
            batch_max: 16,
        };
        let w = Worker::spawn("t", cfg, move |batch: Vec<u32>| {
            s.lock().push(batch.len());
            // Let the queue refill so later drains see full batches.
            std::thread::sleep(std::time::Duration::from_micros(200));
        });
        w.submit_many(0..200u32);
        w.quiesce();
        let sizes: Vec<usize> = sizes.lock().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 200);
        assert!(sizes.iter().all(|&n| n <= 16), "batch too big: {sizes:?}");
        assert!(sizes.iter().any(|&n| n > 1), "never coalesced: {sizes:?}");
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let cfg = PipelineConfig {
            queue_cap: 8,
            batch_max: 4,
        };
        let w = Worker::spawn("t", cfg, move |batch: Vec<u32>| {
            std::thread::sleep(std::time::Duration::from_micros(100));
            d.fetch_add(batch.len(), Ordering::SeqCst);
        });
        // 10× the queue bound: submitters must block-and-resume, never
        // panic or drop jobs.
        w.submit_many(0..80u32);
        w.quiesce();
        assert_eq!(done.load(Ordering::SeqCst), 80);
    }

    #[test]
    fn submit_many_of_nothing_returns_despite_full_queue() {
        let cfg = PipelineConfig {
            queue_cap: 2,
            batch_max: 1,
        };
        let w = Worker::spawn("t", cfg, move |_: Vec<u32>| {
            std::thread::sleep(std::time::Duration::from_millis(500));
        });
        // First job occupies the worker; two more fill the queue to cap.
        w.submit_many(0..3u32);
        let t0 = std::time::Instant::now();
        w.submit_many(std::iter::empty());
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(400),
            "empty batch waited for a drain cycle"
        );
        w.quiesce();
    }

    #[test]
    fn drop_joins_after_finishing_queued_work() {
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let w = Worker::spawn("t", PipelineConfig::default(), move |batch: Vec<u32>| {
            d.fetch_add(batch.len(), Ordering::SeqCst);
        });
        for i in 0..100 {
            w.submit(i);
        }
        drop(w);
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }
}
