//! A minimal in-memory single-shard counter store.
//!
//! This is the reference backend for the router: synchronous, threaded,
//! and cheap enough that `micro_shard` measures the *routing and
//! batching* cost rather than storage latency. It advertises `Weak` and
//! `Strong` and delivers both synchronously from the same state — the
//! point of this binding is exercising the sharding layer's mechanics
//! (routing, pipelining, scatter merges), not modeling staleness; the
//! simulated substrates do that.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, KeyedOp, LevelSet, ObjectId, Upcall};

/// Operations of the in-memory counter store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Read a counter (absent counters read 0).
    Get(u64),
    /// Overwrite a counter.
    Put(u64, u64),
    /// Increment a counter, returning the new value.
    Add(u64, u64),
}

impl KeyedOp for KvOp {
    fn object_id(&self) -> ObjectId {
        match self {
            KvOp::Get(k) | KvOp::Put(k, _) | KvOp::Add(k, _) => ObjectId(*k),
        }
    }
}

/// One shard's worth of counters behind a single lock.
#[derive(Clone, Default)]
pub struct MemBinding {
    map: Arc<Mutex<HashMap<u64, u64>>>,
    weak_only: bool,
}

impl MemBinding {
    /// A degenerate variant advertising only `Weak` (router level-set
    /// validation tests).
    pub fn weak_only() -> MemBinding {
        MemBinding {
            map: Arc::default(),
            weak_only: true,
        }
    }

    /// Direct state inspection: the counter's value, if present.
    pub fn peek(&self, key: u64) -> Option<u64> {
        self.map.lock().get(&key).copied()
    }

    /// Number of counters this shard holds.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether this shard holds no counters.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

impl Binding for MemBinding {
    type Op = KvOp;
    type Val = u64;

    fn consistency_levels(&self) -> LevelSet {
        if self.weak_only {
            LevelSet::of(&[ConsistencyLevel::WEAK])
        } else {
            LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
        }
    }

    fn submit(&self, op: KvOp, levels: &[ConsistencyLevel], upcall: Upcall<u64>) {
        // Compute under the store lock, deliver after dropping it —
        // upcall deliveries run user callbacks.
        let value = {
            let mut m = self.map.lock();
            match op {
                KvOp::Get(k) => m.get(&k).copied().unwrap_or(0),
                KvOp::Put(k, v) => {
                    m.insert(k, v);
                    v
                }
                KvOp::Add(k, d) => {
                    let e = m.entry(k).or_insert(0);
                    *e = e.wrapping_add(d);
                    *e
                }
            }
        };
        for l in levels {
            upcall.deliver(value, *l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::{Client, State};

    #[test]
    fn counter_semantics() {
        let b = MemBinding::default();
        let client = Client::new(b.clone());
        assert_eq!(
            client
                .invoke_strong(KvOp::Get(1))
                .final_view()
                .unwrap()
                .value,
            0
        );
        client.invoke_strong(KvOp::Add(1, 5));
        client.invoke_strong(KvOp::Add(1, 2));
        assert_eq!(
            client
                .invoke_strong(KvOp::Get(1))
                .final_view()
                .unwrap()
                .value,
            7
        );
        client.invoke_strong(KvOp::Put(1, 100));
        assert_eq!(b.peek(1), Some(100));
    }

    #[test]
    fn icg_invoke_delivers_weak_then_strong() {
        let client = Client::new(MemBinding::default());
        let c = client.invoke(KvOp::Add(3, 4));
        assert_eq!(c.state(), State::Final);
        assert_eq!(c.preliminary_views().len(), 1);
        assert_eq!(c.preliminary_views()[0].level, ConsistencyLevel::WEAK);
        assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::STRONG);
        assert_eq!(c.final_view().unwrap().value, 4);
    }

    #[test]
    fn keyed_op_reports_its_key() {
        assert_eq!(KvOp::Get(9).object_id(), ObjectId(9));
        assert_eq!(KvOp::Put(9, 1).object_id(), ObjectId(9));
        assert_eq!(KvOp::Add(9, 1).object_id(), ObjectId(9));
    }
}
