//! Property tests of the consistent-hash ring: deterministic lookups and
//! bounded key movement when the shard set grows — the two properties the
//! `icg-shard` acceptance criteria pin down.

use proptest::prelude::*;

use correctables::ObjectId;
use icg_shard::{HashRing, RebalancePlan, ShardId};

proptest! {
    /// Two rings built from the same `(shards, vnodes, seed)` agree on
    /// the owner of every key — placement is a pure function, so any
    /// router replica (or a rebuilt router) computes identical routing.
    #[test]
    fn lookups_are_deterministic(
        shards in 1u32..12,
        vnodes in 1usize..96,
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 64),
    ) {
        let a = HashRing::new(shards, vnodes, seed);
        let b = HashRing::new(shards, vnodes, seed);
        for k in keys {
            prop_assert_eq!(a.owner(ObjectId(k)), b.owner(ObjectId(k)));
        }
    }

    /// Adding one shard to an `n`-shard ring moves at most `2/(n+1)` of
    /// sampled keys (expectation is `1/(n+1)`), and every moved key moves
    /// *to* the new shard — consistent hashing's bounded-disruption
    /// guarantee.
    #[test]
    fn adding_a_shard_moves_bounded_keys(
        shards in 2u32..10,
        seed in any::<u64>(),
        key_base in any::<u64>(),
    ) {
        const SAMPLES: u64 = 4096;
        const VNODES: usize = 128;
        let old = HashRing::new(shards, VNODES, seed);
        let new = old.with_added(ShardId(shards));
        let mut moved = 0u64;
        for i in 0..SAMPLES {
            let key = ObjectId(key_base.wrapping_add(i));
            let (o, n) = (old.owner(key), new.owner(key));
            if o != n {
                moved += 1;
                prop_assert_eq!(n, ShardId(shards), "moved to an old shard");
            }
        }
        let bound = 2.0 / f64::from(shards + 1);
        let frac = moved as f64 / SAMPLES as f64;
        prop_assert!(
            frac <= bound,
            "moved {frac:.4} of keys, bound {bound:.4} ({shards} shards)"
        );
        // The plan's analytic fraction respects the same bound and
        // classifies every sampled key correctly.
        let plan = RebalancePlan::diff(&old, &new);
        prop_assert!(plan.moved_fraction() <= bound);
        for i in 0..256 {
            let key = ObjectId(key_base.wrapping_add(i));
            prop_assert_eq!(
                plan.moves_key(&old, key),
                old.owner(key) != new.owner(key)
            );
        }
    }

    /// Removing the shard that was just added restores the original
    /// placement exactly (membership changes are reversible).
    #[test]
    fn membership_changes_are_reversible(
        shards in 1u32..8,
        vnodes in 1usize..64,
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 64),
    ) {
        let base = HashRing::new(shards, vnodes, seed);
        let grown = base.with_added(ShardId(shards));
        let ids: Vec<ShardId> = (0..shards).map(ShardId).collect();
        let shrunk = HashRing::with_shards(&ids, vnodes, seed);
        for k in keys {
            prop_assert_eq!(base.owner(ObjectId(k)), shrunk.owner(ObjectId(k)));
        }
        // And the grown ring still exists independently.
        prop_assert_eq!(grown.shards().len() as u32, shards + 1);
    }
}
