//! Property-based tests of the znode tree and queue determinism — the
//! foundations of Zab's state-machine replication.

use proptest::prelude::*;

use consensusq::{seq_of, Txn, TxnResult, ZnodeTree};

#[derive(Clone, Debug)]
enum QOp {
    Enqueue(u32),
    Pop,
    DeleteHead,
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        3 => (1u32..64).prop_map(QOp::Enqueue),
        2 => Just(QOp::Pop),
        1 => Just(QOp::DeleteHead),
    ]
}

fn to_txns(ops: &[QOp], tree: &mut ZnodeTree) -> Vec<TxnResult> {
    let mut out = Vec::new();
    for op in ops {
        let txn = match op {
            QOp::Enqueue(len) => Txn::CreateSeq {
                parent: "/q".into(),
                prefix: "qn-".into(),
                data_len: *len,
            },
            QOp::Pop => Txn::PopMin {
                parent: "/q".into(),
            },
            QOp::DeleteHead => match tree.min_child("/q") {
                Some(name) => Txn::Delete {
                    path: consensusq::join_path("/q", &name),
                },
                None => Txn::PopMin {
                    parent: "/q".into(),
                },
            },
        };
        out.push(tree.apply(&txn));
    }
    out
}

proptest! {
    /// Replicas applying the same operation sequence produce identical
    /// results and identical trees (determinism — the Zab prerequisite).
    #[test]
    fn identical_sequences_identical_state(ops in proptest::collection::vec(qop(), 0..80)) {
        let mut a = ZnodeTree::new();
        let mut b = ZnodeTree::new();
        let ra = to_txns(&ops, &mut a);
        let rb = to_txns(&ops, &mut b);
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a.children_of("/q"), b.children_of("/q"));
    }

    /// The queue is FIFO: pops return elements in creation order, and
    /// sequence numbers are unique and increasing.
    #[test]
    fn queue_is_fifo_with_unique_sequence_numbers(
        enqueues in 1u64..50,
        pops in 0u64..60,
    ) {
        let mut t = ZnodeTree::new();
        let mut created = Vec::new();
        for _ in 0..enqueues {
            match t.apply(&Txn::CreateSeq {
                parent: "/q".into(),
                prefix: "qn-".into(),
                data_len: 8,
            }) {
                TxnResult::Created { name } => created.push(name),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
        // Unique, strictly increasing sequence numbers.
        let seqs: Vec<u64> = created.iter().map(|n| seq_of(n).unwrap()).collect();
        for w in seqs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let mut popped = Vec::new();
        for _ in 0..pops {
            if let TxnResult::Popped { name: Some(n), .. } =
                t.apply(&Txn::PopMin { parent: "/q".into() })
            {
                popped.push(n);
            }
        }
        let expect: Vec<String> =
            created.iter().take(popped.len()).cloned().collect();
        prop_assert_eq!(popped, expect, "pops must be FIFO");
    }

    /// `simulate` never mutates and always predicts what `apply` would
    /// return on an otherwise-quiescent tree.
    #[test]
    fn simulate_is_a_pure_predictor(ops in proptest::collection::vec(qop(), 0..40)) {
        let mut t = ZnodeTree::new();
        let _ = to_txns(&ops, &mut t);
        let probe = Txn::PopMin { parent: "/q".into() };
        let before = t.children_of("/q");
        let predicted = t.simulate(&probe);
        prop_assert_eq!(t.children_of("/q"), before, "simulate mutated the tree");
        let actual = t.apply(&probe);
        prop_assert_eq!(predicted, actual);
    }

    /// Element count bookkeeping: enqueues minus successful pops equals
    /// the residual child count.
    #[test]
    fn conservation_of_elements(ops in proptest::collection::vec(qop(), 0..100)) {
        let mut t = ZnodeTree::new();
        let results = to_txns(&ops, &mut t);
        let mut created = 0i64;
        let mut removed = 0i64;
        for r in &results {
            match r {
                TxnResult::Created { .. } => created += 1,
                TxnResult::Popped { name: Some(_), .. } => removed += 1,
                TxnResult::Deleted => removed += 1,
                _ => {}
            }
        }
        prop_assert_eq!(t.child_count("/q") as i64, created - removed);
    }
}
