//! Adversarial-ordering tests of the Zab apply path: proposals and
//! commits may arrive in any order (the simulator's jittered links do not
//! guarantee FIFO), and servers must still apply transactions in strict
//! zxid order.

use std::any::Any;

use consensusq::{Msg, OpId, Server, ServerConfig, Txn};
use simnet::{Ctx, Engine, Node, NodeId, SimDuration, SiteId, Topology};

/// Absorbs replies (plays the leader/client roles).
struct Sink;
impl Node<Msg> for Sink {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn enqueue_txn() -> Txn {
    Txn::CreateSeq {
        parent: "/q".into(),
        prefix: "qn-".into(),
        data_len: 8,
    }
}

fn setup() -> (Engine<Msg>, NodeId, NodeId) {
    let topo = Topology::single_site();
    let mut eng = Engine::new(topo, 5);
    let follower = eng.add_node(SiteId(0), Box::new(Server::new(ServerConfig::default())));
    let sink = eng.add_node(SiteId(0), Box::new(Sink));
    // The sink impersonates the leader; the follower only needs to know
    // where to send acks.
    eng.node_as::<Server>(follower)
        .set_membership(sink, vec![sink]);
    (eng, follower, sink)
}

fn ms(x: u64) -> SimDuration {
    SimDuration::from_millis(x)
}

#[test]
fn commit_arriving_before_proposal_is_buffered() {
    let (mut eng, follower, sink) = setup();
    let op = OpId {
        client: sink,
        seq: 1,
    };
    // Commit first, proposal later.
    eng.schedule_message(sink, follower, ms(1), Msg::Commit { zxid: 1 });
    eng.schedule_message(
        sink,
        follower,
        ms(10),
        Msg::Propose {
            zxid: 1,
            txn: enqueue_txn(),
            origin: sink,
            op,
        },
    );
    eng.run_until(simnet::SimTime::ZERO + ms(5));
    assert_eq!(
        eng.node_as::<Server>(follower).applied_count,
        0,
        "must not apply before the proposal arrives"
    );
    eng.run_until_idle(1_000);
    let s = eng.node_as::<Server>(follower);
    assert_eq!(s.applied_count, 1);
    assert_eq!(s.tree.child_count("/q"), 1);
}

#[test]
fn out_of_order_zxids_apply_in_order() {
    let (mut eng, follower, sink) = setup();
    // Proposals 1..=4 and commits, all shuffled in delivery time; the
    // state machine must end identical to in-order application.
    let schedule = [
        (3u64, 1u64, true), // (zxid, at_ms, is_proposal)
        (1, 2, false),
        (4, 3, true),
        (2, 4, false),
        (2, 5, true),
        (4, 6, false),
        (1, 7, true),
        (3, 8, false),
    ];
    for (zxid, at, is_proposal) in schedule {
        let msg = if is_proposal {
            Msg::Propose {
                zxid,
                txn: enqueue_txn(),
                origin: sink,
                op: OpId {
                    client: sink,
                    seq: zxid,
                },
            }
        } else {
            Msg::Commit { zxid }
        };
        eng.schedule_message(sink, follower, ms(at), msg);
    }
    eng.run_until_idle(10_000);
    let s = eng.node_as::<Server>(follower);
    assert_eq!(s.applied_count, 4);
    // Sequential names prove in-order application.
    assert_eq!(
        s.tree.children_of("/q"),
        vec![
            "qn-0000000000".to_string(),
            "qn-0000000001".to_string(),
            "qn-0000000002".to_string(),
            "qn-0000000003".to_string(),
        ]
    );
}

#[test]
fn gap_in_commits_stalls_later_transactions() {
    let (mut eng, follower, sink) = setup();
    for zxid in 1..=3u64 {
        eng.schedule_message(
            sink,
            follower,
            ms(zxid),
            Msg::Propose {
                zxid,
                txn: enqueue_txn(),
                origin: sink,
                op: OpId {
                    client: sink,
                    seq: zxid,
                },
            },
        );
    }
    // Commit only 2 and 3; 1 is missing.
    eng.schedule_message(sink, follower, ms(10), Msg::Commit { zxid: 2 });
    eng.schedule_message(sink, follower, ms(11), Msg::Commit { zxid: 3 });
    eng.run_until_idle(10_000);
    assert_eq!(
        eng.node_as::<Server>(follower).applied_count,
        0,
        "nothing may apply past a commit gap"
    );
    // The missing commit unblocks everything, in order.
    eng.schedule_message(sink, follower, ms(1), Msg::Commit { zxid: 1 });
    eng.run_until_idle(10_000);
    assert_eq!(eng.node_as::<Server>(follower).applied_count, 3);
}
