//! The Correctables binding for replicated queues (the paper's "CZK
//! binding", §5.2).
//!
//! Levels:
//!
//! - `Weak` — the result of *simulating* the operation on the connected
//!   server's local state (§4.3: "a weakly consistent result of an
//!   operation \[is\] the outcome of simulating that operation on the local
//!   state of a single replica");
//! - `Strong` — the result after Zab coordination (atomic semantics).
//!
//! `invoke(dequeue)` therefore yields the quick local prediction followed
//! by the atomically popped element — exactly what Listing 5's ticket
//! seller consumes. As with the quorum-store binding, `submit` enqueues
//! work and [`SimQueue::settle`] drives the simulation; nested submissions
//! from callbacks are picked up at the correct virtual instant.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, Error, LevelSet, Upcall};
use simnet::{Ctx, Faults, Node, NodeId, SimDuration, SimTime, SiteId, Timer, Topology};

use crate::cluster::ZkCluster;
use crate::messages::Msg;
use crate::server::ServerConfig;
use crate::types::{OpId, ReadCmd, ReadResult, Txn, TxnResult};

/// Queue operations accepted by the binding.
#[derive(Clone, Debug)]
pub enum QueueOp {
    /// Append an element of the given payload size.
    Enqueue {
        /// Payload size in bytes.
        data_len: u32,
    },
    /// Remove the head element.
    Dequeue,
}

/// The application-visible result of a queue operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueView {
    /// The element's name (created or dequeued); `None` = empty queue.
    pub name: Option<String>,
    /// Elements remaining after the operation (dequeues only; the
    /// element's queue position for enqueues).
    pub remaining: u64,
}

impl QueueView {
    fn from_txn(result: &TxnResult) -> QueueView {
        match result {
            TxnResult::Created { name } => QueueView {
                name: Some(name.clone()),
                remaining: crate::types::seq_of(name).unwrap_or(0),
            },
            TxnResult::Popped { name, remaining } => QueueView {
                name: name.clone(),
                remaining: *remaining,
            },
            TxnResult::Deleted | TxnResult::Err(_) => QueueView {
                name: None,
                remaining: 0,
            },
        }
    }
}

struct Queued {
    op: QueueOp,
    upcall: Upcall<QueueView>,
    weak: bool,
    strong: bool,
}

type OpQueue = Arc<Mutex<VecDeque<Queued>>>;

struct GwPending {
    upcall: Upcall<QueueView>,
    start: SimTime,
    prelim_at: Option<SimTime>,
}

/// Timing of one completed gateway operation, in virtual milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct QueueTiming {
    /// When the preliminary view arrived.
    pub prelim_ms: Option<f64>,
    /// When the final view arrived.
    pub final_ms: f64,
}

type Timings = Arc<Mutex<Vec<QueueTiming>>>;

const KICK: u64 = u64::MAX - 1;

struct Gateway {
    server: NodeId,
    parent: String,
    queue: OpQueue,
    timings: Timings,
    next_seq: u64,
    pending: HashMap<OpId, GwPending>,
    /// Client-side deadline per operation; `None` waits forever (the
    /// fault-free default). Fault-injected runs set it so lost replies
    /// fail the Correctable instead of wedging `settle`.
    client_timeout: Option<SimDuration>,
    timer_ops: HashMap<u64, OpId>,
    next_timer: u64,
}

impl Gateway {
    fn arm_client_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId) {
        if let Some(d) = self.client_timeout {
            let token = self.next_timer;
            self.next_timer += 1;
            self.timer_ops.insert(token, op);
            ctx.set_timer(d, Timer(token));
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            let op = OpId {
                client: ctx.id(),
                seq: self.next_seq,
            };
            self.next_seq += 1;
            let txn = match q.op {
                QueueOp::Enqueue { data_len } => Txn::CreateSeq {
                    parent: self.parent.clone(),
                    prefix: "qn-".to_string(),
                    data_len,
                },
                QueueOp::Dequeue => Txn::PopMin {
                    parent: self.parent.clone(),
                },
            };
            if !q.strong {
                // Weak-only: a pure local peek, no coordination at all.
                let cmd = match q.op {
                    QueueOp::Enqueue { .. } => ReadCmd::GetHead {
                        parent: self.parent.clone(),
                    },
                    QueueOp::Dequeue => ReadCmd::GetHead {
                        parent: self.parent.clone(),
                    },
                };
                self.pending.insert(
                    op,
                    GwPending {
                        upcall: q.upcall,
                        start: ctx.now(),
                        prelim_at: None,
                    },
                );
                self.arm_client_timeout(ctx, op);
                ctx.send(self.server, Msg::Read { op, cmd });
                continue;
            }
            self.pending.insert(
                op,
                GwPending {
                    upcall: q.upcall,
                    start: ctx.now(),
                    prelim_at: None,
                },
            );
            self.arm_client_timeout(ctx, op);
            ctx.send(
                self.server,
                Msg::Submit {
                    op,
                    txn,
                    prelim: q.weak,
                },
            );
        }
    }
}

impl Node<Msg> for Gateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::PrelimResp { op, result } => {
                if let Some(p) = self.pending.get_mut(&op) {
                    p.prelim_at = Some(ctx.now());
                    let up = p.upcall.clone();
                    up.deliver(QueueView::from_txn(&result), ConsistencyLevel::WEAK);
                }
            }
            Msg::FinalResp { op, result } => {
                if let Some(p) = self.pending.remove(&op) {
                    self.timings.lock().push(QueueTiming {
                        prelim_ms: p.prelim_at.map(|t| t.since(p.start).as_millis_f64()),
                        final_ms: ctx.now().since(p.start).as_millis_f64(),
                    });
                    p.upcall
                        .deliver(QueueView::from_txn(&result), ConsistencyLevel::STRONG);
                }
            }
            Msg::ReadResp { op, result } => {
                if let Some(p) = self.pending.remove(&op) {
                    let view = match result {
                        ReadResult::Head { name, count } => QueueView {
                            name,
                            remaining: count.saturating_sub(1),
                        },
                        ReadResult::Children(names) => {
                            let count = names.len() as u64;
                            QueueView {
                                name: names.into_iter().next(),
                                remaining: count.saturating_sub(1),
                            }
                        }
                    };
                    self.timings.lock().push(QueueTiming {
                        prelim_ms: None,
                        final_ms: ctx.now().since(p.start).as_millis_f64(),
                    });
                    p.upcall.deliver(view, ConsistencyLevel::WEAK);
                }
            }
            _ => {}
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == KICK {
            self.drain(ctx);
        } else if let Some(op) = self.timer_ops.remove(&timer.0) {
            if let Some(p) = self.pending.remove(&op) {
                p.upcall.fail(Error::Timeout);
            }
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct QState {
    cluster: ZkCluster,
    gateway: NodeId,
}

/// A simulated replicated queue with a Correctables binding.
#[derive(Clone)]
pub struct SimQueue {
    state: Arc<Mutex<QState>>,
    queue: OpQueue,
    timings: Timings,
}

impl SimQueue {
    /// Builds the paper's FRK/IRL/VRG ensemble with the leader at
    /// `leader_site` and the client gateway at `client_site`, connected to
    /// the server at `connect_site`.
    ///
    /// # Panics
    ///
    /// Panics if any site name is unknown.
    pub fn ec2(
        cfg: ServerConfig,
        leader_site: &str,
        client_site: &str,
        connect_site: &str,
        seed: u64,
    ) -> SimQueue {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = ["FRK", "IRL", "VRG"];
        let leader_idx = sites
            .iter()
            .position(|s| *s == leader_site)
            .expect("known leader site");
        let connect_idx = sites
            .iter()
            .position(|s| *s == connect_site)
            .expect("known connect site");
        let client_site_id = topo.site_named(client_site).expect("known client site");
        let mut cluster = ZkCluster::build(topo, &sites, leader_idx, cfg, seed);
        let queue: OpQueue = Arc::new(Mutex::new(VecDeque::new()));
        let timings: Timings = Arc::new(Mutex::new(Vec::new()));
        let server = cluster.servers[connect_idx];
        let gateway = cluster.engine.add_node(
            client_site_id,
            Box::new(Gateway {
                server,
                parent: "/q".to_string(),
                queue: Arc::clone(&queue),
                timings: Arc::clone(&timings),
                next_seq: 0,
                pending: HashMap::new(),
                client_timeout: None,
                timer_ops: HashMap::new(),
                next_timer: 0,
            }),
        );
        SimQueue {
            state: Arc::new(Mutex::new(QState { cluster, gateway })),
            queue,
            timings,
        }
    }

    /// The Correctables binding.
    pub fn binding(&self) -> QueueBinding {
        QueueBinding { q: self.clone() }
    }

    /// Pre-fills the queue on every server (converged state).
    pub fn prefill(&self, n: u64, data_len: u32) {
        self.state.lock().cluster.prefill_queue("/q", n, data_len);
    }

    /// Installs a fault plan on the underlying simulation. Combine with
    /// [`SimQueue::set_client_timeout`] so lost replies fail operations
    /// instead of leaving them open forever.
    pub fn set_faults(&self, faults: Faults) {
        self.state.lock().cluster.engine.set_faults(faults);
    }

    /// Sets a client-side deadline for every subsequently submitted
    /// operation (fails with `Error::Timeout` when it passes without a
    /// final response).
    pub fn set_client_timeout(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.cluster.engine.node_as::<Gateway>(gw).client_timeout = Some(d);
    }

    /// The server node ids, in FRK/IRL/VRG (site-list) order.
    pub fn server_ids(&self) -> Vec<NodeId> {
        self.state.lock().cluster.servers.clone()
    }

    /// All site ids of the deployment's topology.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let st = self.state.lock();
        (0..st.cluster.engine.topology().len())
            .map(SiteId)
            .collect()
    }

    /// Runs the simulation for `d` without submitting anything (lets
    /// replication and commit propagation progress).
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let until = st.cluster.engine.now() + d;
        st.cluster.engine.run_until(until);
    }

    /// Drives the simulation until all submitted operations resolve —
    /// including failing by client timeout when faults lost their
    /// replies.
    ///
    /// # Panics
    ///
    /// Panics if operations can never resolve (faults active without a
    /// client timeout), instead of looping forever.
    pub fn settle(&self) {
        let mut st = self.state.lock();
        for _ in 0..1_000 {
            let gw = st.gateway;
            st.cluster
                .engine
                .schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
            st.cluster.engine.run_until_idle(50_000_000);
            let pending_empty = st.cluster.engine.node_as::<Gateway>(gw).pending.is_empty();
            if pending_empty && self.queue.lock().is_empty() {
                return;
            }
        }
        panic!(
            "queue operations cannot settle (lost replies without a client \
             timeout? see SimQueue::set_client_timeout)"
        );
    }

    /// Timings of completed operations.
    pub fn timings(&self) -> Vec<QueueTiming> {
        self.timings.lock().clone()
    }
}

/// `Binding` implementation over [`SimQueue`].
#[derive(Clone)]
pub struct QueueBinding {
    q: SimQueue,
}

impl Binding for QueueBinding {
    type Op = QueueOp;
    type Val = QueueView;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: QueueOp, levels: &[ConsistencyLevel], upcall: Upcall<QueueView>) {
        let weak = levels.contains(&ConsistencyLevel::WEAK);
        let strong = levels.contains(&ConsistencyLevel::STRONG);
        self.q.queue.lock().push_back(Queued {
            op,
            upcall,
            weak,
            strong,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::{Client, State};

    fn queue_with(n: u64) -> SimQueue {
        // Client in IRL connected to the FRK follower, leader in IRL.
        let q = SimQueue::ec2(ServerConfig::default(), "IRL", "IRL", "FRK", 11);
        q.prefill(n, 20);
        q
    }

    #[test]
    fn icg_dequeue_gives_prediction_then_atomic_pop() {
        let q = queue_with(10);
        let client = Client::new(q.binding());
        let c = client.invoke(QueueOp::Dequeue);
        q.settle();
        assert_eq!(c.state(), State::Final);
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 1);
        assert_eq!(prelims[0].value.name.as_deref(), Some("qn-0000000000"));
        assert_eq!(prelims[0].value.remaining, 9);
        let fin = c.final_view().unwrap();
        assert_eq!(fin.value.name.as_deref(), Some("qn-0000000000"));
        let t = q.timings()[0];
        assert!(t.prelim_ms.unwrap() < t.final_ms - 10.0, "no latency gap");
    }

    #[test]
    fn strong_dequeue_has_no_preliminary() {
        let q = queue_with(3);
        let client = Client::new(q.binding());
        let c = client.invoke_strong(QueueOp::Dequeue);
        q.settle();
        assert!(c.preliminary_views().is_empty());
        assert_eq!(
            c.final_view().unwrap().value.name.as_deref(),
            Some("qn-0000000000")
        );
    }

    #[test]
    fn weak_dequeue_is_a_pure_peek() {
        let q = queue_with(3);
        let client = Client::new(q.binding());
        let c = client.invoke_weak(QueueOp::Dequeue);
        q.settle();
        let v = c.final_view().unwrap();
        assert_eq!(v.level, ConsistencyLevel::WEAK);
        assert_eq!(v.value.name.as_deref(), Some("qn-0000000000"));
        // Nothing was dequeued: a strong dequeue still sees the head.
        let c2 = client.invoke_strong(QueueOp::Dequeue);
        q.settle();
        assert_eq!(
            c2.final_view().unwrap().value.name.as_deref(),
            Some("qn-0000000000")
        );
    }

    #[test]
    fn dequeue_on_empty_returns_none() {
        let q = queue_with(0);
        let client = Client::new(q.binding());
        let c = client.invoke(QueueOp::Dequeue);
        q.settle();
        let fin = c.final_view().unwrap();
        assert_eq!(fin.value.name, None);
        assert_eq!(fin.value.remaining, 0);
    }

    #[test]
    fn enqueue_reports_created_name() {
        let q = queue_with(2);
        let client = Client::new(q.binding());
        let c = client.invoke(QueueOp::Enqueue { data_len: 20 });
        q.settle();
        let fin = c.final_view().unwrap();
        assert_eq!(fin.value.name.as_deref(), Some("qn-0000000002"));
        // The preliminary predicted the same name (no contention).
        assert_eq!(
            c.preliminary_views()[0].value.name.as_deref(),
            Some("qn-0000000002")
        );
    }
}
