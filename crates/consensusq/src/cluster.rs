//! Cluster assembly for the coordination service.

use simnet::{Engine, NodeId, SimDuration, SiteId, Timer, Topology};

use crate::clients::KICKOFF;
use crate::messages::Msg;
use crate::server::{Server, ServerConfig};
use crate::types::Txn;

/// A coordination-service deployment under simulation.
pub struct ZkCluster {
    /// The discrete-event engine.
    pub engine: Engine<Msg>,
    /// Server node ids, in the order of `server_sites`.
    pub servers: Vec<NodeId>,
    /// Index of the leader within `servers`.
    pub leader_idx: usize,
    /// Client node ids.
    pub clients: Vec<NodeId>,
}

impl ZkCluster {
    /// Builds an ensemble with one server per named site; the server at
    /// `leader_idx` is the (static) leader.
    ///
    /// # Panics
    ///
    /// Panics if a site name is unknown or `leader_idx` is out of range.
    pub fn build(
        topology: Topology,
        server_sites: &[&str],
        leader_idx: usize,
        cfg: ServerConfig,
        seed: u64,
    ) -> ZkCluster {
        assert!(leader_idx < server_sites.len(), "leader index out of range");
        let sites: Vec<SiteId> = server_sites
            .iter()
            .map(|n| {
                topology
                    .site_named(n)
                    .unwrap_or_else(|| panic!("unknown site {n}"))
            })
            .collect();
        let mut engine = Engine::new(topology, seed);
        let servers: Vec<NodeId> = sites
            .iter()
            .map(|s| engine.add_node(*s, Box::new(Server::new(cfg))))
            .collect();
        let leader = servers[leader_idx];
        for (i, id) in servers.iter().enumerate() {
            let peers: Vec<NodeId> = servers
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            engine.node_as::<Server>(*id).set_membership(leader, peers);
        }
        ZkCluster {
            engine,
            servers,
            leader_idx,
            clients: Vec::new(),
        }
    }

    /// Pre-fills a queue with `n` elements by applying the same enqueue
    /// transactions directly to every server's tree (a converged state,
    /// as if enqueued before the experiment).
    pub fn prefill_queue(&mut self, parent: &str, n: u64, data_len: u32) {
        for s in self.servers.clone() {
            let server = self.engine.node_as::<Server>(s);
            for _ in 0..n {
                server.tree.apply(&Txn::CreateSeq {
                    parent: parent.to_string(),
                    prefix: "qn-".to_string(),
                    data_len,
                });
            }
        }
    }

    /// Adds a client node at `site` (by name) and schedules its kickoff.
    ///
    /// # Panics
    ///
    /// Panics if the site name is unknown.
    pub fn add_client(&mut self, site: &str, node: Box<dyn simnet::Node<Msg>>) -> NodeId {
        let s = self
            .engine
            .topology()
            .site_named(site)
            .unwrap_or_else(|| panic!("unknown site {site}"));
        let id = self.engine.add_node(s, node);
        self.engine
            .schedule_timer(id, SimDuration::ZERO, Timer(KICKOFF));
        self.clients.push(id);
        id
    }

    /// The leader's node id.
    pub fn leader(&self) -> NodeId {
        self.servers[self.leader_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::{DequeueClient, DequeueMode, EnqueueClient};
    use crate::server::Server;

    fn paper_cluster(leader_idx: usize, seed: u64) -> ZkCluster {
        ZkCluster::build(
            Topology::ec2_frk_irl_vrg(),
            &["FRK", "IRL", "VRG"],
            leader_idx,
            ServerConfig::default(),
            seed,
        )
    }

    #[test]
    fn enqueues_replicate_to_all_servers() {
        // Leader in IRL; client in IRL talks to the FRK follower.
        let mut c = paper_cluster(1, 3);
        let follower_frk = c.servers[0];
        let client = EnqueueClient::new(follower_frk, false, "/q", 5, 20);
        c.add_client("IRL", Box::new(client));
        c.engine.run_until_idle(10_000);
        for s in c.servers.clone() {
            let server = c.engine.node_as::<Server>(s);
            assert_eq!(server.tree.child_count("/q"), 5, "replica diverged");
            assert_eq!(server.applied_count, 5);
        }
        let id = c.clients[0];
        let cl = c.engine.node_as::<EnqueueClient>(id);
        assert_eq!(cl.completed, 5);
        // Client in IRL via FRK follower with leader in IRL: the paper's
        // first configuration. Final latency ≈ 55–75 ms.
        let mean = cl.final_latency.clone().summary().mean.as_millis_f64();
        assert!((45.0..85.0).contains(&mean), "ZK enqueue mean {mean}ms");
    }

    #[test]
    fn czk_preliminary_beats_final_by_coordination_time() {
        let mut c = paper_cluster(1, 4);
        let follower_frk = c.servers[0];
        let client = EnqueueClient::new(follower_frk, true, "/q", 10, 20);
        c.add_client("IRL", Box::new(client));
        c.engine.run_until_idle(100_000);
        let id = c.clients[0];
        let cl = c.engine.node_as::<EnqueueClient>(id);
        let prelim = cl.prelim_latency.clone().summary().mean.as_millis_f64();
        let fin = cl.final_latency.clone().summary().mean.as_millis_f64();
        // Preliminary ≈ client–server RTT (20 ms); final much later.
        assert!((18.0..26.0).contains(&prelim), "prelim {prelim}ms");
        assert!(fin > prelim + 20.0, "no gap: prelim {prelim} final {fin}");
    }

    #[test]
    fn concurrent_enqueuers_get_unique_names() {
        let mut c = paper_cluster(1, 5);
        for site in ["FRK", "IRL", "VRG"] {
            let server = c.servers[0];
            let client = EnqueueClient::new(server, false, "/q", 20, 20);
            c.add_client(site, Box::new(client));
        }
        c.engine.run_until_idle(1_000_000);
        let s0 = c.servers[0];
        let server = c.engine.node_as::<Server>(s0);
        assert_eq!(server.tree.child_count("/q"), 60);
    }

    #[test]
    fn zk_recipe_drains_queue_under_contention_without_loss() {
        let mut c = paper_cluster(1, 6);
        c.prefill_queue("/q", 50, 20);
        for _ in 0..4 {
            let server = c.servers[0];
            let client = DequeueClient::new(server, DequeueMode::ZkRecipe, "/q");
            c.add_client("FRK", Box::new(client));
        }
        c.engine.run_until_idle(10_000_000);
        let total: usize = c
            .clients
            .clone()
            .into_iter()
            .map(|id| c.engine.node_as::<DequeueClient>(id).purchases.len())
            .sum();
        assert_eq!(total, 50, "every element dequeued exactly once");
        for s in c.servers.clone() {
            assert_eq!(c.engine.node_as::<Server>(s).tree.child_count("/q"), 0);
        }
        // All four retailers observed the sell-out.
        for id in c.clients.clone() {
            assert!(c.engine.node_as::<DequeueClient>(id).sold_out);
        }
    }

    #[test]
    fn czk_atomic_never_oversells_and_uses_prelim_when_stock_high() {
        let mut c = paper_cluster(1, 7);
        c.prefill_queue("/q", 60, 20);
        for _ in 0..4 {
            let server = c.servers[0];
            let client = DequeueClient::new(server, DequeueMode::CzkAtomic { threshold: 20 }, "/q");
            c.add_client("FRK", Box::new(client));
        }
        c.engine.run_until_idle(10_000_000);
        let mut total = 0;
        let mut early = 0;
        let mut revoked = 0;
        for id in c.clients.clone() {
            let cl = c.engine.node_as::<DequeueClient>(id);
            total += cl.purchases.len();
            early += cl.purchases.iter().filter(|p| p.used_prelim).count();
            revoked += cl.purchases.iter().filter(|p| p.revoked).count();
        }
        // Revoked purchases are not sales; everything else must be backed
        // by a unique element.
        assert_eq!(total - revoked, 60, "sold {total}, revoked {revoked}");
        assert!(early > 20, "prelim confirmations: {early}");
        for s in c.servers.clone() {
            assert_eq!(c.engine.node_as::<Server>(s).tree.child_count("/q"), 0);
        }
    }
}
