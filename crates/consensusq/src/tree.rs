//! The replicated znode tree (the queue's substrate).
//!
//! A deliberately small subset of ZooKeeper's data model: persistent
//! znodes addressed by path, per-parent ordered children, and sequential
//! creation counters. Applying the same transactions in the same order
//! yields identical trees on every replica — the property the queue
//! recipe and the CZK fast path rely on.

use std::collections::{BTreeSet, HashMap};

use crate::types::{Txn, TxnResult, ZkError};

/// One znode's metadata (payload is opaque; only its size matters here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Znode {
    /// Payload size in bytes.
    pub data_len: u32,
}

/// A deterministic znode store.
#[derive(Clone, Debug, Default)]
pub struct ZnodeTree {
    nodes: HashMap<String, Znode>,
    children: HashMap<String, BTreeSet<String>>,
    seq_counters: HashMap<String, u64>,
}

impl ZnodeTree {
    /// An empty tree.
    pub fn new() -> Self {
        ZnodeTree::default()
    }

    /// Applies a transaction, mutating the tree.
    pub fn apply(&mut self, txn: &Txn) -> TxnResult {
        match txn {
            Txn::CreateSeq {
                parent,
                prefix,
                data_len,
            } => {
                let ctr = self.seq_counters.entry(parent.clone()).or_insert(0);
                let name = format!("{prefix}{:010}", *ctr);
                *ctr += 1;
                self.insert(parent, &name, *data_len);
                TxnResult::Created { name }
            }
            Txn::Create { path, data_len } => {
                if self.nodes.contains_key(path) {
                    return TxnResult::Err(ZkError::NodeExists);
                }
                let (parent, name) = split_path(path);
                self.insert(&parent, &name, *data_len);
                TxnResult::Created { name }
            }
            Txn::Delete { path } => {
                if self.nodes.remove(path).is_none() {
                    return TxnResult::Err(ZkError::NoNode);
                }
                let (parent, name) = split_path(path);
                if let Some(kids) = self.children.get_mut(&parent) {
                    kids.remove(&name);
                }
                TxnResult::Deleted
            }
            Txn::PopMin { parent } => {
                let popped = self
                    .children
                    .get_mut(parent)
                    .and_then(|kids| kids.pop_first());
                if let Some(name) = &popped {
                    self.nodes.remove(&join_path(parent, name));
                }
                TxnResult::Popped {
                    remaining: self.child_count(parent),
                    name: popped,
                }
            }
        }
    }

    /// Predicts a transaction's outcome **without** mutating the tree —
    /// the CZK fast path ("simulate the operation on local state").
    pub fn simulate(&self, txn: &Txn) -> TxnResult {
        match txn {
            Txn::CreateSeq { parent, prefix, .. } => {
                let ctr = self.seq_counters.get(parent).copied().unwrap_or(0);
                TxnResult::Created {
                    name: format!("{prefix}{ctr:010}"),
                }
            }
            Txn::Create { path, .. } => {
                if self.nodes.contains_key(path) {
                    TxnResult::Err(ZkError::NodeExists)
                } else {
                    TxnResult::Created {
                        name: split_path(path).1,
                    }
                }
            }
            Txn::Delete { path } => {
                if self.nodes.contains_key(path) {
                    TxnResult::Deleted
                } else {
                    TxnResult::Err(ZkError::NoNode)
                }
            }
            Txn::PopMin { parent } => {
                let head = self.min_child(parent);
                let count = self.child_count(parent);
                TxnResult::Popped {
                    name: head,
                    remaining: count.saturating_sub(1),
                }
            }
        }
    }

    /// Child names of `parent`, in order.
    pub fn children_of(&self, parent: &str) -> Vec<String> {
        self.children
            .get(parent)
            .map(|k| k.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The smallest child of `parent`.
    pub fn min_child(&self, parent: &str) -> Option<String> {
        self.children.get(parent).and_then(|k| k.first().cloned())
    }

    /// Number of children of `parent`.
    pub fn child_count(&self, parent: &str) -> u64 {
        self.children
            .get(parent)
            .map(|k| k.len() as u64)
            .unwrap_or(0)
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    fn insert(&mut self, parent: &str, name: &str, data_len: u32) {
        self.nodes
            .insert(join_path(parent, name), Znode { data_len });
        self.children
            .entry(parent.to_string())
            .or_default()
            .insert(name.to_string());
    }
}

/// Joins a parent path and a child name.
pub fn join_path(parent: &str, name: &str) -> String {
    format!("{parent}/{name}")
}

fn split_path(path: &str) -> (String, String) {
    match path.rfind('/') {
        Some(i) => (path[..i].to_string(), path[i + 1..].to_string()),
        None => (String::new(), path.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enqueue(t: &mut ZnodeTree) -> String {
        match t.apply(&Txn::CreateSeq {
            parent: "/q".into(),
            prefix: "qn-".into(),
            data_len: 20,
        }) {
            TxnResult::Created { name } => name,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequential_names_are_ordered_and_padded() {
        let mut t = ZnodeTree::new();
        let a = enqueue(&mut t);
        let b = enqueue(&mut t);
        assert_eq!(a, "qn-0000000000");
        assert_eq!(b, "qn-0000000001");
        assert!(a < b);
        assert_eq!(t.child_count("/q"), 2);
    }

    #[test]
    fn pop_min_is_fifo() {
        let mut t = ZnodeTree::new();
        for _ in 0..3 {
            enqueue(&mut t);
        }
        let r = t.apply(&Txn::PopMin {
            parent: "/q".into(),
        });
        assert_eq!(
            r,
            TxnResult::Popped {
                name: Some("qn-0000000000".into()),
                remaining: 2
            }
        );
        assert!(!t.exists("/q/qn-0000000000"));
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut t = ZnodeTree::new();
        let r = t.apply(&Txn::PopMin {
            parent: "/q".into(),
        });
        assert_eq!(
            r,
            TxnResult::Popped {
                name: None,
                remaining: 0
            }
        );
    }

    #[test]
    fn delete_missing_is_no_node() {
        let mut t = ZnodeTree::new();
        assert_eq!(
            t.apply(&Txn::Delete {
                path: "/q/x".into()
            }),
            TxnResult::Err(ZkError::NoNode)
        );
    }

    #[test]
    fn delete_removes_from_children() {
        let mut t = ZnodeTree::new();
        let name = enqueue(&mut t);
        let path = join_path("/q", &name);
        assert_eq!(t.apply(&Txn::Delete { path }), TxnResult::Deleted);
        assert_eq!(t.child_count("/q"), 0);
    }

    #[test]
    fn simulate_predicts_without_mutating() {
        let mut t = ZnodeTree::new();
        enqueue(&mut t);
        let before = t.clone();
        let sim = t.simulate(&Txn::PopMin {
            parent: "/q".into(),
        });
        assert_eq!(
            sim,
            TxnResult::Popped {
                name: Some("qn-0000000000".into()),
                remaining: 0
            }
        );
        assert_eq!(t.children_of("/q"), before.children_of("/q"));
        // Simulating a CreateSeq predicts the next name without bumping
        // the counter.
        let s1 = t.simulate(&Txn::CreateSeq {
            parent: "/q".into(),
            prefix: "qn-".into(),
            data_len: 1,
        });
        let s2 = t.simulate(&Txn::CreateSeq {
            parent: "/q".into(),
            prefix: "qn-".into(),
            data_len: 1,
        });
        assert_eq!(s1, s2);
    }

    #[test]
    fn create_explicit_and_conflict() {
        let mut t = ZnodeTree::new();
        assert_eq!(
            t.apply(&Txn::Create {
                path: "/a".into(),
                data_len: 5
            }),
            TxnResult::Created { name: "a".into() }
        );
        assert_eq!(
            t.apply(&Txn::Create {
                path: "/a".into(),
                data_len: 5
            }),
            TxnResult::Err(ZkError::NodeExists)
        );
    }

    #[test]
    fn identical_txn_sequences_yield_identical_trees() {
        let txns = [
            Txn::CreateSeq {
                parent: "/q".into(),
                prefix: "qn-".into(),
                data_len: 9,
            },
            Txn::CreateSeq {
                parent: "/q".into(),
                prefix: "qn-".into(),
                data_len: 9,
            },
            Txn::PopMin {
                parent: "/q".into(),
            },
            Txn::CreateSeq {
                parent: "/q".into(),
                prefix: "qn-".into(),
                data_len: 9,
            },
        ];
        let mut a = ZnodeTree::new();
        let mut b = ZnodeTree::new();
        let ra: Vec<TxnResult> = txns.iter().map(|t| a.apply(t)).collect();
        let rb: Vec<TxnResult> = txns.iter().map(|t| b.apply(t)).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.children_of("/q"), b.children_of("/q"));
    }
}
