//! Wire messages of the coordination service.
//!
//! Sizes are calibrated against the paper's reported enqueue bandwidth
//! (§6.2.2: a vanilla request/response pair costs ~270 bytes for ≤20-byte
//! elements; the CZK preliminary adds one more response, totalling ~400).

use simnet::{NodeId, Wire};

use crate::types::{OpId, ReadCmd, ReadResult, Txn, TxnResult, Zxid};

/// Fixed per-message overhead (transport framing, session headers).
pub const FRAME_BYTES: usize = 110;

const OP_HEADER: usize = 13;

fn txn_size(txn: &Txn) -> usize {
    match txn {
        Txn::CreateSeq {
            parent,
            prefix,
            data_len,
        } => parent.len() + prefix.len() + *data_len as usize,
        Txn::Create { path, data_len } => path.len() + *data_len as usize,
        Txn::Delete { path } => path.len(),
        Txn::PopMin { parent } => parent.len(),
    }
}

fn result_size(res: &TxnResult) -> usize {
    match res {
        TxnResult::Created { name } => name.len(),
        TxnResult::Deleted => 1,
        TxnResult::Popped { name, .. } => name.as_ref().map(|n| n.len()).unwrap_or(1) + 8,
        TxnResult::Err(_) => 2,
    }
}

/// Every message of the protocol.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → server: a local read (served from the server's state).
    Read {
        /// Operation id.
        op: OpId,
        /// The read command.
        cmd: ReadCmd,
    },
    /// Server → client: read result.
    ReadResp {
        /// Operation id.
        op: OpId,
        /// The result (a `GetChildren` reply's size grows with the queue).
        result: ReadResult,
    },
    /// Client → server: a transaction, optionally requesting the CZK
    /// preliminary (local simulation before coordination).
    Submit {
        /// Operation id.
        op: OpId,
        /// The transaction.
        txn: Txn,
        /// Request a preliminary response (Correctable ZooKeeper).
        prelim: bool,
    },
    /// Server → client: CZK preliminary result (local simulation).
    PrelimResp {
        /// Operation id.
        op: OpId,
        /// Predicted outcome.
        result: TxnResult,
    },
    /// Server → client: committed (final) result.
    FinalResp {
        /// Operation id.
        op: OpId,
        /// The outcome after Zab commit and local apply.
        result: TxnResult,
    },
    /// Follower → leader: forward a client transaction.
    Forward {
        /// Operation id (for the origin's bookkeeping).
        op: OpId,
        /// The server the client is connected to.
        origin: NodeId,
        /// The transaction.
        txn: Txn,
    },
    /// Leader → followers: proposal.
    Propose {
        /// Transaction id.
        zxid: Zxid,
        /// The transaction.
        txn: Txn,
        /// Origin server (replies to its client after applying).
        origin: NodeId,
        /// Client operation id.
        op: OpId,
    },
    /// Follower → leader: acknowledgment.
    Ack {
        /// Transaction id.
        zxid: Zxid,
    },
    /// Leader → followers: commit notification.
    Commit {
        /// Transaction id.
        zxid: Zxid,
    },
}

impl Wire for Msg {
    fn wire_size(&self) -> usize {
        let body = match self {
            Msg::Read { cmd, .. } => {
                OP_HEADER
                    + match cmd {
                        ReadCmd::GetChildren { parent } | ReadCmd::GetHead { parent } => {
                            parent.len() + 1
                        }
                    }
            }
            Msg::ReadResp { result, .. } => {
                OP_HEADER
                    + match result {
                        ReadResult::Children(names) => {
                            names.iter().map(|n| n.len() + 4).sum::<usize>()
                        }
                        ReadResult::Head { name, .. } => {
                            name.as_ref().map(|n| n.len()).unwrap_or(1) + 8
                        }
                    }
            }
            Msg::Submit { txn, .. } => OP_HEADER + 1 + txn_size(txn),
            Msg::PrelimResp { result, .. } | Msg::FinalResp { result, .. } => {
                OP_HEADER + result_size(result)
            }
            Msg::Forward { txn, .. } => OP_HEADER + 8 + txn_size(txn),
            Msg::Propose { txn, .. } => OP_HEADER + 16 + txn_size(txn),
            Msg::Ack { .. } => 8,
            Msg::Commit { .. } => 8,
        };
        FRAME_BYTES + body
    }

    fn category(&self) -> &'static str {
        match self {
            Msg::Read { .. } => "zk-read",
            Msg::ReadResp { .. } => "zk-read-resp",
            Msg::Submit { .. } => "zk-submit",
            Msg::PrelimResp { .. } => "zk-prelim",
            Msg::FinalResp { .. } => "zk-final",
            Msg::Forward { .. } => "zk-forward",
            Msg::Propose { .. } => "zk-propose",
            Msg::Ack { .. } => "zk-ack",
            Msg::Commit { .. } => "zk-commit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> OpId {
        OpId {
            client: NodeId(0),
            seq: 1,
        }
    }

    #[test]
    fn enqueue_request_response_is_about_270_bytes() {
        let req = Msg::Submit {
            op: op(),
            txn: Txn::CreateSeq {
                parent: "/tickets".into(),
                prefix: "t-".into(),
                data_len: 20,
            },
            prelim: false,
        };
        let resp = Msg::FinalResp {
            op: op(),
            result: TxnResult::Created {
                name: "t-0000000001".into(),
            },
        };
        let total = req.wire_size() + resp.wire_size();
        assert!(
            (250..320).contains(&total),
            "vanilla enqueue costs {total} bytes"
        );
        // CZK adds one preliminary response: ~400 bytes total (paper §6.2.2).
        let prelim = Msg::PrelimResp {
            op: op(),
            result: TxnResult::Created {
                name: "t-0000000001".into(),
            },
        };
        let czk_total = total + prelim.wire_size();
        assert!(
            (370..460).contains(&czk_total),
            "CZK enqueue costs {czk_total} bytes"
        );
    }

    #[test]
    fn get_children_reply_grows_with_queue_length() {
        let small = Msg::ReadResp {
            op: op(),
            result: ReadResult::Children(vec!["t-0000000001".into(); 10]),
        };
        let big = Msg::ReadResp {
            op: op(),
            result: ReadResult::Children(vec!["t-0000000001".into(); 500]),
        };
        assert!(big.wire_size() > small.wire_size() * 10);
        // 500 entries at ~16 bytes each ≈ 8 kB — Figure 10's ZK regime.
        assert!(big.wire_size() > 7_000);
    }

    #[test]
    fn get_head_reply_is_constant_size() {
        let r = Msg::ReadResp {
            op: op(),
            result: ReadResult::Head {
                name: Some("t-0000000001".into()),
                count: 500,
            },
        };
        assert!(r.wire_size() < 200);
    }
}
