//! The coordination server: Zab-style atomic broadcast plus the CZK fast
//! path.
//!
//! One statically configured leader sequences transactions (zxids);
//! followers acknowledge proposals; the leader commits once a majority
//! (including itself) has acknowledged, and every server applies
//! transactions in zxid order. The server a client is connected to — the
//! *origin* — replies once it has applied the transaction locally, exactly
//! like ZooKeeper.
//!
//! **Correctable ZooKeeper (CZK)**: when a submission requests a
//! preliminary, the origin server first *simulates* the transaction on its
//! local tree and leaks the predicted result to the client before
//! coordination (§5.2). Reads (`GetChildren`, `GetHead`) are always served
//! locally, as in ZooKeeper.
//!
//! We run a single Zab epoch: the evaluated deployments never fail the
//! leader (the paper's do not either). The apply path tolerates reordered
//! proposals and commits, so no FIFO channel assumption is needed.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use simnet::{Ctx, Node, NodeId, SimDuration};

use crate::messages::Msg;
use crate::tree::ZnodeTree;
use crate::types::{OpId, ReadCmd, ReadResult, Txn, Zxid};

/// Tuning knobs of a server.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// CPU time to serve a local read.
    pub read_service: SimDuration,
    /// CPU time to log/apply a transaction.
    pub txn_service: SimDuration,
    /// Extra CPU time for the CZK local simulation.
    pub prelim_extra: SimDuration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_service: SimDuration::from_micros(150),
            txn_service: SimDuration::from_micros(200),
            prelim_extra: SimDuration::from_micros(50),
        }
    }
}

/// A coordination server (leader or follower).
pub struct Server {
    /// The leader's node id (set by the cluster builder).
    leader: NodeId,
    /// All *other* servers (used by the leader for broadcast).
    peers: Vec<NodeId>,
    /// The replicated state.
    pub tree: ZnodeTree,
    cfg: ServerConfig,
    // --- Leader-only state ---
    next_zxid: Zxid,
    acks: HashMap<Zxid, u8>,
    quorum_reached: BTreeSet<Zxid>,
    // --- Apply state (all servers) ---
    proposals: BTreeMap<Zxid, (Txn, NodeId, OpId)>,
    commits_seen: BTreeSet<Zxid>,
    last_applied: Zxid,
    /// Number of transactions this server has applied (observability).
    pub applied_count: u64,
}

impl Server {
    /// Creates a server; the builder wires `leader` and `peers` afterwards.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            leader: NodeId(usize::MAX),
            peers: Vec::new(),
            tree: ZnodeTree::new(),
            cfg,
            next_zxid: 1,
            acks: HashMap::new(),
            quorum_reached: BTreeSet::new(),
            proposals: BTreeMap::new(),
            commits_seen: BTreeSet::new(),
            last_applied: 0,
            applied_count: 0,
        }
    }

    /// Wires cluster membership.
    pub fn set_membership(&mut self, leader: NodeId, peers: Vec<NodeId>) {
        self.leader = leader;
        self.peers = peers;
    }

    fn is_leader(&self, ctx: &Ctx<'_, Msg>) -> bool {
        ctx.id() == self.leader
    }

    fn majority(&self) -> u8 {
        (self.peers.len().div_ceil(2) + 1) as u8
    }

    /// Leader: sequence a transaction and propose it.
    fn propose(&mut self, ctx: &mut Ctx<'_, Msg>, txn: Txn, origin: NodeId, op: OpId) {
        let zxid = self.next_zxid;
        self.next_zxid += 1;
        self.proposals.insert(zxid, (txn.clone(), origin, op));
        // The leader's own (implicit) ack.
        self.acks.insert(zxid, 1);
        for p in self.peers.clone() {
            ctx.send(
                p,
                Msg::Propose {
                    zxid,
                    txn: txn.clone(),
                    origin,
                    op,
                },
            );
        }
        // A single-server "cluster" has an immediate majority.
        self.check_quorum(ctx, zxid);
    }

    fn check_quorum(&mut self, ctx: &mut Ctx<'_, Msg>, zxid: Zxid) {
        let have = self.acks.get(&zxid).copied().unwrap_or(0);
        if have >= self.majority() && !self.quorum_reached.contains(&zxid) {
            self.quorum_reached.insert(zxid);
            self.commits_seen.insert(zxid);
            for p in self.peers.clone() {
                ctx.send(p, Msg::Commit { zxid });
            }
            self.apply_ready(ctx);
        }
    }

    /// Applies every contiguous committed transaction in zxid order.
    fn apply_ready(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let next = self.last_applied + 1;
            if !self.commits_seen.contains(&next) {
                return;
            }
            let Some((txn, origin, op)) = self.proposals.remove(&next) else {
                // Commit arrived before the proposal; wait for it.
                return;
            };
            self.commits_seen.remove(&next);
            self.acks.remove(&next);
            self.quorum_reached.remove(&next);
            let result = self.tree.apply(&txn);
            self.last_applied = next;
            self.applied_count += 1;
            if origin == ctx.id() {
                ctx.send(op.client, Msg::FinalResp { op, result });
            }
        }
    }
}

impl Node<Msg> for Server {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Read { op, cmd } => {
                let result = match cmd {
                    ReadCmd::GetChildren { parent } => {
                        ReadResult::Children(self.tree.children_of(&parent))
                    }
                    ReadCmd::GetHead { parent } => ReadResult::Head {
                        name: self.tree.min_child(&parent),
                        count: self.tree.child_count(&parent),
                    },
                };
                ctx.send(from, Msg::ReadResp { op, result });
            }
            Msg::Submit { op, txn, prelim } => {
                if prelim {
                    // CZK fast path: leak the locally simulated result
                    // before coordinating.
                    let result = self.tree.simulate(&txn);
                    ctx.send(from, Msg::PrelimResp { op, result });
                }
                if self.is_leader(ctx) {
                    let me = ctx.id();
                    self.propose(ctx, txn, me, op);
                } else {
                    let me = ctx.id();
                    ctx.send(
                        self.leader,
                        Msg::Forward {
                            op,
                            origin: me,
                            txn,
                        },
                    );
                }
            }
            Msg::Forward { op, origin, txn } => {
                debug_assert!(self.is_leader(ctx), "only the leader sequences");
                self.propose(ctx, txn, origin, op);
            }
            Msg::Propose {
                zxid,
                txn,
                origin,
                op,
            } => {
                self.proposals.insert(zxid, (txn, origin, op));
                ctx.send(self.leader, Msg::Ack { zxid });
                // A commit for this zxid may already be buffered.
                self.apply_ready(ctx);
            }
            Msg::Ack { zxid } => {
                *self.acks.entry(zxid).or_insert(0) += 1;
                self.check_quorum(ctx, zxid);
            }
            Msg::Commit { zxid } => {
                self.commits_seen.insert(zxid);
                self.apply_ready(ctx);
            }
            // Client-bound messages never land on servers.
            Msg::ReadResp { .. } | Msg::PrelimResp { .. } | Msg::FinalResp { .. } => {
                debug_assert!(false, "server received a client-bound message");
            }
        }
    }

    fn service_cost(&self, msg: &Msg) -> SimDuration {
        match msg {
            Msg::Read { .. } => self.cfg.read_service,
            Msg::Submit { prelim, .. } => {
                if *prelim {
                    self.cfg.txn_service + self.cfg.prelim_extra
                } else {
                    self.cfg.txn_service
                }
            }
            Msg::Forward { .. } | Msg::Propose { .. } | Msg::Commit { .. } => self.cfg.txn_service,
            _ => SimDuration::ZERO,
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
