//! # consensusq — a ZooKeeper-model coordination service with CZK support
//!
//! The paper's second storage system is a modified Apache ZooKeeper
//! ("Correctable ZooKeeper", CZK) exposing replicated queues. This crate
//! rebuilds the relevant mechanics from scratch on the deterministic
//! simulator:
//!
//! - **Atomic broadcast** ([`server::Server`]): a Zab-style protocol — the
//!   leader sequences transactions, followers acknowledge, commits happen
//!   on majority, every server applies in zxid order, and the origin
//!   server answers its client after applying locally.
//! - **Znode tree** ([`tree::ZnodeTree`]): persistent znodes with
//!   per-parent ordered children and sequential-creation counters — enough
//!   to express ZooKeeper's queue recipe.
//! - **Queue recipe** ([`clients`]): vanilla dequeue reads the *whole*
//!   child list and races on deleting the head (message size grows with
//!   queue length — Figure 10); the CZK recipe reads a constant-size head;
//!   CZK's `invoke(dequeue)` adds the fast path — the connected server
//!   *simulates* the operation on local state and leaks the prediction as
//!   a preliminary view before Zab coordination (§5.2).
//! - **Binding** ([`binding::SimQueue`]): the Correctables binding used by
//!   the ticket-selling application (Listing 5).
//!
//! A single Zab epoch is simulated (static leader); the paper's
//! evaluation never fails the leader, and leader re-election is out of
//! reproduced scope (see DESIGN.md §6).

pub mod binding;
pub mod clients;
pub mod cluster;
pub mod messages;
pub mod server;
pub mod tree;
pub mod types;

pub use binding::{QueueBinding, QueueOp, QueueTiming, QueueView, SimQueue};
pub use clients::{DequeueClient, DequeueMode, EnqueueClient, PurchaseRecord, KICKOFF};
pub use cluster::ZkCluster;
pub use messages::{Msg, FRAME_BYTES};
pub use server::{Server, ServerConfig};
pub use tree::{join_path, Znode, ZnodeTree};
pub use types::{seq_of, OpId, ReadCmd, ReadResult, Txn, TxnResult, ZkError, Zxid};
