//! Driver clients for the queue experiments (Figures 9, 10, and 12).

use std::any::Any;
use std::collections::HashMap;

use simnet::{Ctx, Histogram, Node, NodeId, SimDuration, SimTime, Timer};

use crate::messages::Msg;
use crate::tree::join_path;
use crate::types::{OpId, ReadCmd, ReadResult, Txn, TxnResult, ZkError};

/// Timer token that starts a client.
pub const KICKOFF: u64 = u64::MAX;
/// Timer token for serving the next customer after the think time.
const NEXT_CUSTOMER: u64 = u64::MAX - 2;

/// A sequential enqueuer measuring per-operation latency (Figure 9).
pub struct EnqueueClient {
    server: NodeId,
    /// Request CZK preliminaries.
    pub icg: bool,
    parent: String,
    prefix: String,
    data_len: u32,
    total_ops: u64,
    issued: u64,
    next_seq: u64,
    cur_start: Option<SimTime>,
    /// Latency of preliminary responses (CZK only).
    pub prelim_latency: Histogram,
    /// Latency of final responses.
    pub final_latency: Histogram,
    /// Completed operations.
    pub completed: u64,
}

impl EnqueueClient {
    /// Creates a client that enqueues `total_ops` elements one at a time.
    pub fn new(server: NodeId, icg: bool, parent: &str, total_ops: u64, data_len: u32) -> Self {
        EnqueueClient {
            server,
            icg,
            parent: parent.to_string(),
            prefix: "qn-".to_string(),
            data_len,
            total_ops,
            issued: 0,
            next_seq: 0,
            cur_start: None,
            prelim_latency: Histogram::new(),
            final_latency: Histogram::new(),
            completed: 0,
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.issued >= self.total_ops {
            return;
        }
        self.issued += 1;
        let op = OpId {
            client: ctx.id(),
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.cur_start = Some(ctx.now());
        ctx.send(
            self.server,
            Msg::Submit {
                op,
                txn: Txn::CreateSeq {
                    parent: self.parent.clone(),
                    prefix: self.prefix.clone(),
                    data_len: self.data_len,
                },
                prelim: self.icg,
            },
        );
    }
}

impl Node<Msg> for EnqueueClient {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::PrelimResp { .. } => {
                if let Some(start) = self.cur_start {
                    self.prelim_latency.record(ctx.now().since(start));
                }
            }
            Msg::FinalResp { .. } => {
                if let Some(start) = self.cur_start.take() {
                    self.final_latency.record(ctx.now().since(start));
                    self.completed += 1;
                }
                self.issue(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == KICKOFF {
            self.issue(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// How a dequeuer executes its operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DequeueMode {
    /// Vanilla ZooKeeper recipe: `getChildren` (whole queue!), then try to
    /// delete candidates in order from the cached list; re-read when the
    /// cached list is exhausted.
    ZkRecipe,
    /// CZK recipe: constant-size `GetHead` + delete; re-read on a lost
    /// race.
    CzkRecipe,
    /// CZK atomic dequeue with ICG (`invoke(dequeue)`): a preliminary from
    /// local simulation, a final via an atomic server-side pop. Purchases
    /// confirm on the preliminary while `remaining > threshold`
    /// (Listing 5), and subsequent customers are served while the final
    /// completes in the background.
    CzkAtomic {
        /// Stock level below which the client waits for the final view.
        threshold: u64,
    },
}

/// One purchase (successful dequeue, or a revoked fast-path confirmation).
#[derive(Clone, Debug)]
pub struct PurchaseRecord {
    /// When the purchase was confirmed to the user.
    pub confirmed_at: SimTime,
    /// User-visible confirmation latency in milliseconds.
    pub latency_ms: f64,
    /// Whether the preliminary view confirmed it (vs. the final).
    pub used_prelim: bool,
    /// The element eventually dequeued (`None` until/unless known).
    pub final_name: Option<String>,
    /// The preliminary predicted a different element than was popped
    /// (harmless for unordered tickets; counted for observability).
    pub prediction_changed: bool,
    /// A prelim-confirmed purchase was revoked by the final view
    /// (the queue turned out to be empty) — must be compensated.
    pub revoked: bool,
}

struct PopOp {
    start: SimTime,
    /// Index into `purchases` if already confirmed from the preliminary.
    confirmed_idx: Option<usize>,
    prelim_name: Option<String>,
}

enum RecipePhase {
    Idle,
    AwaitRead {
        op: OpId,
    },
    AwaitDelete {
        op: OpId,
        name: String,
        /// Remaining cached candidates (ZkRecipe only).
        rest: Vec<String>,
    },
}

/// A closed-loop dequeuer (retailer) draining a queue.
pub struct DequeueClient {
    server: NodeId,
    mode: DequeueMode,
    parent: String,
    next_seq: u64,
    /// Sequential state for the recipe modes.
    phase: RecipePhase,
    op_start: Option<SimTime>,
    /// Outstanding atomic pops (CzkAtomic pipelines them).
    pops: HashMap<OpId, PopOp>,
    /// Set while a low-stock pop gates new customers.
    gated: bool,
    /// Pause between customers (CzkAtomic; zero = serve back-to-back).
    pub think_time: SimDuration,
    /// Successful purchases, in confirmation order.
    pub purchases: Vec<PurchaseRecord>,
    /// Lost races (NoNode on delete) across all operations.
    pub retries: u64,
    /// Whole-queue / head re-reads performed.
    pub reads: u64,
    /// The client observed an empty queue and stopped.
    pub sold_out: bool,
    /// Optional cap on purchases (`None` = drain until empty).
    pub max_ops: Option<u64>,
}

impl DequeueClient {
    /// Creates a retailer draining `parent` through `server`.
    pub fn new(server: NodeId, mode: DequeueMode, parent: &str) -> Self {
        DequeueClient {
            server,
            mode,
            parent: parent.to_string(),
            next_seq: 0,
            phase: RecipePhase::Idle,
            op_start: None,
            pops: HashMap::new(),
            gated: false,
            think_time: SimDuration::ZERO,
            purchases: Vec::new(),
            retries: 0,
            reads: 0,
            sold_out: false,
            max_ops: None,
        }
    }

    /// Sets the inter-customer think time (builder style).
    pub fn with_think_time(mut self, t: SimDuration) -> Self {
        self.think_time = t;
        self
    }

    fn next_op_id(&mut self, ctx: &Ctx<'_, Msg>) -> OpId {
        let op = OpId {
            client: ctx.id(),
            seq: self.next_seq,
        };
        self.next_seq += 1;
        op
    }

    fn done(&self) -> bool {
        self.sold_out
            || self
                .max_ops
                .map(|m| self.purchases.len() as u64 >= m)
                .unwrap_or(false)
    }

    fn serve_customer(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.done() || self.gated {
            return;
        }
        match self.mode {
            DequeueMode::ZkRecipe | DequeueMode::CzkRecipe => {
                if matches!(self.phase, RecipePhase::Idle) {
                    self.op_start = Some(ctx.now());
                    self.read_queue(ctx);
                }
            }
            DequeueMode::CzkAtomic { .. } => {
                let op = self.next_op_id(ctx);
                self.pops.insert(
                    op,
                    PopOp {
                        start: ctx.now(),
                        confirmed_idx: None,
                        prelim_name: None,
                    },
                );
                ctx.send(
                    self.server,
                    Msg::Submit {
                        op,
                        txn: Txn::PopMin {
                            parent: self.parent.clone(),
                        },
                        prelim: true,
                    },
                );
            }
        }
    }

    fn schedule_next(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.done() {
            return;
        }
        if self.think_time == SimDuration::ZERO {
            self.serve_customer(ctx);
        } else {
            ctx.set_timer(self.think_time, Timer(NEXT_CUSTOMER));
        }
    }

    fn read_queue(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let op = self.next_op_id(ctx);
        self.reads += 1;
        let cmd = match self.mode {
            DequeueMode::ZkRecipe => ReadCmd::GetChildren {
                parent: self.parent.clone(),
            },
            _ => ReadCmd::GetHead {
                parent: self.parent.clone(),
            },
        };
        self.phase = RecipePhase::AwaitRead { op };
        ctx.send(self.server, Msg::Read { op, cmd });
    }

    fn try_delete(&mut self, ctx: &mut Ctx<'_, Msg>, mut candidates: Vec<String>) {
        if candidates.is_empty() {
            // Cached list exhausted; re-read (or conclude sold out at the
            // read step if the queue is empty).
            self.read_queue(ctx);
            return;
        }
        let name = candidates.remove(0);
        let op = self.next_op_id(ctx);
        let path = join_path(&self.parent, &name);
        self.phase = RecipePhase::AwaitDelete {
            op,
            name,
            rest: candidates,
        };
        ctx.send(
            self.server,
            Msg::Submit {
                op,
                txn: Txn::Delete { path },
                prelim: false,
            },
        );
    }

    fn recipe_success(&mut self, ctx: &mut Ctx<'_, Msg>, name: String) {
        let start = self.op_start.expect("op in flight");
        self.purchases.push(PurchaseRecord {
            confirmed_at: ctx.now(),
            latency_ms: ctx.now().since(start).as_millis_f64(),
            used_prelim: false,
            final_name: Some(name),
            prediction_changed: false,
            revoked: false,
        });
        self.phase = RecipePhase::Idle;
        self.op_start = None;
        self.schedule_next(ctx);
    }

    fn handle_pop_prelim(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId, result: TxnResult) {
        let DequeueMode::CzkAtomic { threshold } = self.mode else {
            return;
        };
        let TxnResult::Popped { name, remaining } = result else {
            return;
        };
        let Some(pop) = self.pops.get_mut(&op) else {
            return;
        };
        pop.prelim_name = name.clone();
        if name.is_some() && remaining > threshold {
            // Plenty of stock: confirm to the customer now; the atomic
            // dequeue completes in the background (Listing 5's fast path).
            let start = pop.start;
            self.purchases.push(PurchaseRecord {
                confirmed_at: ctx.now(),
                latency_ms: ctx.now().since(start).as_millis_f64(),
                used_prelim: true,
                final_name: None,
                prediction_changed: false,
                revoked: false,
            });
            let idx = self.purchases.len() - 1;
            self.pops.get_mut(&op).expect("present").confirmed_idx = Some(idx);
            self.schedule_next(ctx);
        } else {
            // Low stock (or locally empty): gate on this pop's final view.
            self.gated = true;
        }
    }

    fn handle_pop_final(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId, result: TxnResult) {
        let TxnResult::Popped { name, .. } = result else {
            return;
        };
        let Some(pop) = self.pops.remove(&op) else {
            return;
        };
        match pop.confirmed_idx {
            Some(idx) => {
                // Already confirmed on the preliminary; audit the outcome.
                let rec = &mut self.purchases[idx];
                rec.prediction_changed = pop.prelim_name != name;
                match name {
                    Some(n) => rec.final_name = Some(n),
                    None => {
                        // The queue ran dry before this pop committed: the
                        // fast-path confirmation must be compensated.
                        rec.revoked = true;
                        self.sold_out = true;
                    }
                }
            }
            None => {
                // This pop was gating (low stock): the final view decides.
                self.gated = false;
                match name {
                    Some(n) => {
                        self.purchases.push(PurchaseRecord {
                            confirmed_at: ctx.now(),
                            latency_ms: ctx.now().since(pop.start).as_millis_f64(),
                            used_prelim: false,
                            prediction_changed: pop.prelim_name.as_deref() != Some(n.as_str()),
                            final_name: Some(n),
                            revoked: false,
                        });
                        self.schedule_next(ctx);
                    }
                    None => {
                        self.sold_out = true;
                    }
                }
            }
        }
    }
}

impl Node<Msg> for DequeueClient {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::ReadResp { op, result } => {
                let RecipePhase::AwaitRead { op: want } = &self.phase else {
                    return;
                };
                if op != *want {
                    return;
                }
                let candidates = match result {
                    ReadResult::Children(names) => names,
                    ReadResult::Head { name, .. } => name.into_iter().collect(),
                };
                if candidates.is_empty() {
                    self.sold_out = true;
                    self.phase = RecipePhase::Idle;
                    return;
                }
                self.try_delete(ctx, candidates);
            }
            Msg::PrelimResp { op, result } => {
                self.handle_pop_prelim(ctx, op, result);
            }
            Msg::FinalResp { op, result } => {
                if self.pops.contains_key(&op) {
                    self.handle_pop_final(ctx, op, result);
                    return;
                }
                let RecipePhase::AwaitDelete {
                    op: want,
                    name,
                    rest,
                } = &self.phase
                else {
                    return;
                };
                if op != *want {
                    return;
                }
                let (name, rest) = (name.clone(), rest.clone());
                match result {
                    TxnResult::Deleted => self.recipe_success(ctx, name),
                    TxnResult::Err(ZkError::NoNode) => {
                        // Lost the race; try the next cached candidate.
                        self.retries += 1;
                        self.try_delete(ctx, rest);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == KICKOFF || timer.0 == NEXT_CUSTOMER {
            self.serve_customer(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purchase_record_defaults() {
        let r = PurchaseRecord {
            confirmed_at: SimTime::ZERO,
            latency_ms: 1.5,
            used_prelim: true,
            final_name: None,
            prediction_changed: false,
            revoked: false,
        };
        assert!(r.used_prelim);
        assert!(!r.revoked);
    }
}
