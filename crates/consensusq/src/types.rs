//! Core types of the coordination service.

use simnet::NodeId;

/// Identifier of one client operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// The issuing client node.
    pub client: NodeId,
    /// Per-client sequence number.
    pub seq: u64,
}

/// Zab transaction id: a totally ordered sequence number assigned by the
/// leader (we run a single epoch; see the crate docs on leader changes).
pub type Zxid = u64;

/// A state-machine transaction, replicated through atomic broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Txn {
    /// Create a sequential child of `parent` named `prefix` + a
    /// zero-padded monotonically increasing counter (ZooKeeper's
    /// `CreateMode.PERSISTENT_SEQUENTIAL`, the queue's enqueue).
    CreateSeq {
        /// Parent znode path.
        parent: String,
        /// Child name prefix.
        prefix: String,
        /// Payload size in bytes (content is opaque to the service).
        data_len: u32,
    },
    /// Create a znode at an explicit path (fails if it exists).
    Create {
        /// Full path.
        path: String,
        /// Payload size in bytes.
        data_len: u32,
    },
    /// Delete a znode (fails with [`ZkError::NoNode`] if missing) — the
    /// client-driven dequeue's removal step.
    Delete {
        /// Full path.
        path: String,
    },
    /// Atomically pop the smallest child of `parent` — the server-side
    /// dequeue used by Correctable ZooKeeper's `invoke(dequeue)`.
    PopMin {
        /// Parent znode path.
        parent: String,
    },
}

/// Failures of state-machine transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZkError {
    /// The target znode does not exist (e.g. lost a dequeue race).
    NoNode,
    /// The target znode already exists.
    NodeExists,
}

/// The outcome of a transaction, identical on every replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnResult {
    /// A znode was created; carries its name (path component).
    Created {
        /// The created child's name.
        name: String,
    },
    /// A znode was deleted.
    Deleted,
    /// A [`Txn::PopMin`] outcome.
    Popped {
        /// The popped child's name, or `None` if the queue was empty.
        name: Option<String>,
        /// Children remaining after the pop.
        remaining: u64,
    },
    /// The transaction failed.
    Err(ZkError),
}

/// Local (non-replicated) reads served by the contacted server, exactly
/// like ZooKeeper reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadCmd {
    /// Full child list of `parent` — the vanilla dequeue recipe's read,
    /// whose reply size grows with the queue length (Figure 10).
    GetChildren {
        /// Parent znode path.
        parent: String,
    },
    /// Only the smallest child and the child count — CZK's constant-size
    /// read.
    GetHead {
        /// Parent znode path.
        parent: String,
    },
}

/// Results of local reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadResult {
    /// All child names.
    Children(Vec<String>),
    /// The smallest child (if any) and the child count.
    Head {
        /// Smallest child name.
        name: Option<String>,
        /// Number of children.
        count: u64,
    },
}

/// Parses the sequence number out of a sequential znode name
/// (e.g. `"qn-0000000042"` → `42`).
pub fn seq_of(name: &str) -> Option<u64> {
    name.rsplit('-').next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_parses_padded_names() {
        assert_eq!(seq_of("qn-0000000042"), Some(42));
        assert_eq!(seq_of("ticket-0000000000"), Some(0));
        assert_eq!(seq_of("garbage"), None);
    }
}
