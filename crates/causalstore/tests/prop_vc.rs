//! Property-based tests of vector clocks and causal delivery.

use proptest::prelude::*;

use causalstore::{Causality, VectorClock};

fn arb_clock(n: usize) -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..20, n).prop_map(VectorClock)
}

proptest! {
    /// Merge is commutative, associative, and idempotent (a join
    /// semilattice — the foundation of convergence).
    #[test]
    fn merge_is_a_semilattice(
        a in arb_clock(4),
        b in arb_clock(4),
        c in arb_clock(4),
    ) {
        // Commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Idempotence.
        let mut aa = a.clone();
        aa.merge(&a);
        prop_assert_eq!(&aa, &a);
    }

    /// Comparison is antisymmetric and consistent with merge domination.
    #[test]
    fn compare_is_consistent(a in arb_clock(3), b in arb_clock(3)) {
        match a.compare(&b) {
            Causality::Equal => prop_assert_eq!(&a, &b),
            Causality::Before => {
                prop_assert_eq!(b.compare(&a), Causality::After);
                // a merged into b changes nothing.
                let mut m = b.clone();
                m.merge(&a);
                prop_assert_eq!(&m, &b);
            }
            Causality::After => {
                prop_assert_eq!(b.compare(&a), Causality::Before);
                let mut m = a.clone();
                m.merge(&b);
                prop_assert_eq!(&m, &a);
            }
            Causality::Concurrent => {
                prop_assert_eq!(b.compare(&a), Causality::Concurrent);
            }
        }
    }

    /// A sender's updates are deliverable exactly in sequence order at any
    /// receiver that has all their dependencies.
    #[test]
    fn delivery_is_gap_free(deliveries in 1u64..30) {
        let mut local = VectorClock::zero(2);
        for k in 1..=deliveries {
            // The k-th update from replica 0 with no other dependencies.
            let stamp = VectorClock(vec![k, 0]);
            if k == local.0[0] + 1 {
                prop_assert!(local.deliverable(&stamp, 0));
                local.merge(&stamp);
            }
        }
        prop_assert_eq!(local.0[0], deliveries);
        // A gapped update is never deliverable.
        let gap = VectorClock(vec![deliveries + 2, 0]);
        prop_assert!(!local.deliverable(&gap, 0));
    }
}
