//! # causalstore — causal replication with a client cache
//!
//! The third storage stack of the paper (§5.2, "Causal Consistency and
//! Caching"): a causally consistent replicated store complemented by a
//! client-side cache, exposed through a three-level Correctables binding
//! (`Cache` / `Causal` / `Strong`). This powers the §4.4 smartphone news
//! reader (Listing 6): one `invoke` yields an instant cached view, a
//! fresher causal view from the nearest backup, and the authoritative
//! view from the distant primary.
//!
//! Internals:
//!
//! - [`vc::VectorClock`] — causal stamps with the CBCAST delivery rule;
//! - [`store::CausalReplica`] — primary-backup replicas that buffer
//!   out-of-order updates until their causal dependencies arrive;
//! - [`binding::SimCausal`] — the deployment plus write-through cache
//!   coherence (replacing the hand-rolled cache juggling of Listing 1).

pub mod binding;
pub mod store;
pub mod vc;

pub use binding::{CacheOp, CausalBinding, LevelTiming, SimCausal};
pub use store::{CausalReplica, Item, Msg, OpId};
pub use vc::{Causality, VectorClock};
