//! Vector clocks for causal consistency.

use std::cmp::Ordering;

/// A fixed-width vector clock (one entry per replica).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct VectorClock(pub Vec<u64>);

/// The causal relationship between two clocks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Causality {
    /// The clocks are identical.
    Equal,
    /// The left clock happens-before the right.
    Before,
    /// The right clock happens-before the left.
    After,
    /// Neither dominates: concurrent.
    Concurrent,
}

impl VectorClock {
    /// The zero clock for `n` replicas.
    pub fn zero(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Number of replica entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Increments the entry of replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bump(&mut self, i: usize) {
        self.0[i] += 1;
    }

    /// Pointwise maximum.
    pub fn merge(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Compares two clocks causally.
    pub fn compare(&self, other: &VectorClock) -> Causality {
        debug_assert_eq!(self.0.len(), other.0.len());
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (true, true) => Causality::Concurrent,
        }
    }

    /// Whether an update stamped `update` from `sender` is the *next*
    /// causally deliverable message at a replica whose clock is `self`
    /// (the CBCAST delivery condition).
    pub fn deliverable(&self, update: &VectorClock, sender: usize) -> bool {
        debug_assert_eq!(self.0.len(), update.0.len());
        update.0[sender] == self.0[sender] + 1
            && self
                .0
                .iter()
                .zip(&update.0)
                .enumerate()
                .all(|(i, (mine, theirs))| i == sender || theirs <= mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_compare() {
        let mut a = VectorClock::zero(3);
        let b = a.clone();
        a.bump(0);
        assert_eq!(a.compare(&b), Causality::After);
        assert_eq!(b.compare(&a), Causality::Before);
        assert_eq!(a.compare(&a), Causality::Equal);
    }

    #[test]
    fn concurrent_clocks() {
        let mut a = VectorClock::zero(2);
        let mut b = VectorClock::zero(2);
        a.bump(0);
        b.bump(1);
        assert_eq!(a.compare(&b), Causality::Concurrent);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VectorClock(vec![3, 0, 5]);
        a.merge(&VectorClock(vec![1, 7, 5]));
        assert_eq!(a, VectorClock(vec![3, 7, 5]));
    }

    #[test]
    fn delivery_condition() {
        // Replica state: has seen 2 updates from replica 0, none from 1.
        let local = VectorClock(vec![2, 0]);
        // The third update from replica 0, depending on nothing else.
        let ok = VectorClock(vec![3, 0]);
        assert!(local.deliverable(&ok, 0));
        // A gap: the fourth update cannot be delivered yet.
        let gap = VectorClock(vec![4, 0]);
        assert!(!local.deliverable(&gap, 0));
        // Depends on an unseen update from replica 1.
        let dep = VectorClock(vec![3, 1]);
        assert!(!local.deliverable(&dep, 0));
    }
}
