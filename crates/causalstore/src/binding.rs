//! The three-level binding: client cache / causal backup / primary.
//!
//! This is the binding of §4.4's smartphone news reader (Listing 6): one
//! logical `invoke(get(...))` fans out into (1) an instant answer from the
//! client-side cache, (2) a fresher causally consistent view from the
//! closest backup, and (3) the most up-to-date view from the (distant)
//! primary. The binding also keeps the cache write-through coherent, so
//! `invoke_weak`/`invoke_strong` subsume the manual cache handling the
//! paper criticizes in Reddit's code (Listings 1–2).

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, Error, KeyedOp, LevelSet, ObjectId, Upcall};
use simnet::{Ctx, Engine, Faults, Node, NodeId, SimDuration, SimTime, SiteId, Timer, Topology};

use crate::store::{CausalReplica, Item, Msg, OpId};

/// Operations of the cached causal store.
#[derive(Clone, Debug)]
pub enum CacheOp {
    /// Read a key.
    Get(String),
    /// Write a key (write-through, serialized at the primary).
    Put(String, Vec<u64>),
}

impl KeyedOp for CacheOp {
    fn object_id(&self) -> ObjectId {
        match self {
            CacheOp::Get(key) | CacheOp::Put(key, _) => ObjectId::from_bytes(key.as_bytes()),
        }
    }
}

struct Queued {
    op: CacheOp,
    upcall: Upcall<Option<Item>>,
    levels: Vec<ConsistencyLevel>,
}

type OpQueue = Arc<Mutex<VecDeque<Queued>>>;
type Cache = Arc<Mutex<HashMap<String, Item>>>;

/// Timing of one completed operation, per level, in virtual milliseconds.
#[derive(Clone, Debug, Default)]
pub struct LevelTiming {
    /// (level name, milliseconds after submission) per delivered view.
    pub views: Vec<(&'static str, f64)>,
}

type Timings = Arc<Mutex<Vec<LevelTiming>>>;

const KICK: u64 = u64::MAX - 1;

struct GwPending {
    upcall: Upcall<Option<Item>>,
    key: String,
    want_causal: bool,
    want_strong: bool,
    start: SimTime,
    timing: LevelTiming,
    items_written: Option<Vec<u64>>,
}

struct Gateway {
    backup: NodeId,
    primary: NodeId,
    cache: Cache,
    queue: OpQueue,
    timings: Timings,
    next_seq: u64,
    pending: HashMap<OpId, GwPending>,
    /// Client-side deadline per operation; `None` waits forever (the
    /// fault-free default).
    client_timeout: Option<SimDuration>,
    timer_ops: HashMap<u64, OpId>,
    next_timer: u64,
}

impl Gateway {
    fn arm_client_timeout(&mut self, ctx: &mut Ctx<'_, Msg>, op: OpId) {
        if let Some(d) = self.client_timeout {
            let token = self.next_timer;
            self.next_timer += 1;
            self.timer_ops.insert(token, op);
            ctx.set_timer(d, Timer(token));
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            let op = OpId {
                client: ctx.id(),
                seq: self.next_seq,
            };
            self.next_seq += 1;
            let has = |l: ConsistencyLevel| q.levels.contains(&l);
            match q.op {
                CacheOp::Get(key) => {
                    let mut timing = LevelTiming::default();
                    if has(ConsistencyLevel::CACHE) {
                        let hit = self.cache.lock().get(&key).cloned();
                        timing.views.push(("cache", 0.0));
                        q.upcall.deliver(hit, ConsistencyLevel::CACHE);
                    }
                    let want_causal = has(ConsistencyLevel::CAUSAL);
                    let want_strong = has(ConsistencyLevel::STRONG);
                    if !want_causal && !want_strong {
                        self.timings.lock().push(timing);
                        continue;
                    }
                    if want_causal {
                        ctx.send(
                            self.backup,
                            Msg::Read {
                                op,
                                key: key.clone(),
                            },
                        );
                    }
                    if want_strong {
                        ctx.send(
                            self.primary,
                            Msg::Read {
                                op,
                                key: key.clone(),
                            },
                        );
                    }
                    self.pending.insert(
                        op,
                        GwPending {
                            upcall: q.upcall,
                            key,
                            want_causal,
                            want_strong,
                            start: ctx.now(),
                            timing,
                            items_written: None,
                        },
                    );
                    self.arm_client_timeout(ctx, op);
                }
                CacheOp::Put(key, items) => {
                    // Write-through: the cache adopts the value at once
                    // (revision settles when the ack arrives).
                    {
                        let mut c = self.cache.lock();
                        let rev = c.get(&key).map(|i| i.rev + 1).unwrap_or(1);
                        c.insert(
                            key.clone(),
                            Item {
                                rev,
                                items: items.clone(),
                            },
                        );
                    }
                    ctx.send(
                        self.primary,
                        Msg::Write {
                            op,
                            key: key.clone(),
                            items: items.clone(),
                        },
                    );
                    self.pending.insert(
                        op,
                        GwPending {
                            upcall: q.upcall,
                            key,
                            want_causal: false,
                            want_strong: true,
                            start: ctx.now(),
                            timing: LevelTiming::default(),
                            items_written: Some(items),
                        },
                    );
                    self.arm_client_timeout(ctx, op);
                }
            }
        }
    }

    fn refresh_cache(&self, key: &str, data: &Option<Item>) {
        if let Some(item) = data {
            let mut c = self.cache.lock();
            let fresher = c.get(key).map(|cur| item.rev > cur.rev).unwrap_or(true);
            if fresher {
                c.insert(key.to_string(), item.clone());
            }
        }
    }
}

impl Node<Msg> for Gateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::ReadResp {
                op,
                data,
                from_primary,
            } => {
                let action = self.pending.get_mut(&op).map(|p| {
                    let ms = ctx.now().since(p.start).as_millis_f64();
                    if from_primary {
                        p.want_strong = false;
                        p.timing.views.push(("strong", ms));
                    } else {
                        p.want_causal = false;
                        p.timing.views.push(("causal", ms));
                    }
                    (
                        p.key.clone(),
                        p.upcall.clone(),
                        !p.want_strong && !p.want_causal,
                    )
                });
                if let Some((key, up, finished)) = action {
                    let level = if from_primary {
                        ConsistencyLevel::STRONG
                    } else {
                        ConsistencyLevel::CAUSAL
                    };
                    self.refresh_cache(&key, &data);
                    up.deliver(data, level);
                    if finished {
                        let p = self.pending.remove(&op).expect("present");
                        self.timings.lock().push(p.timing);
                    }
                }
            }
            Msg::WriteAck { op, rev } => {
                if let Some(mut p) = self.pending.remove(&op) {
                    let ms = ctx.now().since(p.start).as_millis_f64();
                    p.timing.views.push(("strong", ms));
                    let items = p.items_written.take().unwrap_or_default();
                    // Settle the cache revision to the primary's.
                    self.cache.lock().insert(
                        p.key.clone(),
                        Item {
                            rev,
                            items: items.clone(),
                        },
                    );
                    p.upcall
                        .deliver(Some(Item { rev, items }), ConsistencyLevel::STRONG);
                    self.timings.lock().push(p.timing);
                }
            }
            _ => {}
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer.0 == KICK {
            self.drain(ctx);
        } else if let Some(op) = self.timer_ops.remove(&timer.0) {
            // A reply was lost: fail the operation. Views already
            // delivered (cache, causal) stand; the close is exceptional.
            if let Some(p) = self.pending.remove(&op) {
                self.timings.lock().push(p.timing);
                p.upcall.fail(Error::Timeout);
            }
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct NState {
    engine: Engine<Msg>,
    gateway: NodeId,
    replicas: Vec<NodeId>,
}

/// A simulated cached causal store (primary + backups + client cache).
#[derive(Clone)]
pub struct SimCausal {
    state: Arc<Mutex<NState>>,
    queue: OpQueue,
    timings: Timings,
    cache: Cache,
}

impl SimCausal {
    /// Builds the news-reader deployment: primary at `primary_site`,
    /// backups at the remaining paper sites, client (and cache) at
    /// `client_site` reading causally from the nearest backup.
    ///
    /// # Panics
    ///
    /// Panics if a site name is unknown.
    pub fn ec2(primary_site: &str, client_site: &str, seed: u64) -> SimCausal {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = ["FRK", "IRL", "VRG"];
        let primary_idx = sites
            .iter()
            .position(|s| *s == primary_site)
            .expect("known primary site");
        let client_site_id = topo.site_named(client_site).expect("known client site");
        let mut engine = Engine::new(topo, seed);
        let replicas: Vec<NodeId> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let site = engine.topology().site_named(s).expect("site");
                engine.add_node(site, Box::new(CausalReplica::new(i, 3, i == primary_idx)))
            })
            .collect();
        for (i, id) in replicas.iter().enumerate() {
            let peers: Vec<NodeId> = replicas
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            let node = engine.node_as::<CausalReplica>(*id);
            node.set_peers(peers);
            node.set_primary_node(replicas[primary_idx]);
        }
        // The causal backup is the non-primary replica closest to the client.
        let backup = replicas
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != primary_idx)
            .min_by_key(|(_, id)| {
                engine
                    .topology()
                    .base_one_way(client_site_id, engine.site_of(**id))
            })
            .map(|(_, id)| *id)
            .expect("at least one backup");
        let queue: OpQueue = Arc::new(Mutex::new(VecDeque::new()));
        let timings: Timings = Arc::new(Mutex::new(Vec::new()));
        let cache: Cache = Arc::new(Mutex::new(HashMap::new()));
        let gateway = engine.add_node(
            client_site_id,
            Box::new(Gateway {
                backup,
                primary: replicas[primary_idx],
                cache: Arc::clone(&cache),
                queue: Arc::clone(&queue),
                timings: Arc::clone(&timings),
                next_seq: 0,
                pending: HashMap::new(),
                client_timeout: None,
                timer_ops: HashMap::new(),
                next_timer: 0,
            }),
        );
        SimCausal {
            state: Arc::new(Mutex::new(NState {
                engine,
                gateway,
                replicas,
            })),
            queue,
            timings,
            cache,
        }
    }

    /// The Correctables binding.
    pub fn binding(&self) -> CausalBinding {
        CausalBinding {
            store: self.clone(),
        }
    }

    /// Seeds a key on every replica and in the cache.
    pub fn seed(&self, key: &str, rev: u64, items: Vec<u64>) {
        let mut st = self.state.lock();
        let item = Item { rev, items };
        for id in st.replicas.clone() {
            st.engine
                .node_as::<CausalReplica>(id)
                .seed(key, item.clone());
        }
        self.cache.lock().insert(key.to_string(), item);
    }

    /// Seeds a key only on the replicas (cold cache).
    pub fn seed_remote_only(&self, key: &str, rev: u64, items: Vec<u64>) {
        let mut st = self.state.lock();
        let item = Item { rev, items };
        for id in st.replicas.clone() {
            st.engine
                .node_as::<CausalReplica>(id)
                .seed(key, item.clone());
        }
    }

    /// Writes directly at the primary, bypassing the client (models other
    /// users publishing news); backups receive it causally.
    pub fn publish(&self, key: &str, items: Vec<u64>) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        // Find the primary by probing each replica's role flag.
        let primary = {
            let replicas = st.replicas.clone();
            let mut found = replicas[0];
            for id in replicas {
                if st.engine.node_as::<CausalReplica>(id).is_primary {
                    found = id;
                    break;
                }
            }
            found
        };
        st.engine.schedule_message(
            gw,
            primary,
            SimDuration::ZERO,
            Msg::Write {
                op: OpId {
                    client: gw,
                    seq: u64::MAX,
                },
                key: key.to_string(),
                items,
            },
        );
    }

    /// Installs a fault plan on the underlying simulation. Combine with
    /// [`SimCausal::set_client_timeout`] so lost replies fail operations
    /// instead of leaving them open forever.
    pub fn set_faults(&self, faults: Faults) {
        self.state.lock().engine.set_faults(faults);
    }

    /// Sets a client-side deadline for every subsequently submitted
    /// operation (fails with `Error::Timeout` when it passes without the
    /// final view).
    pub fn set_client_timeout(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.engine.node_as::<Gateway>(gw).client_timeout = Some(d);
    }

    /// The replica node ids (FRK/IRL/VRG order).
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.state.lock().replicas.clone()
    }

    /// All site ids of the deployment's topology.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let st = self.state.lock();
        (0..st.engine.topology().len()).map(SiteId).collect()
    }

    /// Drives the simulation until all submitted operations resolve —
    /// including failing by client timeout when faults lost their
    /// replies.
    ///
    /// Runs in bounded virtual-time slices rather than to full quiescence:
    /// the backups' anti-entropy retry timer keeps the event queue busy
    /// while a causal gap persists (e.g. under an active partition), so
    /// "no events left" is not a usable stop condition.
    ///
    /// # Panics
    ///
    /// Panics if operations fail to resolve within a very large horizon
    /// (faults active without a client timeout, or a protocol bug).
    pub fn settle(&self) {
        let mut st = self.state.lock();
        let slice = SimDuration::from_millis(5);
        for _ in 0..2_000_000 {
            let gw = st.gateway;
            st.engine.schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
            let limit = st.engine.now() + slice;
            st.engine.run_until(limit);
            let pending_empty = st.engine.node_as::<Gateway>(gw).pending.is_empty();
            if pending_empty && self.queue.lock().is_empty() {
                return;
            }
        }
        panic!(
            "causal-store operations cannot settle (lost replies without a \
             client timeout? see SimCausal::set_client_timeout)"
        );
    }

    /// Runs the simulation for `d` without submitting anything (lets
    /// causal propagation progress).
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let until = st.engine.now() + d;
        st.engine.run_until(until);
    }

    /// Timings of completed operations.
    pub fn timings(&self) -> Vec<LevelTiming> {
        self.timings.lock().clone()
    }

    /// Direct cache inspection (tests).
    pub fn cached(&self, key: &str) -> Option<Item> {
        self.cache.lock().get(key).cloned()
    }
}

/// `Binding` implementation over [`SimCausal`].
#[derive(Clone)]
pub struct CausalBinding {
    store: SimCausal,
}

impl Binding for CausalBinding {
    type Op = CacheOp;
    type Val = Option<Item>;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[
            ConsistencyLevel::CACHE,
            ConsistencyLevel::CAUSAL,
            ConsistencyLevel::STRONG,
        ])
    }

    fn submit(&self, op: CacheOp, levels: &[ConsistencyLevel], upcall: Upcall<Option<Item>>) {
        self.store.queue.lock().push_back(Queued {
            op,
            upcall,
            levels: levels.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::Client;

    #[test]
    fn three_views_arrive_in_level_order() {
        let s = SimCausal::ec2("VRG", "IRL", 3);
        s.seed("news", 1, vec![100]);
        let client = Client::new(s.binding());
        let c = client.invoke(CacheOp::Get("news".into()));
        s.settle();
        let prelims = c.preliminary_views();
        assert_eq!(prelims.len(), 2);
        assert_eq!(prelims[0].level, ConsistencyLevel::CACHE);
        assert_eq!(prelims[1].level, ConsistencyLevel::CAUSAL);
        assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::STRONG);
        // Cache is instant; causal ~RTT(IRL, FRK); strong ~RTT(IRL, VRG).
        let t = &s.timings()[0];
        assert_eq!(t.views[0], ("cache", 0.0));
        assert!(t.views[1].1 < 30.0, "causal {:?}", t.views);
        assert!(t.views[2].1 > 70.0, "strong {:?}", t.views);
    }

    #[test]
    fn cache_miss_reads_none_then_refreshes() {
        let s = SimCausal::ec2("VRG", "IRL", 4);
        s.seed_remote_only("news", 3, vec![1, 2]);
        let client = Client::new(s.binding());
        let c = client.invoke(CacheOp::Get("news".into()));
        s.settle();
        assert_eq!(c.preliminary_views()[0].value, None, "cold cache");
        assert!(c.final_view().unwrap().value.is_some());
        // The read refreshed the cache.
        assert_eq!(s.cached("news").map(|i| i.rev), Some(3));
    }

    #[test]
    fn write_through_updates_cache_and_primary() {
        let s = SimCausal::ec2("VRG", "IRL", 5);
        let client = Client::new(s.binding());
        let w = client.invoke_strong(CacheOp::Put("news".into(), vec![9]));
        s.settle();
        assert_eq!(w.final_view().unwrap().value.map(|i| i.rev), Some(1));
        assert_eq!(s.cached("news").map(|i| i.items), Some(vec![9]));
        // Strong read sees it immediately.
        let r = client.invoke_strong(CacheOp::Get("news".into()));
        s.settle();
        assert_eq!(
            r.final_view().unwrap().value.map(|i| i.items),
            Some(vec![9])
        );
    }

    #[test]
    fn stale_cache_diverges_from_primary_until_propagation() {
        let s = SimCausal::ec2("VRG", "IRL", 6);
        s.seed("news", 1, vec![1]);
        // Someone else publishes fresher news directly at the primary.
        s.publish("news", vec![1, 2]);
        s.advance(SimDuration::from_millis(1));
        let client = Client::new(s.binding());
        let c = client.invoke(CacheOp::Get("news".into()));
        s.settle();
        let views = c.preliminary_views();
        // Cache still shows the old revision; the final shows the new one.
        assert_eq!(
            views[0].value.as_ref().map(|i| i.items.clone()),
            Some(vec![1])
        );
        assert_eq!(
            c.final_view().unwrap().value.map(|i| i.items),
            Some(vec![1, 2])
        );
    }

    #[test]
    fn invoke_weak_is_cache_only_and_instant() {
        let s = SimCausal::ec2("VRG", "IRL", 7);
        s.seed("k", 2, vec![5]);
        let client = Client::new(s.binding());
        let c = client.invoke_weak(CacheOp::Get("k".into()));
        s.settle();
        let v = c.final_view().unwrap();
        assert_eq!(v.level, ConsistencyLevel::CACHE);
        assert_eq!(v.value.map(|i| i.items), Some(vec![5]));
    }
}
