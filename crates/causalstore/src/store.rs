//! Causally consistent replicated store: replicas, messages, and the
//! causal broadcast.
//!
//! Writes are serialized at a primary replica (which therefore holds the
//! freshest state and serves the `Strong` level); updates propagate to
//! backups through a causal broadcast (CBCAST-style buffering on vector
//! clocks), so backups are causally consistent but may lag — they serve
//! the `Causal` level.

use std::any::Any;
use std::collections::BTreeMap;

use simnet::{Ctx, Node, NodeId, SimDuration, Timer, Wire};

use crate::vc::VectorClock;

/// Timer token of the anti-entropy retry (re-armed only while updates
/// are buffered behind a causal gap).
const SYNC_RETRY: Timer = Timer(u64::MAX - 2);

/// How often a gapped backup re-requests a state transfer (the first
/// request goes out immediately when the gap is detected).
const SYNC_RETRY_EVERY: SimDuration = SimDuration::from_millis(200);

/// Minimum spacing of read-triggered anti-entropy probes. Gap-triggered
/// sync only fires when a causally *later* update arrives, so a lost
/// **final** update would otherwise leave a backup stale forever; every
/// causal read therefore also probes the primary, rate-limited to this
/// interval. (Reads drive it, so idle engines still quiesce — no
/// periodic timer.)
const READ_SYNC_EVERY: SimDuration = SimDuration::from_millis(500);

/// One causally premature update parked until its dependencies arrive
/// (or a state transfer covers it).
struct BufferedUpdate {
    sender: usize,
    from: NodeId,
    key: String,
    item: Item,
    stamp: VectorClock,
}

/// A stored value: a revision counter plus a list of item ids (the news
/// reader's items) — revisions make freshness comparisons trivial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// Monotonic per-key revision assigned by the primary.
    pub rev: u64,
    /// Application payload (e.g. news-item ids).
    pub items: Vec<u64>,
}

/// One operation id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// Issuing client node.
    pub client: NodeId,
    /// Per-client sequence.
    pub seq: u64,
}

/// Protocol messages.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → replica: read `key`.
    Read {
        /// Operation id.
        op: OpId,
        /// Key.
        key: String,
    },
    /// Replica → client: read result.
    ReadResp {
        /// Operation id.
        op: OpId,
        /// The value, if present.
        data: Option<Item>,
        /// Whether this replica is the primary (strong view).
        from_primary: bool,
    },
    /// Client → primary: write.
    Write {
        /// Operation id.
        op: OpId,
        /// Key.
        key: String,
        /// New payload.
        items: Vec<u64>,
    },
    /// Primary → client: write acknowledged.
    WriteAck {
        /// Operation id.
        op: OpId,
        /// The revision assigned.
        rev: u64,
    },
    /// Primary → backups: causal update.
    Repl {
        /// Index of the sending replica.
        sender: usize,
        /// Key.
        key: String,
        /// Value.
        data: Item,
        /// The update's vector clock stamp.
        stamp: VectorClock,
    },
    /// Backup → update sender: a causal gap was detected (an update
    /// arrived that is not yet deliverable), please state-transfer. The
    /// oracle surfaced why this is needed: without it a single dropped
    /// `Repl` leaves a backup stale *forever* — weak views then never
    /// converge to the strong view, breaking the ICG promise.
    SyncReq,
    /// Reply to [`Msg::SyncReq`]: a causally closed state snapshot.
    SyncResp {
        /// Every key's current item at the responder.
        state: Vec<(String, Item)>,
        /// The responder's clock at snapshot time.
        clock: VectorClock,
    },
}

impl Wire for Msg {
    fn wire_size(&self) -> usize {
        60 + match self {
            Msg::Read { key, .. } => key.len() + 13,
            Msg::ReadResp { data, .. } => {
                13 + data.as_ref().map(|d| d.items.len() * 8 + 12).unwrap_or(1)
            }
            Msg::Write { key, items, .. } => key.len() + items.len() * 8 + 13,
            Msg::WriteAck { .. } => 21,
            Msg::Repl {
                key, data, stamp, ..
            } => key.len() + data.items.len() * 8 + 12 + stamp.len() * 8,
            Msg::SyncReq => 1,
            Msg::SyncResp { state, clock } => {
                state
                    .iter()
                    .map(|(k, item)| k.len() + item.items.len() * 8 + 12)
                    .sum::<usize>()
                    + clock.len() * 8
            }
        }
    }

    fn category(&self) -> &'static str {
        match self {
            Msg::Read { .. } => "c-read",
            Msg::ReadResp { .. } => "c-read-resp",
            Msg::Write { .. } => "c-write",
            Msg::WriteAck { .. } => "c-write-ack",
            Msg::Repl { .. } => "c-repl",
            Msg::SyncReq => "c-sync-req",
            Msg::SyncResp { .. } => "c-sync-resp",
        }
    }
}

/// A causal-store replica.
pub struct CausalReplica {
    /// This replica's index.
    pub index: usize,
    /// Whether this replica is the primary (serializes writes).
    pub is_primary: bool,
    peers: Vec<NodeId>,
    /// Local state. Ordered map: `SyncResp` snapshots are built by
    /// iterating it, and message payloads must not depend on a
    /// per-process hasher seed or (seed, schedule) replay diverges.
    pub data: BTreeMap<String, Item>,
    /// This replica's causal clock.
    pub clock: VectorClock,
    /// Updates waiting for their causal dependencies.
    buffered: Vec<BufferedUpdate>,
    /// Whether the anti-entropy retry timer is currently armed.
    sync_armed: bool,
    /// The primary's node id, once wired; enables read-triggered sync.
    primary_node: Option<NodeId>,
    /// When this backup last probed the primary from its read path.
    last_read_sync: Option<simnet::SimTime>,
    /// State transfers served (observability for tests).
    pub syncs_served: u64,
    read_service: SimDuration,
    write_service: SimDuration,
}

impl CausalReplica {
    /// Creates replica `index` of `n`.
    pub fn new(index: usize, n: usize, is_primary: bool) -> Self {
        CausalReplica {
            index,
            is_primary,
            peers: Vec::new(),
            data: BTreeMap::new(),
            clock: VectorClock::zero(n),
            buffered: Vec::new(),
            sync_armed: false,
            primary_node: None,
            last_read_sync: None,
            syncs_served: 0,
            read_service: SimDuration::from_micros(100),
            write_service: SimDuration::from_micros(200),
        }
    }

    /// Wires the other replicas.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// Wires the primary's node id (enables read-triggered anti-entropy
    /// on backups).
    pub fn set_primary_node(&mut self, primary: NodeId) {
        self.primary_node = Some(primary);
    }

    /// Seeds a key directly (converged test/bootstrap state).
    pub fn seed(&mut self, key: &str, item: Item) {
        self.data.insert(key.to_string(), item);
    }

    fn apply_buffered(&mut self) {
        // A state transfer may have covered buffered updates entirely
        // (their stamp no longer exceeds the clock): purge those first or
        // they would sit — undeliverable — in the buffer forever.
        let clock = self.clock.clone();
        self.buffered
            .retain(|b| b.stamp.0[b.sender] > clock.0[b.sender]);
        loop {
            let Some(pos) = self
                .buffered
                .iter()
                .position(|b| self.clock.deliverable(&b.stamp, b.sender))
            else {
                return;
            };
            let b = self.buffered.swap_remove(pos);
            self.apply_update(&b.key, b.item, &b.stamp);
        }
    }

    fn apply_update(&mut self, key: &str, item: Item, stamp: &VectorClock) {
        let fresher = self
            .data
            .get(key)
            .map(|cur| item.rev > cur.rev)
            .unwrap_or(true);
        if fresher {
            self.data.insert(key.to_string(), item);
        }
        self.clock.merge(stamp);
    }
}

impl Node<Msg> for CausalReplica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Read { op, key } => {
                let data = self.data.get(&key).cloned();
                ctx.send(
                    from,
                    Msg::ReadResp {
                        op,
                        data,
                        from_primary: self.is_primary,
                    },
                );
                // Read-triggered anti-entropy: a lost *final* update never
                // produces a detectable gap, so backups probe the primary
                // from the read path (rate-limited). The answer can only
                // freshen state, so this read's reply is untouched and the
                // *next* read converges.
                if !self.is_primary {
                    if let Some(primary) = self.primary_node {
                        let due = self
                            .last_read_sync
                            .map(|t| ctx.now().since(t) >= READ_SYNC_EVERY)
                            .unwrap_or(true);
                        if due {
                            self.last_read_sync = Some(ctx.now());
                            ctx.send(primary, Msg::SyncReq);
                        }
                    }
                }
            }
            Msg::Write { op, key, items } => {
                debug_assert!(self.is_primary, "writes must go to the primary");
                let rev = self.data.get(&key).map(|d| d.rev + 1).unwrap_or(1);
                let item = Item { rev, items };
                self.clock.bump(self.index);
                let stamp = self.clock.clone();
                self.data.insert(key.clone(), item.clone());
                for p in self.peers.clone() {
                    ctx.send(
                        p,
                        Msg::Repl {
                            sender: self.index,
                            key: key.clone(),
                            data: item.clone(),
                            stamp: stamp.clone(),
                        },
                    );
                }
                ctx.send(from, Msg::WriteAck { op, rev });
            }
            Msg::Repl {
                sender,
                key,
                data,
                stamp,
            } => {
                if self.clock.deliverable(&stamp, sender) {
                    self.apply_update(&key, data, &stamp);
                    self.apply_buffered();
                } else if stamp.0[sender] > self.clock.0[sender] {
                    // A gap: at least one earlier update from this sender
                    // never arrived (lost, or still in flight). Buffer,
                    // and ask the sender for a state transfer; retry on a
                    // timer until the gap closes (the request itself may
                    // be lost too).
                    self.buffered.push(BufferedUpdate {
                        sender,
                        from,
                        key,
                        item: data,
                        stamp,
                    });
                    ctx.send(from, Msg::SyncReq);
                    if !self.sync_armed {
                        self.sync_armed = true;
                        ctx.set_timer(SYNC_RETRY_EVERY, SYNC_RETRY);
                    }
                }
                // Else: an old duplicate already covered by the clock.
            }
            Msg::SyncReq => {
                self.syncs_served += 1;
                ctx.send(
                    from,
                    Msg::SyncResp {
                        state: self
                            .data
                            .iter()
                            .map(|(k, v)| (k.clone(), v.clone()))
                            .collect(),
                        clock: self.clock.clone(),
                    },
                );
            }
            Msg::SyncResp { state, clock } => {
                // Adopt a causally closed snapshot: fresher items plus the
                // responder's clock, then drain whatever the buffer still
                // holds beyond the snapshot.
                for (key, item) in state {
                    let fresher = self
                        .data
                        .get(&key)
                        .map(|cur| item.rev > cur.rev)
                        .unwrap_or(true);
                    if fresher {
                        self.data.insert(key, item);
                    }
                }
                self.clock.merge(&clock);
                self.apply_buffered();
            }
            Msg::ReadResp { .. } | Msg::WriteAck { .. } => {
                debug_assert!(false, "replica received a client-bound message");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, timer: Timer) {
        if timer != SYNC_RETRY {
            return;
        }
        self.sync_armed = false;
        if let Some(first) = self.buffered.first() {
            ctx.send(first.from, Msg::SyncReq);
            self.sync_armed = true;
            ctx.set_timer(SYNC_RETRY_EVERY, SYNC_RETRY);
        }
    }

    fn service_cost(&self, msg: &Msg) -> SimDuration {
        match msg {
            Msg::Read { .. } | Msg::SyncReq => self.read_service,
            Msg::Write { .. } | Msg::Repl { .. } | Msg::SyncResp { .. } => self.write_service,
            _ => SimDuration::ZERO,
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Engine, SimDuration as D, Topology};

    /// A client that absorbs acknowledgments.
    struct Sink;
    impl Node<Msg> for Sink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build() -> (Engine<Msg>, Vec<NodeId>, NodeId) {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites: Vec<_> = ["FRK", "IRL", "VRG"]
            .iter()
            .map(|n| topo.site_named(n).unwrap())
            .collect();
        let mut eng = Engine::new(topo, 9);
        let ids: Vec<NodeId> = (0..3)
            .map(|i| eng.add_node(sites[i], Box::new(CausalReplica::new(i, 3, i == 0))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let peers: Vec<NodeId> = ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            let node = eng.node_as::<CausalReplica>(*id);
            node.set_peers(peers);
            node.set_primary_node(ids[0]);
        }
        let sink = eng.add_node(sites[0], Box::new(Sink));
        (eng, ids, sink)
    }

    #[test]
    fn writes_converge_to_all_backups() {
        let (mut eng, ids, sink) = build();
        // Drive three writes at the primary via external scheduling.
        for seq in 0..3u64 {
            eng.schedule_message(
                sink,
                ids[0],
                D::from_millis(seq),
                Msg::Write {
                    op: OpId { client: sink, seq },
                    key: "k".into(),
                    items: vec![seq],
                },
            );
        }
        eng.run_until_idle(10_000);
        for id in &ids {
            let r = eng.node_as::<CausalReplica>(*id);
            assert_eq!(r.data.get("k").map(|d| d.rev), Some(3));
            assert_eq!(r.data.get("k").map(|d| d.items.clone()), Some(vec![2]));
        }
    }

    #[test]
    fn causal_order_is_respected_despite_jitter() {
        let (mut eng, ids, sink) = build();
        // 20 causally ordered writes; the network may reorder Repl
        // messages, the buffer must restore order.
        for seq in 0..20u64 {
            eng.schedule_message(
                sink,
                ids[0],
                D::from_micros(seq * 50),
                Msg::Write {
                    op: OpId { client: sink, seq },
                    key: format!("k{}", seq % 3),
                    items: vec![seq],
                },
            );
        }
        eng.run_until_idle(100_000);
        for id in &ids {
            let r = eng.node_as::<CausalReplica>(*id);
            // Every replica ends with the final value of each key
            // (the last seq hitting k1 is 19, k0 is 18, k2 is 17).
            assert_eq!(r.data.get("k1").unwrap().items, vec![19]);
            assert_eq!(r.data.get("k0").unwrap().items, vec![18]);
            assert_eq!(r.data.get("k2").unwrap().items, vec![17]);
            assert_eq!(r.clock.0[0], 20);
            assert!(r.buffered.is_empty(), "nothing left buffered");
        }
    }

    #[test]
    fn lost_repl_heals_via_state_transfer() {
        use simnet::{Faults, SimTime};
        let (mut eng, ids, sink) = build();
        // The VRG backup is down while the first write replicates: its
        // Repl is lost for good (the primary does not retransmit).
        eng.set_faults(Faults::none().with_downtime(
            ids[2],
            SimTime::ZERO,
            SimTime::ZERO + D::from_millis(60),
        ));
        for (seq, delay_ms) in [(0u64, 0u64), (1, 80)] {
            eng.schedule_message(
                sink,
                ids[0],
                D::from_millis(delay_ms),
                Msg::Write {
                    op: OpId { client: sink, seq },
                    key: "k".into(),
                    items: vec![seq],
                },
            );
        }
        eng.run_until_idle(100_000);
        // The second write's Repl arrived with a causal gap; without the
        // SyncReq/SyncResp state transfer the backup would be stuck at
        // rev 0 (nothing applied) forever — the convergence bug the
        // oracle surfaced.
        let served = eng.node_as::<CausalReplica>(ids[0]).syncs_served;
        assert!(served > 0, "no state transfer happened");
        let backup = eng.node_as::<CausalReplica>(ids[2]);
        assert_eq!(backup.data.get("k").map(|d| d.rev), Some(2));
        assert!(backup.buffered.is_empty());
    }

    #[test]
    fn lost_final_repl_heals_on_subsequent_read() {
        use simnet::{Faults, SimTime};
        let (mut eng, ids, sink) = build();
        // The *last* write's Repl to the VRG backup is lost and nothing
        // is written afterwards: no causal gap ever becomes detectable,
        // so only the read-triggered probe can heal this.
        eng.set_faults(Faults::none().with_downtime(
            ids[2],
            SimTime::ZERO,
            SimTime::ZERO + D::from_millis(60),
        ));
        eng.schedule_message(
            sink,
            ids[0],
            D::ZERO,
            Msg::Write {
                op: OpId {
                    client: sink,
                    seq: 0,
                },
                key: "k".into(),
                items: vec![7],
            },
        );
        eng.run_until_idle(10_000);
        assert!(
            !eng.node_as::<CausalReplica>(ids[2]).data.contains_key("k"),
            "precondition: the backup must actually have missed the write"
        );
        // A causal read at the stale backup serves the stale answer but
        // probes the primary; once the state transfer lands, the backup
        // has converged.
        eng.schedule_message(
            sink,
            ids[2],
            D::from_millis(100),
            Msg::Read {
                op: OpId {
                    client: sink,
                    seq: 1,
                },
                key: "k".into(),
            },
        );
        eng.run_until_idle(10_000);
        let backup = eng.node_as::<CausalReplica>(ids[2]);
        assert_eq!(backup.data.get("k").map(|d| d.rev), Some(1));
    }

    #[test]
    fn backup_lags_primary_within_propagation_window() {
        let (mut eng, ids, sink) = build();
        eng.schedule_message(
            sink,
            ids[0],
            D::ZERO,
            Msg::Write {
                op: OpId {
                    client: sink,
                    seq: 0,
                },
                key: "k".into(),
                items: vec![7],
            },
        );
        // Run only 1 ms: the write applied at the primary but cannot have
        // reached VRG (41.5 ms away).
        eng.run_until(simnet::SimTime::ZERO + D::from_millis(1));
        assert!(eng.node_as::<CausalReplica>(ids[0]).data.contains_key("k"));
        assert!(!eng.node_as::<CausalReplica>(ids[2]).data.contains_key("k"));
        eng.run_until_idle(1_000);
        assert!(eng.node_as::<CausalReplica>(ids[2]).data.contains_key("k"));
    }
}
