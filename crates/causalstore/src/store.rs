//! Causally consistent replicated store: replicas, messages, and the
//! causal broadcast.
//!
//! Writes are serialized at a primary replica (which therefore holds the
//! freshest state and serves the `Strong` level); updates propagate to
//! backups through a causal broadcast (CBCAST-style buffering on vector
//! clocks), so backups are causally consistent but may lag — they serve
//! the `Causal` level.

use std::any::Any;
use std::collections::HashMap;

use simnet::{Ctx, Node, NodeId, SimDuration, Wire};

use crate::vc::VectorClock;

/// A stored value: a revision counter plus a list of item ids (the news
/// reader's items) — revisions make freshness comparisons trivial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// Monotonic per-key revision assigned by the primary.
    pub rev: u64,
    /// Application payload (e.g. news-item ids).
    pub items: Vec<u64>,
}

/// One operation id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpId {
    /// Issuing client node.
    pub client: NodeId,
    /// Per-client sequence.
    pub seq: u64,
}

/// Protocol messages.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Client → replica: read `key`.
    Read {
        /// Operation id.
        op: OpId,
        /// Key.
        key: String,
    },
    /// Replica → client: read result.
    ReadResp {
        /// Operation id.
        op: OpId,
        /// The value, if present.
        data: Option<Item>,
        /// Whether this replica is the primary (strong view).
        from_primary: bool,
    },
    /// Client → primary: write.
    Write {
        /// Operation id.
        op: OpId,
        /// Key.
        key: String,
        /// New payload.
        items: Vec<u64>,
    },
    /// Primary → client: write acknowledged.
    WriteAck {
        /// Operation id.
        op: OpId,
        /// The revision assigned.
        rev: u64,
    },
    /// Primary → backups: causal update.
    Repl {
        /// Index of the sending replica.
        sender: usize,
        /// Key.
        key: String,
        /// Value.
        data: Item,
        /// The update's vector clock stamp.
        stamp: VectorClock,
    },
}

impl Wire for Msg {
    fn wire_size(&self) -> usize {
        60 + match self {
            Msg::Read { key, .. } => key.len() + 13,
            Msg::ReadResp { data, .. } => {
                13 + data.as_ref().map(|d| d.items.len() * 8 + 12).unwrap_or(1)
            }
            Msg::Write { key, items, .. } => key.len() + items.len() * 8 + 13,
            Msg::WriteAck { .. } => 21,
            Msg::Repl {
                key, data, stamp, ..
            } => key.len() + data.items.len() * 8 + 12 + stamp.len() * 8,
        }
    }

    fn category(&self) -> &'static str {
        match self {
            Msg::Read { .. } => "c-read",
            Msg::ReadResp { .. } => "c-read-resp",
            Msg::Write { .. } => "c-write",
            Msg::WriteAck { .. } => "c-write-ack",
            Msg::Repl { .. } => "c-repl",
        }
    }
}

/// A causal-store replica.
pub struct CausalReplica {
    /// This replica's index.
    pub index: usize,
    /// Whether this replica is the primary (serializes writes).
    pub is_primary: bool,
    peers: Vec<NodeId>,
    /// Local state.
    pub data: HashMap<String, Item>,
    /// This replica's causal clock.
    pub clock: VectorClock,
    /// Updates waiting for their causal dependencies.
    buffered: Vec<(usize, String, Item, VectorClock)>,
    read_service: SimDuration,
    write_service: SimDuration,
}

impl CausalReplica {
    /// Creates replica `index` of `n`.
    pub fn new(index: usize, n: usize, is_primary: bool) -> Self {
        CausalReplica {
            index,
            is_primary,
            peers: Vec::new(),
            data: HashMap::new(),
            clock: VectorClock::zero(n),
            buffered: Vec::new(),
            read_service: SimDuration::from_micros(100),
            write_service: SimDuration::from_micros(200),
        }
    }

    /// Wires the other replicas.
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        self.peers = peers;
    }

    /// Seeds a key directly (converged test/bootstrap state).
    pub fn seed(&mut self, key: &str, item: Item) {
        self.data.insert(key.to_string(), item);
    }

    fn apply_buffered(&mut self) {
        loop {
            let Some(pos) = self
                .buffered
                .iter()
                .position(|(s, _, _, stamp)| self.clock.deliverable(stamp, *s))
            else {
                return;
            };
            let (_, key, item, stamp) = self.buffered.swap_remove(pos);
            self.apply_update(&key, item, &stamp);
        }
    }

    fn apply_update(&mut self, key: &str, item: Item, stamp: &VectorClock) {
        let fresher = self
            .data
            .get(key)
            .map(|cur| item.rev > cur.rev)
            .unwrap_or(true);
        if fresher {
            self.data.insert(key.to_string(), item);
        }
        self.clock.merge(stamp);
    }
}

impl Node<Msg> for CausalReplica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Read { op, key } => {
                let data = self.data.get(&key).cloned();
                ctx.send(
                    from,
                    Msg::ReadResp {
                        op,
                        data,
                        from_primary: self.is_primary,
                    },
                );
            }
            Msg::Write { op, key, items } => {
                debug_assert!(self.is_primary, "writes must go to the primary");
                let rev = self.data.get(&key).map(|d| d.rev + 1).unwrap_or(1);
                let item = Item { rev, items };
                self.clock.bump(self.index);
                let stamp = self.clock.clone();
                self.data.insert(key.clone(), item.clone());
                for p in self.peers.clone() {
                    ctx.send(
                        p,
                        Msg::Repl {
                            sender: self.index,
                            key: key.clone(),
                            data: item.clone(),
                            stamp: stamp.clone(),
                        },
                    );
                }
                ctx.send(from, Msg::WriteAck { op, rev });
            }
            Msg::Repl {
                sender,
                key,
                data,
                stamp,
            } => {
                if self.clock.deliverable(&stamp, sender) {
                    self.apply_update(&key, data, &stamp);
                    self.apply_buffered();
                } else {
                    self.buffered.push((sender, key, data, stamp));
                }
            }
            Msg::ReadResp { .. } | Msg::WriteAck { .. } => {
                debug_assert!(false, "replica received a client-bound message");
            }
        }
    }

    fn service_cost(&self, msg: &Msg) -> SimDuration {
        match msg {
            Msg::Read { .. } => self.read_service,
            Msg::Write { .. } | Msg::Repl { .. } => self.write_service,
            _ => SimDuration::ZERO,
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Engine, SimDuration as D, Topology};

    /// A client that absorbs acknowledgments.
    struct Sink;
    impl Node<Msg> for Sink {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build() -> (Engine<Msg>, Vec<NodeId>, NodeId) {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites: Vec<_> = ["FRK", "IRL", "VRG"]
            .iter()
            .map(|n| topo.site_named(n).unwrap())
            .collect();
        let mut eng = Engine::new(topo, 9);
        let ids: Vec<NodeId> = (0..3)
            .map(|i| eng.add_node(sites[i], Box::new(CausalReplica::new(i, 3, i == 0))))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            let peers: Vec<NodeId> = ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            eng.node_as::<CausalReplica>(*id).set_peers(peers);
        }
        let sink = eng.add_node(sites[0], Box::new(Sink));
        (eng, ids, sink)
    }

    #[test]
    fn writes_converge_to_all_backups() {
        let (mut eng, ids, sink) = build();
        // Drive three writes at the primary via external scheduling.
        for seq in 0..3u64 {
            eng.schedule_message(
                sink,
                ids[0],
                D::from_millis(seq),
                Msg::Write {
                    op: OpId { client: sink, seq },
                    key: "k".into(),
                    items: vec![seq],
                },
            );
        }
        eng.run_until_idle(10_000);
        for id in &ids {
            let r = eng.node_as::<CausalReplica>(*id);
            assert_eq!(r.data.get("k").map(|d| d.rev), Some(3));
            assert_eq!(r.data.get("k").map(|d| d.items.clone()), Some(vec![2]));
        }
    }

    #[test]
    fn causal_order_is_respected_despite_jitter() {
        let (mut eng, ids, sink) = build();
        // 20 causally ordered writes; the network may reorder Repl
        // messages, the buffer must restore order.
        for seq in 0..20u64 {
            eng.schedule_message(
                sink,
                ids[0],
                D::from_micros(seq * 50),
                Msg::Write {
                    op: OpId { client: sink, seq },
                    key: format!("k{}", seq % 3),
                    items: vec![seq],
                },
            );
        }
        eng.run_until_idle(100_000);
        for id in &ids {
            let r = eng.node_as::<CausalReplica>(*id);
            // Every replica ends with the final value of each key
            // (the last seq hitting k1 is 19, k0 is 18, k2 is 17).
            assert_eq!(r.data.get("k1").unwrap().items, vec![19]);
            assert_eq!(r.data.get("k0").unwrap().items, vec![18]);
            assert_eq!(r.data.get("k2").unwrap().items, vec![17]);
            assert_eq!(r.clock.0[0], 20);
            assert!(r.buffered.is_empty(), "nothing left buffered");
        }
    }

    #[test]
    fn backup_lags_primary_within_propagation_window() {
        let (mut eng, ids, sink) = build();
        eng.schedule_message(
            sink,
            ids[0],
            D::ZERO,
            Msg::Write {
                op: OpId {
                    client: sink,
                    seq: 0,
                },
                key: "k".into(),
                items: vec![7],
            },
        );
        // Run only 1 ms: the write applied at the primary but cannot have
        // reached VRG (41.5 ms away).
        eng.run_until(simnet::SimTime::ZERO + D::from_millis(1));
        assert!(eng.node_as::<CausalReplica>(ids[0]).data.contains_key("k"));
        assert!(!eng.node_as::<CausalReplica>(ids[2]).data.contains_key("k"));
        eng.run_until_idle(1_000);
        assert!(eng.node_as::<CausalReplica>(ids[2]).data.contains_key("k"));
    }
}
