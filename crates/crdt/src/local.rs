//! A synchronous, in-process CRDT shard: the keyed-binding backend for
//! `ShardedBinding` tests.
//!
//! [`LocalCrdt`] serves a configurable slice of the lattice over one
//! [`CrdtState`], with a tunable **freshness lag**: weak views are read
//! from a stale snapshot that trails the fresh state by `lag` applied
//! effects, modeling a replica whose anti-entropy is behind. The
//! strongest served level always reads the fresh state and closes the
//! upcall. Different shards in one router can then answer at different
//! CRDT freshness — exactly the situation `scatter`'s
//! weakest-common-level merge must stay monotone under.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, LevelSet, Upcall};

use crate::object::{CrdtOp, CrdtState, CrdtVal};
use crate::types::{Crdt, EffectCtx};

struct Inner {
    fresh: CrdtState,
    stale: CrdtState,
    /// Effects applied to `fresh` but not yet to `stale`.
    pending: VecDeque<crate::object::CrdtEffect>,
    lag: usize,
    seq: u64,
    lamport: u64,
}

/// A single-process CRDT shard with a freshness-lagged weak view.
#[derive(Clone)]
pub struct LocalCrdt {
    inner: Arc<Mutex<Inner>>,
    levels: LevelSet,
}

impl LocalCrdt {
    /// A shard serving weak + strong, with weak views trailing the
    /// fresh state by `lag` effects.
    pub fn new(lag: usize) -> LocalCrdt {
        Self::with_levels(
            LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG]),
            lag,
        )
    }

    /// A shard serving an arbitrary lattice slice. All levels below the
    /// strongest read the stale snapshot; the strongest reads fresh and
    /// closes.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn with_levels(levels: LevelSet, lag: usize) -> LocalCrdt {
        assert!(!levels.to_vec().is_empty(), "a shard must serve some level");
        LocalCrdt {
            inner: Arc::new(Mutex::new(Inner {
                fresh: CrdtState::new(),
                stale: CrdtState::new(),
                pending: VecDeque::new(),
                lag,
                seq: 0,
                lamport: 0,
            })),
            levels,
        }
    }

    /// The fresh state (test inspection).
    pub fn fresh_state(&self) -> CrdtState {
        self.inner.lock().fresh.clone()
    }
}

impl Binding for LocalCrdt {
    type Op = CrdtOp;
    type Val = CrdtVal;

    fn consistency_levels(&self) -> LevelSet {
        self.levels.clone()
    }

    fn submit(&self, op: CrdtOp, _levels: &[ConsistencyLevel], upcall: Upcall<CrdtVal>) {
        let mut inner = self.inner.lock();
        if !op.is_read() {
            inner.seq += 1;
            inner.lamport += 1;
            let ctx = EffectCtx {
                replica: 0,
                seq: inner.seq,
                lamport: inner.lamport,
            };
            let effect = inner.fresh.prepare(&op, ctx);
            inner.fresh.effect(&effect);
            inner.pending.push_back(effect);
        }
        // Advance the stale snapshot to within `lag` effects.
        while inner.pending.len() > inner.lag {
            let e = inner.pending.pop_front().expect("len checked");
            inner.stale.effect(&e);
        }
        // Deliver every served level ascending; the upcall's own
        // arbitration drops non-requested prelims and closes at the
        // strongest requested one.
        let served = self.levels.to_vec();
        let strongest = *served.last().expect("non-empty by construction");
        for level in served {
            let val = if level == strongest {
                inner.fresh.eval(&op)
            } else {
                inner.stale.eval(&op)
            };
            upcall.deliver(val, level);
        }
    }
}
