//! # icg-crdt — coordination-free CRDT bindings
//!
//! Grounds the weak end of the Correctables lattice in CRDT theory:
//! weak views become *coordination-free by construction* instead of
//! cheap-by-accident, and their convergence obligations are checked
//! mechanically (the oracle's SEC checker) rather than asserted.
//!
//! The crate has four layers:
//!
//! - [`types`] — hand-rolled CRDTs behind one [`Crdt`] trait that is
//!   both state-based (join-semilattice [`Crdt::merge`]) and op-based
//!   ([`Crdt::prepare`]/[`Crdt::effect`] with a [`Crdt::ready`]
//!   delivery precondition): [`GCounter`]/[`PnCounter`], add-wins
//!   [`OrSet`], [`LwwMap`] — plus [`BrokenCrdt`], the deliberately
//!   non-commutative negative fixture;
//! - [`object`] — [`CrdtState`], the composite keyed store ([`CrdtOp`]
//!   is a `KeyedOp`, so it routes through `ShardedBinding` too);
//! - [`store`] — [`SimCrdtStore`], the simulated three-site deployment
//!   replicating [`CrdtState`] by op-shipping (CBCAST causal delivery)
//!   or state-shipping (full-state merge), with [`CrdtBinding`] serving
//!   weak locally pre-merge and strong at anti-entropy quiescence;
//!   [`local`] is the synchronous single-process variant with a
//!   freshness-lagged weak view for shard-router tests;
//! - [`escrow`] — segmented invariant confluence: [`SimEscrow`] sells
//!   tickets from per-replica escrow segments coordination-free and
//!   pays a transfer round only at segment exhaustion, keeping the
//!   global no-oversell invariant that plain merge cannot.
//!
//! Correctness story (test-first): `tests/prop_crdt.rs` proves the
//! semilattice laws and op-commutativity; the oracle drives both
//! deployments through the seeded fault-schedule explorer and checks
//! strong eventual consistency — eventual visibility, commutativity of
//! concurrent deliveries, convergence of merged states — shrinking any
//! violation to a minimal `(seed, schedule)` repro.

#![warn(missing_docs)]

pub mod escrow;
pub mod local;
pub mod object;
pub mod store;
pub mod types;

pub use escrow::{EscrowBinding, EscrowOp, EscrowReplica, EscrowState, Sale, SimEscrow};
pub use local::LocalCrdt;
pub use object::{CrdtEffect, CrdtOp, CrdtState, CrdtVal};
pub use store::{CrdtBinding, CrdtMsg, CrdtReplica, Repl, SecEntry, SimCrdtStore, Wants};
pub use types::{
    BrokenCrdt, Crdt, EffectCtx, GCounter, LwwMap, MapOp, OrSet, PnCounter, SetOp, Stamp, Tag,
};
