//! The composite keyed CRDT object the simulated deployments replicate.
//!
//! [`CrdtState`] is one replica's whole store: keyed PN-Counters,
//! OR-Sets, and LWW-Maps under a single [`Crdt`] impl, so the
//! replication layer (op-shipping or state-shipping, `store.rs`) and
//! the oracle's SEC checker treat the entire store as one CRDT. Reads
//! prepare to a no-op effect and are answered from [`CrdtState::eval`];
//! writes dispatch to the per-type effect.
//!
//! With [`CrdtState::new_broken`], counter traffic is routed to the
//! deliberately non-commutative [`BrokenCrdt`] instead — the negative
//! fixture the oracle must reject.
//!
//! This file is on the lint's `panic_path` list — same fail-soft rules
//! as `types.rs`.

use std::collections::BTreeMap;

use correctables::{KeyedOp, ObjectId};

use crate::types::{
    BrokenCrdt, BrokenSet, Crdt, EffectCtx, LwwMap, LwwPut, MapOp, OrSet, PnCounter, PnDelta,
    SetEffect, SetOp,
};

/// Client operations over the keyed CRDT store. Keys are `u64`s (as in
/// the shard crate's `KvOp`); each key independently names one counter,
/// one set, or one map — the namespaces are disjoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrdtOp {
    /// Add a (possibly negative) delta to counter `key`.
    CtrAdd(u64, i64),
    /// Read counter `key`.
    CtrGet(u64),
    /// Insert `elem` into set `key`.
    SetAdd(u64, u64),
    /// Remove `elem` from set `key` (observed-remove).
    SetRemove(u64, u64),
    /// Membership test for `elem` in set `key`.
    SetContains(u64, u64),
    /// Write `field = value` in map `key` (last writer wins).
    MapPut(u64, u64, u64),
    /// Read `field` from map `key`.
    MapGet(u64, u64),
}

impl CrdtOp {
    /// The store key this operation touches.
    pub fn key(&self) -> u64 {
        match self {
            CrdtOp::CtrAdd(k, _)
            | CrdtOp::CtrGet(k)
            | CrdtOp::SetAdd(k, _)
            | CrdtOp::SetRemove(k, _)
            | CrdtOp::SetContains(k, _)
            | CrdtOp::MapPut(k, _, _)
            | CrdtOp::MapGet(k, _) => *k,
        }
    }

    /// Whether this is a read (prepares to [`CrdtEffect::Nop`]).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            CrdtOp::CtrGet(_) | CrdtOp::SetContains(_, _) | CrdtOp::MapGet(_, _)
        )
    }
}

impl KeyedOp for CrdtOp {
    fn object_id(&self) -> ObjectId {
        ObjectId(self.key())
    }
}

/// The value a [`CrdtOp`] evaluates to against one replica state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrdtVal {
    /// Counter reads and writes (the counter value).
    Int(i64),
    /// Set membership.
    Bool(bool),
    /// Map field reads and writes.
    Entry(Option<u64>),
}

/// The downstream effect of one [`CrdtOp`], tagged with its key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrdtEffect {
    /// Counter delta.
    Ctr(u64, PnDelta),
    /// Set add/remove.
    Set(u64, SetEffect<u64>),
    /// Map put.
    Map(u64, LwwPut),
    /// Broken-counter overwrite (negative fixture only).
    BrokenCtr(u64, BrokenSet),
    /// Reads ship nothing.
    Nop,
}

/// One replica's entire keyed store, as a single composite [`Crdt`].
#[derive(Clone, Default, PartialEq, Debug)]
pub struct CrdtState {
    broken: bool,
    counters: BTreeMap<u64, PnCounter>,
    sets: BTreeMap<u64, OrSet<u64>>,
    maps: BTreeMap<u64, LwwMap>,
    broken_ctrs: BTreeMap<u64, BrokenCrdt>,
}

impl CrdtState {
    /// An empty, healthy store.
    pub fn new() -> CrdtState {
        CrdtState::default()
    }

    /// An empty store whose counters are [`BrokenCrdt`]s (negative
    /// fixture — non-commutative effects and merge).
    pub fn new_broken() -> CrdtState {
        CrdtState {
            broken: true,
            ..CrdtState::default()
        }
    }

    /// Evaluate an operation against this state (reads and the
    /// post-apply view of writes).
    pub fn eval(&self, op: &CrdtOp) -> CrdtVal {
        match op {
            CrdtOp::CtrAdd(k, _) | CrdtOp::CtrGet(k) => {
                if self.broken {
                    CrdtVal::Int(self.broken_ctrs.get(k).map(|c| c.value()).unwrap_or(0))
                } else {
                    CrdtVal::Int(self.counters.get(k).map(|c| c.value()).unwrap_or(0))
                }
            }
            CrdtOp::SetAdd(k, e) | CrdtOp::SetRemove(k, e) | CrdtOp::SetContains(k, e) => {
                CrdtVal::Bool(self.sets.get(k).is_some_and(|s| s.contains(e)))
            }
            CrdtOp::MapPut(k, f, _) | CrdtOp::MapGet(k, f) => {
                CrdtVal::Entry(self.maps.get(k).and_then(|m| m.get(*f)))
            }
        }
    }
}

impl Crdt for CrdtState {
    type Op = CrdtOp;
    type Effect = CrdtEffect;

    fn prepare(&self, op: &CrdtOp, ctx: EffectCtx) -> CrdtEffect {
        match op {
            CrdtOp::CtrAdd(k, delta) if self.broken => {
                let ctr = self.broken_ctrs.get(k).copied().unwrap_or_default();
                CrdtEffect::BrokenCtr(*k, ctr.prepare(delta, ctx))
            }
            CrdtOp::CtrAdd(k, delta) => {
                let ctr = self.counters.get(k).cloned().unwrap_or_default();
                CrdtEffect::Ctr(*k, ctr.prepare(delta, ctx))
            }
            CrdtOp::SetAdd(k, e) => {
                let set = self.sets.get(k).cloned().unwrap_or_default();
                CrdtEffect::Set(*k, set.prepare(&SetOp::Add(*e), ctx))
            }
            CrdtOp::SetRemove(k, e) => {
                let set = self.sets.get(k).cloned().unwrap_or_default();
                CrdtEffect::Set(*k, set.prepare(&SetOp::Remove(*e), ctx))
            }
            CrdtOp::MapPut(k, f, v) => {
                let map = self.maps.get(k).cloned().unwrap_or_default();
                CrdtEffect::Map(*k, map.prepare(&MapOp::Put(*f, *v), ctx))
            }
            CrdtOp::CtrGet(_) | CrdtOp::SetContains(_, _) | CrdtOp::MapGet(_, _) => CrdtEffect::Nop,
        }
    }

    fn ready(&self, effect: &CrdtEffect) -> bool {
        match effect {
            CrdtEffect::Set(k, e) => self.sets.get(k).cloned().unwrap_or_default().ready(e),
            _ => true,
        }
    }

    fn effect(&mut self, effect: &CrdtEffect) {
        match effect {
            CrdtEffect::Ctr(k, e) => self.counters.entry(*k).or_default().effect(e),
            CrdtEffect::Set(k, e) => self.sets.entry(*k).or_default().effect(e),
            CrdtEffect::Map(k, e) => self.maps.entry(*k).or_default().effect(e),
            CrdtEffect::BrokenCtr(k, e) => self.broken_ctrs.entry(*k).or_default().effect(e),
            CrdtEffect::Nop => {}
        }
    }

    fn merge(&mut self, other: &Self) {
        for (k, c) in &other.counters {
            self.counters.entry(*k).or_default().merge(c);
        }
        for (k, s) in &other.sets {
            self.sets.entry(*k).or_default().merge(s);
        }
        for (k, m) in &other.maps {
            self.maps.entry(*k).or_default().merge(m);
        }
        for (k, c) in &other.broken_ctrs {
            self.broken_ctrs.entry(*k).or_default().merge(c);
        }
        self.broken = self.broken || other.broken;
    }
}
