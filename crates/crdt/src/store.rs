//! The simulated CRDT deployment and its Correctables binding.
//!
//! [`SimCrdtStore`] places three [`CrdtReplica`]s on the paper's EC2
//! sites (FRK/IRL/VRG) plus a client gateway, round-robining
//! submissions across the replicas so the explorer exercises genuinely
//! concurrent multi-origin histories. Two replication modes share one
//! replica type:
//!
//! - **op-shipping** ([`Repl::Op`], CmRDT): the origin prepares an
//!   effect, applies it locally, and broadcasts it; receivers buffer and
//!   causally deliver (CBCAST, reusing `causalstore`'s [`VectorClock`]
//!   rule), gated additionally on the CRDT's own [`Crdt::ready`]
//!   precondition. Anti-entropy retransmits a replica's own effects to
//!   any peer whose acknowledged delivery vector has gaps.
//! - **state-shipping** ([`Repl::State`], CvRDT): the origin applies
//!   locally and broadcasts its full state; receivers [`Crdt::merge`].
//!   Anti-entropy re-broadcasts state while some peer has not covered
//!   this replica's updates.
//!
//! Either way the lattice slice is two levels: **weak** is served
//! locally at the origin, wait-free, before any peer communication —
//! this is the coordination-free path CRDT theory licenses — and
//! **strong** closes once every peer acknowledges having incorporated
//! the update (anti-entropy quiescence for this op), re-evaluated
//! against the by-then-converged state.
//!
//! [`SimCrdtStore::ec2_broken`] swaps in the [`BrokenCrdt`] counters —
//! the negative fixture whose non-commutative effects the oracle's SEC
//! checker must reject.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use causalstore::VectorClock;
use correctables::{Binding, ConsistencyLevel, Error, LevelSet, Upcall};
use simnet::{Ctx, Engine, Faults, Node, NodeId, SimDuration, SiteId, Timer, Topology, Wire};

use crate::object::{CrdtEffect, CrdtOp, CrdtState, CrdtVal};
use crate::types::Crdt;

/// Replication mode of a deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Repl {
    /// Op-based: broadcast effects, causally deliver (CmRDT).
    Op,
    /// State-based: broadcast full states, merge (CvRDT).
    State,
}

/// Client-operation identity at the gateway (its own sequence space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// Which levels one submission wants served.
#[derive(Clone, Copy, Debug, Default)]
pub struct Wants {
    /// Deliver the local, wait-free view.
    pub weak: bool,
    /// Deliver the post-quiescence view.
    pub strong: bool,
}

/// One applied update in a replica's SEC log: identity, causal stamp,
/// and the effect itself. The oracle's SEC checker replays these logs —
/// same entry set in different orders must reach the same state.
#[derive(Clone, Debug)]
pub struct SecEntry {
    /// Index of the origin replica.
    pub origin: usize,
    /// 1-based position in the origin's local submission order.
    pub seq: u64,
    /// Lamport timestamp at the origin.
    pub ts: u64,
    /// Vector clock at the origin at accept time (own entry bumped).
    pub vc: VectorClock,
    /// The prepared downstream effect.
    pub effect: CrdtEffect,
}

impl SecEntry {
    /// Update identity (origin, seq) — unique across the deployment.
    pub fn id(&self) -> (usize, u64) {
        (self.origin, self.seq)
    }
}

/// Protocol messages of the CRDT store.
#[derive(Clone, Debug)]
pub enum CrdtMsg {
    /// Gateway → replica: accept `op` as a new update.
    Submit {
        /// Client operation id (scoped to the gateway).
        op: OpId,
        /// The operation.
        client_op: CrdtOp,
        /// Levels to serve.
        wants: Wants,
    },
    /// Replica → gateway: the wait-free weak view.
    Immediate {
        /// Client operation id.
        op: OpId,
        /// `(level, value)` — at most the weak view.
        views: Vec<(ConsistencyLevel, CrdtVal)>,
        /// Whether strong was not requested (weak closes).
        closing: bool,
    },
    /// Replica → gateway: the post-quiescence strong view.
    Later {
        /// Client operation id.
        op: OpId,
        /// The level of this view (strong).
        level: ConsistencyLevel,
        /// The re-evaluated value.
        val: CrdtVal,
        /// Always true (strong is the strongest served level).
        closing: bool,
    },
    /// Replica → replica (op mode): one effect (also retransmission).
    Effect {
        /// The logged entry.
        entry: SecEntry,
    },
    /// Replica → replica (state mode): full state anti-entropy.
    SyncState {
        /// Index of the sender.
        from: usize,
        /// The sender's full state.
        state: CrdtState,
        /// The sender's incorporated-updates vector.
        seen: VectorClock,
    },
    /// Replica → replica: `from` has incorporated updates up to `seen`.
    Ack {
        /// Index of the acknowledging replica.
        from: usize,
        /// The acker's incorporated-updates vector.
        seen: VectorClock,
    },
}

impl Wire for CrdtMsg {
    fn wire_size(&self) -> usize {
        // A coarse model: fixed framing plus causal stamps; state
        // snapshots are modeled as one word per incorporated update.
        match self {
            CrdtMsg::Submit { .. } => 32,
            CrdtMsg::Immediate { views, .. } => 16 + 16 * views.len(),
            CrdtMsg::Later { .. } => 32,
            CrdtMsg::Effect { entry } => 48 + 8 * entry.vc.len(),
            CrdtMsg::SyncState { seen, .. } => {
                16 + 8 * seen.len() + 8 * seen.0.iter().sum::<u64>() as usize
            }
            CrdtMsg::Ack { seen, .. } => 16 + 8 * seen.len(),
        }
    }

    fn category(&self) -> &'static str {
        match self {
            CrdtMsg::Submit { .. } => "submit",
            CrdtMsg::Immediate { .. } | CrdtMsg::Later { .. } => "reply",
            CrdtMsg::Effect { .. } | CrdtMsg::SyncState { .. } => "gossip",
            CrdtMsg::Ack { .. } => "ack",
        }
    }
}

/// Strong-close bookkeeping for one locally accepted update.
struct OwnOp {
    /// The client to answer once quiescent (`None` after serving).
    client: Option<(OpId, NodeId, CrdtOp)>,
}

/// One replica of the CRDT store.
pub struct CrdtReplica {
    /// This replica's index.
    id: usize,
    /// Replica count.
    n: usize,
    /// Node ids of all replicas, index-aligned (set via `set_peers`).
    peers: Vec<NodeId>,
    /// Replication mode.
    mode: Repl,
    /// The composite CRDT state.
    state: CrdtState,
    /// Incorporated-updates vector: `seen.0[i]` = how many of replica
    /// `i`'s updates are reflected in `state`. In op mode this is the
    /// CBCAST delivery vector; in state mode it rides the merges.
    seen: VectorClock,
    /// Lamport clock.
    lamport: u64,
    /// Own submission count.
    next_seq: u64,
    /// Op mode: effects received but not yet deliverable.
    buffer: Vec<SecEntry>,
    /// Applied updates, in local application order — the SEC log.
    log: Vec<SecEntry>,
    /// Strong-close state per own seq.
    own: BTreeMap<u64, OwnOp>,
    /// Strong reads parked on the write frontier they observed:
    /// `(frontier_seq, client op, gateway, op)`.
    reads: Vec<(u64, OpId, NodeId, CrdtOp)>,
    /// Last acknowledged `seen` vector of each peer.
    peer_seen: Vec<VectorClock>,
    /// Anti-entropy period.
    retransmit_every: SimDuration,
    /// Generation token of the live retransmit timer (stale fires are
    /// ignored; every message receipt arms a fresh generation).
    timer_gen: u64,
}

impl CrdtReplica {
    /// A replica with index `id` out of `n`.
    pub fn new(id: usize, n: usize, mode: Repl, broken: bool) -> Self {
        CrdtReplica {
            id,
            n,
            peers: Vec::new(),
            mode,
            state: if broken {
                CrdtState::new_broken()
            } else {
                CrdtState::new()
            },
            seen: VectorClock::zero(n),
            lamport: 0,
            next_seq: 0,
            buffer: Vec::new(),
            log: Vec::new(),
            own: BTreeMap::new(),
            reads: Vec::new(),
            peer_seen: vec![VectorClock::zero(n); n],
            retransmit_every: SimDuration::from_millis(200),
            timer_gen: 0,
        }
    }

    /// Registers the node ids of all replicas (index-aligned).
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        assert_eq!(peers.len(), self.n, "peer list must cover all replicas");
        self.peers = peers;
    }

    /// The applied-update log in local application order (SEC input).
    pub fn sec_log(&self) -> Vec<SecEntry> {
        self.log.clone()
    }

    /// The current composite state.
    pub fn state(&self) -> CrdtState {
        self.state.clone()
    }

    /// Whether every peer has acknowledged incorporating every update
    /// accepted here.
    fn covered(&self, peer: usize, seq: u64) -> bool {
        self.peer_seen[peer].0[self.id] >= seq
    }

    fn all_covered(&self) -> bool {
        (0..self.n).all(|j| j == self.id || self.covered(j, self.next_seq))
    }

    /// Arms a fresh retransmit-timer generation while some peer lags.
    /// Safe to call on every message: the newest generation supersedes
    /// all pending ones.
    fn arm_timer(&mut self, ctx: &mut Ctx<'_, CrdtMsg>) {
        if !self.all_covered() && self.n > 1 {
            self.timer_gen += 1;
            ctx.set_timer(self.retransmit_every, Timer(self.timer_gen));
        }
    }

    fn broadcast_state(&mut self, ctx: &mut Ctx<'_, CrdtMsg>, only: Option<usize>) {
        for (i, peer) in self.peers.clone().into_iter().enumerate() {
            if i == self.id || only.is_some_and(|o| o != i) {
                continue;
            }
            ctx.send(
                peer,
                CrdtMsg::SyncState {
                    from: self.id,
                    state: self.state.clone(),
                    seen: self.seen.clone(),
                },
            );
        }
    }

    fn accept(
        &mut self,
        ctx: &mut Ctx<'_, CrdtMsg>,
        from: NodeId,
        op: OpId,
        client_op: CrdtOp,
        wants: Wants,
    ) {
        if client_op.is_read() {
            // Reads replicate nothing: the weak view is the local state,
            // the strong view re-reads after quiescence of all *writes*
            // accepted here so far.
            let mut views = Vec::new();
            if wants.weak {
                views.push((ConsistencyLevel::WEAK, self.state.eval(&client_op)));
            }
            let closing = !wants.strong;
            if !views.is_empty() || closing {
                ctx.send(from, CrdtMsg::Immediate { op, views, closing });
            }
            if wants.strong {
                // Park on the current write frontier: the strong read
                // fires once every write accepted here so far is
                // incorporated everywhere.
                self.reads.push((self.next_seq, op, from, client_op));
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            return;
        }
        // Write: stamp, prepare at the pre-apply state, apply locally —
        // the coordination-free fast path.
        self.lamport += 1;
        self.next_seq += 1;
        let ctx_eff = crate::types::EffectCtx {
            replica: self.id,
            seq: self.next_seq,
            lamport: self.lamport,
        };
        let effect = self.state.prepare(&client_op, ctx_eff);
        self.state.effect(&effect);
        self.seen.bump(self.id);
        let entry = SecEntry {
            origin: self.id,
            seq: self.next_seq,
            ts: self.lamport,
            vc: self.seen.clone(),
            effect,
        };
        self.log.push(entry.clone());
        match self.mode {
            Repl::Op => {
                for (i, peer) in self.peers.clone().into_iter().enumerate() {
                    if i != self.id {
                        ctx.send(
                            peer,
                            CrdtMsg::Effect {
                                entry: entry.clone(),
                            },
                        );
                    }
                }
            }
            Repl::State => self.broadcast_state(ctx, None),
        }
        // Weak view: the post-apply local read — read-your-write, no
        // peer communication.
        let mut views = Vec::new();
        if wants.weak {
            views.push((ConsistencyLevel::WEAK, self.state.eval(&client_op)));
        }
        let closing = !wants.strong;
        if !views.is_empty() || closing {
            ctx.send(from, CrdtMsg::Immediate { op, views, closing });
        }
        self.own.insert(
            self.next_seq,
            OwnOp {
                client: wants.strong.then_some((op, from, client_op)),
            },
        );
        // Single-replica deployments have no peers to wait for.
        self.settle_pending(ctx);
        self.arm_timer(ctx);
    }

    /// Op mode: drains the buffer, applying every effect whose causal
    /// dependencies and CRDT precondition are satisfied, then acks the
    /// new incorporated frontier to all peers.
    fn deliver_buffered(&mut self, ctx: &mut Ctx<'_, CrdtMsg>) {
        let before = self.seen.clone();
        while let Some(pos) = self
            .buffer
            .iter()
            .position(|e| self.seen.deliverable(&e.vc, e.origin) && self.state.ready(&e.effect))
        {
            let e = self.buffer.swap_remove(pos);
            self.seen.bump(e.origin);
            self.state.effect(&e.effect);
            self.log.push(e);
        }
        if self.seen != before {
            for (i, peer) in self.peers.clone().into_iter().enumerate() {
                if i != self.id {
                    ctx.send(
                        peer,
                        CrdtMsg::Ack {
                            from: self.id,
                            seen: self.seen.clone(),
                        },
                    );
                }
            }
        }
    }

    /// Fires strong replies for own ops whose quiescence now holds, and
    /// garbage-collects fully covered entries.
    fn settle_pending(&mut self, ctx: &mut Ctx<'_, CrdtMsg>) {
        let mut replies: Vec<(NodeId, CrdtMsg)> = Vec::new();
        let mut done: Vec<u64> = Vec::new();
        let me = self.id;
        let seqs: Vec<u64> = self.own.keys().copied().collect();
        for seq in seqs {
            // Quiescent for seq: every peer has incorporated all our
            // updates through seq (and for reads, seq is the write
            // frontier at submission — all prior writes are stable).
            let quiescent = self.n == 1 || (0..self.n).all(|j| j == me || self.covered(j, seq));
            let e = self.own.get_mut(&seq).expect("listed");
            if let Some((op, gw, client_op)) = e.client {
                if quiescent {
                    replies.push((
                        gw,
                        CrdtMsg::Later {
                            op,
                            level: ConsistencyLevel::STRONG,
                            val: self.state.eval(&client_op),
                            closing: true,
                        },
                    ));
                    e.client = None;
                }
            }
            if e.client.is_none() && quiescent {
                done.push(seq);
            }
        }
        for seq in done {
            self.own.remove(&seq);
        }
        let mut still_parked = Vec::new();
        for (frontier, op, gw, client_op) in std::mem::take(&mut self.reads) {
            let quiescent =
                self.n == 1 || (0..self.n).all(|j| j == me || self.covered(j, frontier));
            if quiescent {
                replies.push((
                    gw,
                    CrdtMsg::Later {
                        op,
                        level: ConsistencyLevel::STRONG,
                        val: self.state.eval(&client_op),
                        closing: true,
                    },
                ));
            } else {
                still_parked.push((frontier, op, gw, client_op));
            }
        }
        self.reads = still_parked;
        for (to, msg) in replies {
            ctx.send(to, msg);
        }
    }
}

impl Node<CrdtMsg> for CrdtReplica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, CrdtMsg>, from: NodeId, msg: CrdtMsg) {
        match msg {
            CrdtMsg::Submit {
                op,
                client_op,
                wants,
            } => self.accept(ctx, from, op, client_op, wants),
            CrdtMsg::Effect { entry } => {
                debug_assert_eq!(self.mode, Repl::Op, "effects only ship in op mode");
                if entry.seq <= self.seen.0[entry.origin] {
                    // Retransmission of something already incorporated:
                    // the origin must have lost our ack — re-ack.
                    ctx.send(
                        self.peers[entry.origin],
                        CrdtMsg::Ack {
                            from: self.id,
                            seen: self.seen.clone(),
                        },
                    );
                    return;
                }
                if self.buffer.iter().any(|e| e.id() == entry.id()) {
                    return; // buffered duplicate
                }
                self.lamport = self.lamport.max(entry.ts) + 1;
                self.buffer.push(entry);
                self.deliver_buffered(ctx);
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            CrdtMsg::SyncState {
                from: i,
                state,
                seen,
            } => {
                debug_assert_eq!(self.mode, Repl::State, "states only ship in state mode");
                self.state.merge(&state);
                self.seen.merge(&seen);
                // The sender has what it sent; what we just merged is
                // also a lower bound on what an ack from us will report.
                self.peer_seen[i].merge(&seen);
                ctx.send(
                    self.peers[i],
                    CrdtMsg::Ack {
                        from: self.id,
                        seen: self.seen.clone(),
                    },
                );
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            CrdtMsg::Ack { from: i, seen } => {
                self.peer_seen[i].merge(&seen);
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            CrdtMsg::Immediate { .. } | CrdtMsg::Later { .. } => {
                debug_assert!(false, "replies are addressed to the gateway");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CrdtMsg>, timer: Timer) {
        if timer.0 != self.timer_gen {
            return; // superseded generation
        }
        match self.mode {
            Repl::Op => {
                // Anti-entropy: re-send own effects any peer has not
                // acknowledged (covers lost effects and lost acks alike).
                for j in 0..self.n {
                    if j == self.id || self.covered(j, self.next_seq) {
                        continue;
                    }
                    let floor = self.peer_seen[j].0[self.id];
                    for e in &self.log {
                        if e.origin == self.id && e.seq > floor {
                            ctx.send(self.peers[j], CrdtMsg::Effect { entry: e.clone() });
                        }
                    }
                }
            }
            Repl::State => {
                for j in 0..self.n {
                    if j != self.id && !self.covered(j, self.next_seq) {
                        self.broadcast_state(ctx, Some(j));
                    }
                }
            }
        }
        self.arm_timer(ctx);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Gateway + deployment
// ---------------------------------------------------------------------

struct Queued {
    op: CrdtOp,
    wants: Wants,
    upcall: Upcall<CrdtVal>,
}

type OpQueue = Arc<Mutex<VecDeque<Queued>>>;

const KICK: u64 = u64::MAX - 1;

struct Gateway {
    replicas: Vec<NodeId>,
    /// Round-robin cursor — each submission originates at the next
    /// replica, modeling independent client processes.
    rr: usize,
    queue: OpQueue,
    next_seq: u64,
    pending: BTreeMap<OpId, Upcall<CrdtVal>>,
    client_timeout: Option<SimDuration>,
    timer_ops: BTreeMap<u64, OpId>,
    next_timer: u64,
}

impl Gateway {
    fn drain(&mut self, ctx: &mut Ctx<'_, CrdtMsg>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            let op = OpId(self.next_seq);
            self.next_seq += 1;
            let target = self.replicas[self.rr % self.replicas.len()];
            self.rr += 1;
            ctx.send(
                target,
                CrdtMsg::Submit {
                    op,
                    client_op: q.op,
                    wants: q.wants,
                },
            );
            self.pending.insert(op, q.upcall);
            if let Some(d) = self.client_timeout {
                let token = self.next_timer;
                self.next_timer += 1;
                self.timer_ops.insert(token, op);
                ctx.set_timer(d, Timer(token));
            }
        }
    }
}

impl Node<CrdtMsg> for Gateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_, CrdtMsg>, _from: NodeId, msg: CrdtMsg) {
        match msg {
            CrdtMsg::Immediate { op, views, closing } => {
                if let Some(u) = self.pending.get(&op) {
                    for (level, val) in views {
                        u.deliver(val, level);
                    }
                    if closing {
                        self.pending.remove(&op);
                    }
                }
            }
            CrdtMsg::Later {
                op,
                level,
                val,
                closing,
            } => {
                if let Some(u) = self.pending.get(&op) {
                    u.deliver(val, level);
                    if closing {
                        self.pending.remove(&op);
                    }
                }
            }
            _ => debug_assert!(false, "protocol messages are addressed to replicas"),
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CrdtMsg>, timer: Timer) {
        if timer.0 == KICK {
            self.drain(ctx);
        } else if let Some(op) = self.timer_ops.remove(&timer.0) {
            // A reply was lost to faults: fail the close. Views already
            // delivered stand (the paper's exceptional close).
            if let Some(u) = self.pending.remove(&op) {
                u.fail(Error::Timeout);
            }
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct NState {
    engine: Engine<CrdtMsg>,
    gateway: NodeId,
    replicas: Vec<NodeId>,
}

/// A simulated CRDT store: three replicas plus a client gateway.
#[derive(Clone)]
pub struct SimCrdtStore {
    state: Arc<Mutex<NState>>,
    queue: OpQueue,
    broken: bool,
}

impl SimCrdtStore {
    /// Builds the op-shipping (CmRDT) deployment: one replica per paper
    /// site, gateway at `client_site`, all driven by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `client_site` is unknown.
    pub fn ec2(client_site: &str, seed: u64) -> Self {
        Self::build(client_site, seed, Repl::Op, false)
    }

    /// The state-shipping (CvRDT) deployment: full-state anti-entropy
    /// with [`Crdt::merge`] instead of effect delivery.
    pub fn ec2_state(client_site: &str, seed: u64) -> Self {
        Self::build(client_site, seed, Repl::State, false)
    }

    /// The deliberately broken deployment: counters replicated by
    /// shipping their new totals ([`crate::types::BrokenCrdt`]), whose
    /// effects do not commute — the fixture the oracle's SEC checker
    /// must reject.
    pub fn ec2_broken(client_site: &str, seed: u64) -> Self {
        Self::build(client_site, seed, Repl::Op, true)
    }

    fn build(client_site: &str, seed: u64, mode: Repl, broken: bool) -> Self {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = ["FRK", "IRL", "VRG"];
        let client_site_id = topo.site_named(client_site).expect("known client site");
        let mut engine = Engine::new(topo, seed);
        let n = sites.len();
        let replicas: Vec<NodeId> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let site = engine.topology().site_named(s).expect("site");
                engine.add_node(site, Box::new(CrdtReplica::new(i, n, mode, broken)))
            })
            .collect();
        for id in &replicas {
            engine
                .node_as::<CrdtReplica>(*id)
                .set_peers(replicas.clone());
        }
        let queue: OpQueue = Arc::new(Mutex::new(VecDeque::new()));
        let gateway = engine.add_node(
            client_site_id,
            Box::new(Gateway {
                replicas: replicas.clone(),
                rr: 0,
                queue: Arc::clone(&queue),
                next_seq: 0,
                pending: BTreeMap::new(),
                client_timeout: None,
                timer_ops: BTreeMap::new(),
                next_timer: 0,
            }),
        );
        SimCrdtStore {
            state: Arc::new(Mutex::new(NState {
                engine,
                gateway,
                replicas,
            })),
            queue,
            broken,
        }
    }

    /// The two-level (weak/strong) binding.
    pub fn binding(&self) -> CrdtBinding {
        CrdtBinding {
            store: self.clone(),
        }
    }

    /// The state every replica starts from (SEC replay origin).
    pub fn initial_state(&self) -> CrdtState {
        if self.broken {
            CrdtState::new_broken()
        } else {
            CrdtState::new()
        }
    }

    /// Installs a fault plan.
    pub fn set_faults(&self, faults: Faults) {
        self.state.lock().engine.set_faults(faults);
    }

    /// Sets a client-side deadline per operation (fails the close with
    /// `Error::Timeout`; already delivered views stand).
    pub fn set_client_timeout(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.engine.node_as::<Gateway>(gw).client_timeout = Some(d);
    }

    /// The replica node ids (FRK/IRL/VRG order).
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.state.lock().replicas.clone()
    }

    /// All site ids of the deployment's topology.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let st = self.state.lock();
        (0..st.engine.topology().len()).map(SiteId).collect()
    }

    /// Every replica's SEC log, in its local application order — the
    /// input to the oracle's SEC checker (op mode; state mode logs only
    /// contain each replica's own updates).
    pub fn sec_logs(&self) -> Vec<Vec<SecEntry>> {
        let mut st = self.state.lock();
        let ids = st.replicas.clone();
        ids.into_iter()
            .map(|id| st.engine.node_as::<CrdtReplica>(id).sec_log())
            .collect()
    }

    /// Every replica's current composite state.
    pub fn states(&self) -> Vec<CrdtState> {
        let mut st = self.state.lock();
        let ids = st.replicas.clone();
        ids.into_iter()
            .map(|id| st.engine.node_as::<CrdtReplica>(id).state())
            .collect()
    }

    /// Drives the simulation until every submitted operation resolves.
    ///
    /// Runs in bounded virtual-time slices: the replicas' anti-entropy
    /// timers keep the event queue busy while gossip is lost, so "no
    /// events left" is not a usable stop condition.
    ///
    /// # Panics
    ///
    /// Panics if operations cannot resolve within a very large horizon
    /// (faults active without a client timeout, or a protocol bug).
    pub fn settle(&self) {
        let slice = SimDuration::from_millis(5);
        for _ in 0..2_000_000 {
            let mut st = self.state.lock();
            let gw = st.gateway;
            st.engine.schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
            let limit = st.engine.now() + slice;
            st.engine.run_until(limit);
            let pending_empty = st.engine.node_as::<Gateway>(gw).pending.is_empty();
            if pending_empty && self.queue.lock().is_empty() {
                return;
            }
        }
        panic!(
            "crdt-store operations cannot settle (lost replies without a \
             client timeout? see SimCrdtStore::set_client_timeout)"
        );
    }

    /// Runs the simulation for `d` without submitting anything (lets
    /// anti-entropy progress).
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let until = st.engine.now() + d;
        st.engine.run_until(until);
    }
}

/// The two-level (weak/strong) `Binding` over a [`SimCrdtStore`]:
/// weak views are coordination-free local reads, strong views close at
/// anti-entropy quiescence.
#[derive(Clone)]
pub struct CrdtBinding {
    store: SimCrdtStore,
}

impl Binding for CrdtBinding {
    type Op = CrdtOp;
    type Val = CrdtVal;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: CrdtOp, levels: &[ConsistencyLevel], upcall: Upcall<CrdtVal>) {
        let wants = Wants {
            weak: levels.contains(&ConsistencyLevel::WEAK),
            strong: levels.contains(&ConsistencyLevel::STRONG),
        };
        self.store
            .queue
            .lock()
            .push_back(Queued { op, wants, upcall });
    }
}
