//! Hand-rolled conflict-free replicated data types.
//!
//! Every type here is *both* a state-based CvRDT and an op-based CmRDT,
//! through the one [`Crdt`] trait:
//!
//! - **state-based**: [`Crdt::merge`] is a join-semilattice join —
//!   commutative, associative, idempotent (property-tested in
//!   `tests/prop_crdt.rs`); replicas converge by exchanging and joining
//!   full states, in any order, any number of times;
//! - **op-based**: [`Crdt::prepare`] turns an operation into a
//!   self-contained downstream *effect* at the origin (reading local
//!   state, e.g. the observed tags of an OR-Set remove), and
//!   [`Crdt::effect`] applies it at every replica. Effects of concurrent
//!   operations commute; [`Crdt::ready`] is the delivery precondition a
//!   causal-delivery layer checks before applying.
//!
//! Strong eventual consistency (Gomes et al., *Verifying Strong Eventual
//! Consistency in Distributed Systems*) follows from exactly these
//! obligations: replicas that have delivered the same set of updates are
//! in the same state. The oracle's `check_sec` verifies the obligations
//! mechanically over explorer runs; [`BrokenCrdt`] is the fixture that
//! violates them (a "counter" replicated by shipping its new total).
//!
//! This file is on the lint's `panic_path` list: merge/apply runs inside
//! replica event handlers, so everything here fails soft — no indexing,
//! no unwrap, saturating arithmetic.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Per-operation context the runtime hands to [`Crdt::prepare`]: which
/// replica is preparing, a per-replica sequence number (the unique-tag
/// source for OR-Set adds), and a lamport timestamp (LWW arbitration).
#[derive(Clone, Copy, Debug)]
pub struct EffectCtx {
    /// Index of the preparing replica.
    pub replica: usize,
    /// Per-replica operation counter (1-based, unique per replica).
    pub seq: u64,
    /// Lamport timestamp at the origin.
    pub lamport: u64,
}

/// A replicated data type: state-based join plus op-based
/// prepare/effect with a delivery precondition (see module docs).
pub trait Crdt: Clone + PartialEq + fmt::Debug {
    /// The operations clients submit.
    type Op;
    /// The self-contained downstream effect of one operation.
    type Effect: Clone + fmt::Debug;

    /// Op-based *prepare* (at the origin): read local state, produce the
    /// effect to broadcast. Must not mutate — the runtime applies the
    /// returned effect through [`Crdt::effect`] like any remote one.
    fn prepare(&self, op: &Self::Op, ctx: EffectCtx) -> Self::Effect;

    /// Delivery precondition: whether `effect` may be applied to this
    /// state now. Causal delivery makes the default (`true`) sound for
    /// every type here; OR-Set removes state their real precondition.
    fn ready(&self, _effect: &Self::Effect) -> bool {
        true
    }

    /// Op-based *effect* (at every replica): apply one delivered effect.
    /// Effects of concurrent operations must commute.
    fn effect(&mut self, effect: &Self::Effect);

    /// State-based join: least upper bound of the two states. Must be
    /// commutative, associative, and idempotent.
    fn merge(&mut self, other: &Self);
}

// ---------------------------------------------------------------------
// G-Counter / PN-Counter
// ---------------------------------------------------------------------

/// Grow-only counter: one monotone slot per replica; join is pointwise
/// max, value is the slot sum.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct GCounter {
    slots: BTreeMap<usize, u64>,
}

/// Downstream effect of a G-Counter increment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GInc {
    /// The incrementing replica (owns the slot).
    pub replica: usize,
    /// Increment amount.
    pub amount: u64,
}

impl GCounter {
    /// The counter value (sum of all slots).
    pub fn value(&self) -> u64 {
        self.slots.values().fold(0u64, |a, v| a.saturating_add(*v))
    }

    /// One replica's slot.
    pub fn slot(&self, replica: usize) -> u64 {
        self.slots.get(&replica).copied().unwrap_or(0)
    }
}

impl Crdt for GCounter {
    type Op = u64;
    type Effect = GInc;

    fn prepare(&self, op: &u64, ctx: EffectCtx) -> GInc {
        GInc {
            replica: ctx.replica,
            amount: *op,
        }
    }

    fn effect(&mut self, e: &GInc) {
        let slot = self.slots.entry(e.replica).or_default();
        *slot = slot.saturating_add(e.amount);
    }

    fn merge(&mut self, other: &Self) {
        for (r, v) in &other.slots {
            let slot = self.slots.entry(*r).or_default();
            *slot = (*slot).max(*v);
        }
    }
}

/// Positive-negative counter: two G-Counters.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct PnCounter {
    pos: GCounter,
    neg: GCounter,
}

/// Downstream effect of a PN-Counter add (one signed delta, split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PnDelta {
    /// The adding replica.
    pub replica: usize,
    /// Positive part of the delta.
    pub pos: u64,
    /// Negative part of the delta.
    pub neg: u64,
}

impl PnCounter {
    /// The counter value.
    pub fn value(&self) -> i64 {
        let p = i64::try_from(self.pos.value()).unwrap_or(i64::MAX);
        let n = i64::try_from(self.neg.value()).unwrap_or(i64::MAX);
        p.saturating_sub(n)
    }
}

impl Crdt for PnCounter {
    type Op = i64;
    type Effect = PnDelta;

    fn prepare(&self, op: &i64, ctx: EffectCtx) -> PnDelta {
        let (pos, neg) = if *op >= 0 {
            (op.unsigned_abs(), 0)
        } else {
            (0, op.unsigned_abs())
        };
        PnDelta {
            replica: ctx.replica,
            pos,
            neg,
        }
    }

    fn effect(&mut self, e: &PnDelta) {
        self.pos.effect(&GInc {
            replica: e.replica,
            amount: e.pos,
        });
        self.neg.effect(&GInc {
            replica: e.replica,
            amount: e.neg,
        });
    }

    fn merge(&mut self, other: &Self) {
        self.pos.merge(&other.pos);
        self.neg.merge(&other.neg);
    }
}

// ---------------------------------------------------------------------
// OR-Set (observed-remove, add-wins)
// ---------------------------------------------------------------------

/// A unique add tag: `(replica, per-replica seq)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Tag {
    /// Minting replica.
    pub replica: usize,
    /// That replica's operation counter at mint time.
    pub seq: u64,
}

/// Observed-remove set. Every add mints a fresh [`Tag`]; a remove
/// tombstones exactly the tags it *observed*, so a concurrent re-add
/// (with a tag the remove never saw) survives — add-wins semantics.
/// Effects commute unconditionally because adds and removes touch
/// disjoint tag sets.
#[derive(Clone, Debug)]
pub struct OrSet<T: Ord + Clone + fmt::Debug> {
    /// Every tag ever minted for each element (adds only grow this).
    tags: BTreeMap<T, BTreeSet<Tag>>,
    /// Tombstoned tags (removes only grow this).
    removed: BTreeSet<Tag>,
}

impl<T: Ord + Clone + fmt::Debug> Default for OrSet<T> {
    fn default() -> Self {
        OrSet {
            tags: BTreeMap::new(),
            removed: BTreeSet::new(),
        }
    }
}

impl<T: Ord + Clone + fmt::Debug> PartialEq for OrSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.tags == other.tags && self.removed == other.removed
    }
}

/// OR-Set operations.
#[derive(Clone, Debug)]
pub enum SetOp<T> {
    /// Insert an element (mints a fresh tag).
    Add(T),
    /// Remove the element's currently observed tags.
    Remove(T),
}

/// OR-Set downstream effects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetEffect<T> {
    /// One freshly minted tag for `elem`.
    Add {
        /// The element.
        elem: T,
        /// The minted tag.
        tag: Tag,
    },
    /// Tombstone the tags the origin observed for `elem`.
    Remove {
        /// The element.
        elem: T,
        /// The tags observed at the origin at prepare time.
        observed: BTreeSet<Tag>,
    },
}

impl<T: Ord + Clone + fmt::Debug> OrSet<T> {
    /// Whether `elem` is present (has a live, un-tombstoned tag).
    pub fn contains(&self, elem: &T) -> bool {
        self.tags
            .get(elem)
            .is_some_and(|tags| tags.iter().any(|t| !self.removed.contains(t)))
    }

    /// The live elements.
    pub fn elements(&self) -> BTreeSet<T> {
        self.tags
            .iter()
            .filter(|(_, tags)| tags.iter().any(|t| !self.removed.contains(t)))
            .map(|(e, _)| e.clone())
            .collect()
    }
}

impl<T: Ord + Clone + fmt::Debug> Crdt for OrSet<T> {
    type Op = SetOp<T>;
    type Effect = SetEffect<T>;

    fn prepare(&self, op: &SetOp<T>, ctx: EffectCtx) -> SetEffect<T> {
        match op {
            SetOp::Add(e) => SetEffect::Add {
                elem: e.clone(),
                tag: Tag {
                    replica: ctx.replica,
                    seq: ctx.seq,
                },
            },
            SetOp::Remove(e) => SetEffect::Remove {
                elem: e.clone(),
                observed: self
                    .tags
                    .get(e)
                    .map(|tags| {
                        tags.iter()
                            .filter(|t| !self.removed.contains(t))
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default(),
            },
        }
    }

    /// A remove is deliverable once every tag it tombstones has been
    /// added here — satisfied automatically under causal delivery (the
    /// adds causally precede the remove that observed them).
    fn ready(&self, effect: &SetEffect<T>) -> bool {
        match effect {
            SetEffect::Add { .. } => true,
            SetEffect::Remove { elem, observed } => self
                .tags
                .get(elem)
                .map(|tags| observed.is_subset(tags))
                .unwrap_or_else(|| observed.is_empty()),
        }
    }

    fn effect(&mut self, e: &SetEffect<T>) {
        match e {
            SetEffect::Add { elem, tag } => {
                self.tags.entry(elem.clone()).or_default().insert(*tag);
            }
            SetEffect::Remove { observed, .. } => {
                self.removed.extend(observed.iter().copied());
            }
        }
    }

    fn merge(&mut self, other: &Self) {
        for (e, tags) in &other.tags {
            self.tags
                .entry(e.clone())
                .or_default()
                .extend(tags.iter().copied());
        }
        self.removed.extend(other.removed.iter().copied());
    }
}

// ---------------------------------------------------------------------
// LWW-Map
// ---------------------------------------------------------------------

/// Last-writer-wins arbitration stamp: lamport time, replica tie-break.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Stamp {
    /// Lamport timestamp at the writing origin.
    pub lamport: u64,
    /// Writing replica (total tie-break; no two stamps are equal).
    pub replica: usize,
}

/// Last-writer-wins map from `u64` fields to `u64` values.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct LwwMap {
    entries: BTreeMap<u64, (Stamp, u64)>,
}

/// LWW-Map operations.
#[derive(Clone, Copy, Debug)]
pub enum MapOp {
    /// Write `field = value`.
    Put(u64, u64),
}

/// Downstream effect of an LWW put.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LwwPut {
    /// The written field.
    pub field: u64,
    /// The written value.
    pub value: u64,
    /// Arbitration stamp.
    pub stamp: Stamp,
}

impl LwwMap {
    /// The current value of `field`, if any write won it.
    pub fn get(&self, field: u64) -> Option<u64> {
        self.entries.get(&field).map(|(_, v)| *v)
    }

    fn take_if_newer(&mut self, field: u64, stamp: Stamp, value: u64) {
        let slot = self.entries.entry(field).or_insert((stamp, value));
        // Lexicographic on (stamp, value): stamps are unique in a real
        // run (lamport + replica tie-break), but totalizing on the value
        // keeps merge a join even for adversarial duplicate stamps.
        if (stamp, value) >= (slot.0, slot.1) {
            *slot = (stamp, value);
        }
    }
}

impl Crdt for LwwMap {
    type Op = MapOp;
    type Effect = LwwPut;

    fn prepare(&self, op: &MapOp, ctx: EffectCtx) -> LwwPut {
        let MapOp::Put(field, value) = *op;
        LwwPut {
            field,
            value,
            stamp: Stamp {
                lamport: ctx.lamport,
                replica: ctx.replica,
            },
        }
    }

    fn effect(&mut self, e: &LwwPut) {
        self.take_if_newer(e.field, e.stamp, e.value);
    }

    fn merge(&mut self, other: &Self) {
        for (field, (stamp, value)) in &other.entries {
            self.take_if_newer(*field, *stamp, *value);
        }
    }
}

// ---------------------------------------------------------------------
// BrokenCrdt (negative fixture)
// ---------------------------------------------------------------------

/// The deliberately broken "CRDT": a counter replicated by shipping its
/// **new total** instead of a delta. Applying an effect overwrites the
/// state, so effects of concurrent adds do not commute (the last arrival
/// wins and the other add is lost), and `merge` overwrites instead of
/// joining. Replicas that deliver the same updates in different orders
/// end in different states — exactly the violation the oracle's SEC
/// checker must reject, mirroring the `LaggyMem` pattern.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct BrokenCrdt {
    total: i64,
}

/// Downstream "effect" of the broken counter: the origin's new total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrokenSet {
    /// The total computed at the origin — overwrites on apply.
    pub total: i64,
}

impl BrokenCrdt {
    /// The counter value.
    pub fn value(&self) -> i64 {
        self.total
    }
}

impl Crdt for BrokenCrdt {
    type Op = i64;
    type Effect = BrokenSet;

    fn prepare(&self, op: &i64, _ctx: EffectCtx) -> BrokenSet {
        BrokenSet {
            total: self.total.saturating_add(*op),
        }
    }

    fn effect(&mut self, e: &BrokenSet) {
        // BUG (deliberate): overwrite, not add — concurrent effects
        // applied in different orders leave different totals.
        self.total = e.total;
    }

    fn merge(&mut self, other: &Self) {
        // BUG (deliberate): overwrite, not join — not commutative.
        self.total = other.total;
    }
}
