//! Segmented invariant confluence: escrow-style ticket sales.
//!
//! The global invariant — never sell more tickets than exist — is not
//! invariant-confluent under plain merge, so a naive CRDT cannot keep
//! it. Following Whittaker's *segmented* invariant confluence, the
//! stock is partitioned into per-replica **escrow segments**: replica
//! `i` owns `initial[i]` tickets and sells from its own segment with no
//! coordination at all (the weak path). Only when a segment runs dry
//! does the replica run a **transfer round** — ask every peer to grant
//! half its remainder — and that is the only point the strong path's
//! coordination is paid. The numbers in EXPERIMENTS.md quantify the
//! gap; Whittaker reports 10–100× over linearizable replication for
//! exactly this workload shape.
//!
//! Why this never oversells: [`EscrowState`] is a CRDT of single-writer
//! monotone counters — `sold[i]` and the grant row `granted[i][·]` are
//! only ever bumped by replica `i`, so pointwise-max merge is exact for
//! the rows a replica sells against, and *under*-approximates only the
//! incoming grants `granted[·][i]`. A replica's local `remaining(i)` is
//! therefore a lower bound of the truth, and selling against a lower
//! bound is always safe. The oracle's `check_escrow` verifies the
//! invariant over merged final states in every explorer run.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, Error, LevelSet, Upcall};
use simnet::{Ctx, Engine, Faults, Node, NodeId, SimDuration, SiteId, Timer, Topology, Wire};

use crate::store::{OpId, Wants};

/// The escrow ledger: a join-semilattice of single-writer counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EscrowState {
    /// Fixed per-replica segment sizes.
    initial: Vec<u64>,
    /// Tickets sold by each replica (single-writer, monotone).
    sold: Vec<u64>,
    /// `granted[i][j]`: total tickets replica `i` has granted to `j`
    /// (row `i` single-writer at `i`, monotone).
    granted: Vec<Vec<u64>>,
}

impl EscrowState {
    /// A fresh ledger with the given segment allocation.
    pub fn new(initial: Vec<u64>) -> EscrowState {
        let n = initial.len();
        EscrowState {
            initial,
            sold: vec![0; n],
            granted: vec![vec![0; n]; n],
        }
    }

    /// Replica count.
    pub fn n(&self) -> usize {
        self.initial.len()
    }

    /// Replica `i`'s current allocation: its segment plus incoming
    /// grants minus outgoing grants.
    pub fn alloc(&self, i: usize) -> u64 {
        let incoming: u64 = (0..self.n()).map(|j| self.granted[j][i]).sum();
        let outgoing: u64 = self.granted[i].iter().sum();
        self.initial[i]
            .saturating_add(incoming)
            .saturating_sub(outgoing)
    }

    /// Replica `i`'s unsold remainder (a lower bound under merge lag).
    pub fn remaining(&self, i: usize) -> u64 {
        self.alloc(i).saturating_sub(self.sold[i])
    }

    /// Total stock.
    pub fn total_initial(&self) -> u64 {
        self.initial.iter().sum()
    }

    /// Total sold across all replicas (in this state's view).
    pub fn total_sold(&self) -> u64 {
        self.sold.iter().sum()
    }

    /// Replica `i`'s sold count.
    pub fn sold_of(&self, i: usize) -> u64 {
        self.sold[i]
    }

    /// Sells one ticket from `i`'s segment if it has remainder.
    pub fn sell(&mut self, i: usize) -> bool {
        if self.remaining(i) > 0 {
            self.sold[i] += 1;
            true
        } else {
            false
        }
    }

    /// Grants up to `amount` tickets from `from`'s remainder to `to`;
    /// returns what was actually granted.
    pub fn grant(&mut self, from: usize, to: usize, amount: u64) -> u64 {
        let amt = amount.min(self.remaining(from));
        self.granted[from][to] += amt;
        amt
    }

    /// Join: pointwise max of all monotone counters. Exact for every
    /// single-writer row, which is what makes local sells safe.
    pub fn merge(&mut self, other: &EscrowState) {
        debug_assert_eq!(self.initial, other.initial, "segment layouts differ");
        for i in 0..self.n() {
            self.sold[i] = self.sold[i].max(other.sold[i]);
            for j in 0..self.n() {
                self.granted[i][j] = self.granted[i][j].max(other.granted[i][j]);
            }
        }
    }

    /// Whether this state dominates `other` (merge would be a no-op).
    pub fn covers(&self, other: &EscrowState) -> bool {
        (0..self.n()).all(|i| {
            self.sold[i] >= other.sold[i]
                && (0..self.n()).all(|j| self.granted[i][j] >= other.granted[i][j])
        })
    }
}

/// Ticket-office operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscrowOp {
    /// Buy one ticket.
    Buy,
    /// How many tickets are left?
    Avail,
}

/// Ticket-office results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sale {
    /// A ticket was sold. `fast` marks the coordination-free segment
    /// path (vs. a transfer round).
    Confirmed {
        /// Sold from the local segment without coordination.
        fast: bool,
    },
    /// No tickets anywhere (after a transfer round found none).
    SoldOut,
    /// Remaining-stock answer to [`EscrowOp::Avail`]: local remainder
    /// at weak, global remainder at strong.
    Stock(u64),
}

/// Protocol messages of the escrow store.
#[derive(Clone, Debug)]
pub enum EscrowMsg {
    /// Gateway → replica: accept `op`.
    Submit {
        /// Client operation id.
        op: OpId,
        /// The operation.
        client_op: EscrowOp,
        /// Levels to serve.
        wants: Wants,
    },
    /// Replica → gateway: the wait-free weak view.
    Immediate {
        /// Client operation id.
        op: OpId,
        /// `(level, value)` — at most the weak view.
        views: Vec<(ConsistencyLevel, Sale)>,
        /// Whether strong was not requested.
        closing: bool,
    },
    /// Replica → gateway: a view that needed peer communication.
    Later {
        /// Client operation id.
        op: OpId,
        /// The level of this view.
        level: ConsistencyLevel,
        /// The value.
        val: Sale,
        /// Always true.
        closing: bool,
    },
    /// Replica → replica: ledger anti-entropy.
    Sync {
        /// Sender index.
        from: usize,
        /// Sender's ledger.
        state: EscrowState,
    },
    /// Replica → replica: anti-entropy reply (receiver's ledger).
    SyncAck {
        /// Sender index.
        from: usize,
        /// Sender's ledger.
        state: EscrowState,
    },
    /// Replica → replica: `asker` is out of tickets (or polling);
    /// grant from your remainder.
    TransferReq {
        /// Requesting replica.
        asker: usize,
        /// Round identity (scoped to the asker).
        nonce: u64,
        /// Tickets wanted (0 = state poll only, grant nothing).
        need: u64,
    },
    /// Replica → replica: the grant (carried in the granter's ledger).
    TransferGrant {
        /// Granting replica.
        granter: usize,
        /// Round identity.
        nonce: u64,
        /// The granter's ledger, grant included.
        state: EscrowState,
    },
}

impl Wire for EscrowMsg {
    fn wire_size(&self) -> usize {
        // Ledger snapshots are n sold counters plus an n×n grant matrix.
        let ledger = |s: &EscrowState| 8 * (2 * s.n() + s.n() * s.n());
        match self {
            EscrowMsg::Submit { .. } => 32,
            EscrowMsg::Immediate { views, .. } => 16 + 16 * views.len(),
            EscrowMsg::Later { .. } => 32,
            EscrowMsg::Sync { state, .. } | EscrowMsg::SyncAck { state, .. } => 16 + ledger(state),
            EscrowMsg::TransferReq { .. } => 32,
            EscrowMsg::TransferGrant { state, .. } => 24 + ledger(state),
        }
    }

    fn category(&self) -> &'static str {
        match self {
            EscrowMsg::Submit { .. } => "submit",
            EscrowMsg::Immediate { .. } | EscrowMsg::Later { .. } => "reply",
            EscrowMsg::Sync { .. } | EscrowMsg::SyncAck { .. } => "gossip",
            EscrowMsg::TransferReq { .. } | EscrowMsg::TransferGrant { .. } => "transfer",
        }
    }
}

/// A transfer round in flight at the asker.
struct Round {
    op: OpId,
    gw: NodeId,
    wants: Wants,
    client_op: EscrowOp,
    replies: usize,
}

/// A fast sale waiting for its strong close (sold-stability).
struct PendingStrong {
    /// Our sold count at sale time; stable once every peer's acked
    /// ledger reports at least this much of our column.
    mark: u64,
    op: OpId,
    gw: NodeId,
    val: Sale,
}

/// One replica of the escrow store.
pub struct EscrowReplica {
    id: usize,
    n: usize,
    peers: Vec<NodeId>,
    /// Pay a transfer round on *every* buy — the coordination baseline
    /// the weak path is measured against.
    strong_only: bool,
    state: EscrowState,
    /// Last ledger each peer acknowledged holding.
    peer_state: Vec<EscrowState>,
    next_nonce: u64,
    rounds: BTreeMap<u64, Round>,
    pending_strong: Vec<PendingStrong>,
    retransmit_every: SimDuration,
    timer_gen: u64,
}

impl EscrowReplica {
    /// A replica with index `id` out of `allocs.len()`.
    pub fn new(id: usize, allocs: Vec<u64>, strong_only: bool) -> Self {
        let n = allocs.len();
        EscrowReplica {
            id,
            n,
            peers: Vec::new(),
            strong_only,
            state: EscrowState::new(allocs.clone()),
            peer_state: vec![EscrowState::new(allocs); n],
            next_nonce: 0,
            rounds: BTreeMap::new(),
            pending_strong: Vec::new(),
            retransmit_every: SimDuration::from_millis(200),
            timer_gen: 0,
        }
    }

    /// Registers the node ids of all replicas (index-aligned).
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        assert_eq!(peers.len(), self.n, "peer list must cover all replicas");
        self.peers = peers;
    }

    /// The current ledger.
    pub fn state(&self) -> EscrowState {
        self.state.clone()
    }

    fn arm_timer(&mut self, ctx: &mut Ctx<'_, EscrowMsg>) {
        let lagging = (0..self.n).any(|j| j != self.id && !self.peer_state[j].covers(&self.state));
        if lagging && self.n > 1 {
            self.timer_gen += 1;
            ctx.set_timer(self.retransmit_every, Timer(self.timer_gen));
        }
    }

    fn sync_peers(&mut self, ctx: &mut Ctx<'_, EscrowMsg>, only_lagging: bool) {
        for (j, peer) in self.peers.clone().into_iter().enumerate() {
            if j == self.id || (only_lagging && self.peer_state[j].covers(&self.state)) {
                continue;
            }
            ctx.send(
                peer,
                EscrowMsg::Sync {
                    from: self.id,
                    state: self.state.clone(),
                },
            );
        }
    }

    /// Starts a transfer round; the reply to the client fires once all
    /// peers have answered (or the gateway's client timeout fails it).
    fn start_round(
        &mut self,
        ctx: &mut Ctx<'_, EscrowMsg>,
        op: OpId,
        gw: NodeId,
        wants: Wants,
        client_op: EscrowOp,
        need: u64,
    ) {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.rounds.insert(
            nonce,
            Round {
                op,
                gw,
                wants,
                client_op,
                replies: 0,
            },
        );
        for (j, peer) in self.peers.clone().into_iter().enumerate() {
            if j != self.id {
                ctx.send(
                    peer,
                    EscrowMsg::TransferReq {
                        asker: self.id,
                        nonce,
                        need,
                    },
                );
            }
        }
        if self.n == 1 {
            self.finish_round(ctx, nonce);
        }
    }

    fn finish_round(&mut self, ctx: &mut Ctx<'_, EscrowMsg>, nonce: u64) {
        let Some(r) = self.rounds.remove(&nonce) else {
            return;
        };
        let val = match r.client_op {
            EscrowOp::Buy => {
                if self.state.sell(self.id) {
                    Sale::Confirmed { fast: false }
                } else {
                    Sale::SoldOut
                }
            }
            // After hearing every peer, the merged ledger's global
            // remainder is exact up to sales concurrent with the round.
            EscrowOp::Avail => Sale::Stock(
                self.state
                    .total_initial()
                    .saturating_sub(self.state.total_sold()),
            ),
        };
        let level = if r.wants.strong {
            ConsistencyLevel::STRONG
        } else {
            ConsistencyLevel::WEAK
        };
        ctx.send(
            r.gw,
            EscrowMsg::Later {
                op: r.op,
                level,
                val,
                closing: true,
            },
        );
        self.sync_peers(ctx, false);
    }

    fn settle_pending(&mut self, ctx: &mut Ctx<'_, EscrowMsg>) {
        let me = self.id;
        let mut still = Vec::new();
        for p in std::mem::take(&mut self.pending_strong) {
            let stable = self.n == 1
                || (0..self.n).all(|j| j == me || self.peer_state[j].sold_of(me) >= p.mark);
            if stable {
                // The fast sale is now incorporated everywhere; the
                // strong view confirms the same outcome.
                ctx.send(
                    p.gw,
                    EscrowMsg::Later {
                        op: p.op,
                        level: ConsistencyLevel::STRONG,
                        val: p.val,
                        closing: true,
                    },
                );
            } else {
                still.push(p);
            }
        }
        self.pending_strong = still;
    }

    fn accept(
        &mut self,
        ctx: &mut Ctx<'_, EscrowMsg>,
        from: NodeId,
        op: OpId,
        client_op: EscrowOp,
        wants: Wants,
    ) {
        match client_op {
            EscrowOp::Buy if !self.strong_only && self.state.remaining(self.id) > 0 => {
                // Fast path: sell from the local segment, zero
                // coordination. Safe because `remaining` is a lower
                // bound (module docs).
                self.state.sell(self.id);
                let val = Sale::Confirmed { fast: true };
                let mut views = Vec::new();
                if wants.weak {
                    views.push((ConsistencyLevel::WEAK, val));
                }
                let closing = !wants.strong;
                if !views.is_empty() || closing {
                    ctx.send(from, EscrowMsg::Immediate { op, views, closing });
                }
                if wants.strong {
                    self.pending_strong.push(PendingStrong {
                        mark: self.state.sold_of(self.id),
                        op,
                        gw: from,
                        val,
                    });
                }
                self.sync_peers(ctx, false);
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            EscrowOp::Buy => {
                // Segment exhausted (or strong-only baseline): the one
                // place coordination is paid — a transfer round.
                let need = if self.state.remaining(self.id) > 0 {
                    0
                } else {
                    1
                };
                self.start_round(ctx, op, from, wants, client_op, need);
            }
            EscrowOp::Avail => {
                let mut views = Vec::new();
                if wants.weak {
                    views.push((
                        ConsistencyLevel::WEAK,
                        Sale::Stock(self.state.remaining(self.id)),
                    ));
                }
                if wants.strong {
                    if !views.is_empty() {
                        ctx.send(
                            from,
                            EscrowMsg::Immediate {
                                op,
                                views,
                                closing: false,
                            },
                        );
                    }
                    // Global remainder needs everyone's ledger: a
                    // need-0 transfer round is exactly a state poll.
                    self.start_round(ctx, op, from, wants, client_op, 0);
                } else {
                    ctx.send(
                        from,
                        EscrowMsg::Immediate {
                            op,
                            views,
                            closing: true,
                        },
                    );
                }
            }
        }
    }
}

impl Node<EscrowMsg> for EscrowReplica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, EscrowMsg>, from: NodeId, msg: EscrowMsg) {
        match msg {
            EscrowMsg::Submit {
                op,
                client_op,
                wants,
            } => self.accept(ctx, from, op, client_op, wants),
            EscrowMsg::Sync { from: i, state } => {
                self.state.merge(&state);
                self.peer_state[i].merge(&state);
                ctx.send(
                    self.peers[i],
                    EscrowMsg::SyncAck {
                        from: self.id,
                        state: self.state.clone(),
                    },
                );
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            EscrowMsg::SyncAck { from: i, state } => {
                self.state.merge(&state);
                self.peer_state[i].merge(&state);
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            EscrowMsg::TransferReq { asker, nonce, need } => {
                if need > 0 {
                    // Grant half the remainder (rounded up): repeated
                    // exhaustion drains peers geometrically, so a run
                    // on one segment costs O(log stock) rounds total.
                    let half = self.state.remaining(self.id).div_ceil(2);
                    self.state.grant(self.id, asker, half.max(need.min(1)));
                }
                ctx.send(
                    self.peers[asker],
                    EscrowMsg::TransferGrant {
                        granter: self.id,
                        nonce,
                        state: self.state.clone(),
                    },
                );
                self.arm_timer(ctx);
            }
            EscrowMsg::TransferGrant {
                granter,
                nonce,
                state,
            } => {
                self.state.merge(&state);
                self.peer_state[granter].merge(&state);
                if let Some(r) = self.rounds.get_mut(&nonce) {
                    r.replies += 1;
                    if r.replies == self.n - 1 {
                        self.finish_round(ctx, nonce);
                    }
                }
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            EscrowMsg::Immediate { .. } | EscrowMsg::Later { .. } => {
                debug_assert!(false, "replies are addressed to the gateway");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, EscrowMsg>, timer: Timer) {
        if timer.0 != self.timer_gen {
            return; // superseded generation
        }
        self.sync_peers(ctx, true);
        self.arm_timer(ctx);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------
// Gateway + deployment
// ---------------------------------------------------------------------

struct Queued {
    op: EscrowOp,
    wants: Wants,
    upcall: Upcall<Sale>,
}

type OpQueue = Arc<Mutex<VecDeque<Queued>>>;

const KICK: u64 = u64::MAX - 1;

struct Gateway {
    replicas: Vec<NodeId>,
    rr: usize,
    /// When set, all submissions originate at this replica (the one
    /// colocated with the client site) instead of round-robining —
    /// the measurement setup for weak-vs-strong latency.
    local_origin: Option<usize>,
    queue: OpQueue,
    next_seq: u64,
    pending: BTreeMap<OpId, Upcall<Sale>>,
    client_timeout: Option<SimDuration>,
    timer_ops: BTreeMap<u64, OpId>,
    next_timer: u64,
}

impl Gateway {
    fn drain(&mut self, ctx: &mut Ctx<'_, EscrowMsg>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            let op = OpId(self.next_seq);
            self.next_seq += 1;
            let idx = self.local_origin.unwrap_or_else(|| {
                let i = self.rr % self.replicas.len();
                self.rr += 1;
                i
            });
            ctx.send(
                self.replicas[idx],
                EscrowMsg::Submit {
                    op,
                    client_op: q.op,
                    wants: q.wants,
                },
            );
            self.pending.insert(op, q.upcall);
            if let Some(d) = self.client_timeout {
                let token = self.next_timer;
                self.next_timer += 1;
                self.timer_ops.insert(token, op);
                ctx.set_timer(d, Timer(token));
            }
        }
    }
}

impl Node<EscrowMsg> for Gateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_, EscrowMsg>, _from: NodeId, msg: EscrowMsg) {
        match msg {
            EscrowMsg::Immediate { op, views, closing } => {
                if let Some(u) = self.pending.get(&op) {
                    for (level, val) in views {
                        u.deliver(val, level);
                    }
                    if closing {
                        self.pending.remove(&op);
                    }
                }
            }
            EscrowMsg::Later {
                op,
                level,
                val,
                closing,
            } => {
                if let Some(u) = self.pending.get(&op) {
                    u.deliver(val, level);
                    if closing {
                        self.pending.remove(&op);
                    }
                }
            }
            _ => debug_assert!(false, "protocol messages are addressed to replicas"),
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, EscrowMsg>, timer: Timer) {
        if timer.0 == KICK {
            self.drain(ctx);
        } else if let Some(op) = self.timer_ops.remove(&timer.0) {
            if let Some(u) = self.pending.remove(&op) {
                u.fail(Error::Timeout);
            }
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct NState {
    engine: Engine<EscrowMsg>,
    gateway: NodeId,
    replicas: Vec<NodeId>,
    client_replica: usize,
}

/// A simulated escrow ticket store: three replicas plus a gateway.
#[derive(Clone)]
pub struct SimEscrow {
    state: Arc<Mutex<NState>>,
    queue: OpQueue,
}

impl SimEscrow {
    /// Builds the deployment: one replica per paper site with segment
    /// `allocs[i]`, gateway at `client_site`. With `strong_only`, every
    /// buy pays a transfer round — the coordination baseline.
    ///
    /// # Panics
    ///
    /// Panics if `client_site` is unknown or `allocs` is not one
    /// segment per site.
    pub fn ec2(allocs: Vec<u64>, client_site: &str, seed: u64, strong_only: bool) -> Self {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = ["FRK", "IRL", "VRG"];
        assert_eq!(allocs.len(), sites.len(), "one segment per site");
        let client_site_id = topo.site_named(client_site).expect("known client site");
        let client_replica = sites.iter().position(|s| *s == client_site).unwrap_or(0);
        let mut engine = Engine::new(topo, seed);
        let replicas: Vec<NodeId> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let site = engine.topology().site_named(s).expect("site");
                engine.add_node(
                    site,
                    Box::new(EscrowReplica::new(i, allocs.clone(), strong_only)),
                )
            })
            .collect();
        for id in &replicas {
            engine
                .node_as::<EscrowReplica>(*id)
                .set_peers(replicas.clone());
        }
        let queue: OpQueue = Arc::new(Mutex::new(VecDeque::new()));
        let gateway = engine.add_node(
            client_site_id,
            Box::new(Gateway {
                replicas: replicas.clone(),
                rr: 0,
                local_origin: None,
                queue: Arc::clone(&queue),
                next_seq: 0,
                pending: BTreeMap::new(),
                client_timeout: None,
                timer_ops: BTreeMap::new(),
                next_timer: 0,
            }),
        );
        SimEscrow {
            state: Arc::new(Mutex::new(NState {
                engine,
                gateway,
                replicas,
                client_replica,
            })),
            queue,
        }
    }

    /// The two-level (weak/strong) binding.
    pub fn binding(&self) -> EscrowBinding {
        EscrowBinding {
            store: self.clone(),
        }
    }

    /// Pins all submissions to the replica colocated with the client
    /// site (instead of round-robin) — the latency-measurement setup:
    /// weak views then never cross a WAN link.
    pub fn set_local_origin(&self, on: bool) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        let idx = st.client_replica;
        st.engine.node_as::<Gateway>(gw).local_origin = on.then_some(idx);
    }

    /// Installs a fault plan.
    pub fn set_faults(&self, faults: Faults) {
        self.state.lock().engine.set_faults(faults);
    }

    /// Sets a client-side deadline per operation.
    pub fn set_client_timeout(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.engine.node_as::<Gateway>(gw).client_timeout = Some(d);
    }

    /// The replica node ids (FRK/IRL/VRG order).
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.state.lock().replicas.clone()
    }

    /// All site ids of the deployment's topology.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let st = self.state.lock();
        (0..st.engine.topology().len()).map(SiteId).collect()
    }

    /// Every replica's current ledger (input to `check_escrow`).
    pub fn states(&self) -> Vec<EscrowState> {
        let mut st = self.state.lock();
        let ids = st.replicas.clone();
        ids.into_iter()
            .map(|id| st.engine.node_as::<EscrowReplica>(id).state())
            .collect()
    }

    /// Current virtual time (for latency measurements).
    pub fn now(&self) -> simnet::SimTime {
        self.state.lock().engine.now()
    }

    /// Drives the simulation until every submitted operation resolves.
    ///
    /// # Panics
    ///
    /// Panics if operations cannot resolve within a very large horizon.
    pub fn settle(&self) {
        let slice = SimDuration::from_millis(5);
        for _ in 0..2_000_000 {
            let mut st = self.state.lock();
            let gw = st.gateway;
            st.engine.schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
            let limit = st.engine.now() + slice;
            st.engine.run_until(limit);
            let pending_empty = st.engine.node_as::<Gateway>(gw).pending.is_empty();
            if pending_empty && self.queue.lock().is_empty() {
                return;
            }
        }
        panic!(
            "escrow operations cannot settle (lost replies without a \
             client timeout? see SimEscrow::set_client_timeout)"
        );
    }

    /// Runs the simulation for `d` without submitting anything.
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let until = st.engine.now() + d;
        st.engine.run_until(until);
    }

    /// Kicks the gateway once, then runs the simulation for `d`.
    ///
    /// Freshly submitted operations only enter the network when the
    /// gateway drains its queue on a kick, which [`Self::settle`] does
    /// internally; `step` exposes one such slice so callers can measure
    /// how much virtual time passes before an individual operation
    /// resolves, instead of settling all the way to quiescence.
    pub fn step(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.engine.schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
        let until = st.engine.now() + d;
        st.engine.run_until(until);
    }
}

/// The two-level (weak/strong) `Binding` over a [`SimEscrow`]: weak
/// buys are coordination-free segment sales, strong views wait for
/// sold-stability (fast path) or a transfer round (slow path).
#[derive(Clone)]
pub struct EscrowBinding {
    store: SimEscrow,
}

impl Binding for EscrowBinding {
    type Op = EscrowOp;
    type Val = Sale;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: EscrowOp, levels: &[ConsistencyLevel], upcall: Upcall<Sale>) {
        let wants = Wants {
            weak: levels.contains(&ConsistencyLevel::WEAK),
            strong: levels.contains(&ConsistencyLevel::STRONG),
        };
        self.store
            .queue
            .lock()
            .push_back(Queued { op, wants, upcall });
    }
}
