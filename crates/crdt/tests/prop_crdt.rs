//! Property tests: the SEC obligations of every shipped CRDT.
//!
//! - join-semilattice laws for state-based merge: commutative,
//!   associative, idempotent — for GCounter, PnCounter, OrSet, LwwMap,
//!   and the composite `CrdtState`;
//! - op-commutativity: effects prepared concurrently at independent
//!   replicas reach the same state under any delivery interleaving that
//!   respects per-origin order;
//! - OR-Set add-wins under arbitrary interleavings;
//! - the `BrokenCrdt` fixture really does violate both obligations
//!   (the sanity check that these properties have teeth).
//!
//! Test cases are decoded from raw `Vec<u64>` words: each word drives
//! one operation (which replica, which op, which key/value), so the
//! vendored proptest shim needs nothing beyond integer vectors.

use proptest::prelude::*;

use icg_crdt::types::{
    BrokenCrdt, Crdt, EffectCtx, GCounter, LwwMap, MapOp, OrSet, PnCounter, SetOp,
};
use icg_crdt::{CrdtOp, CrdtState};

const REPLICAS: usize = 3;

/// Deterministic word mixer for interleaving choices (splitmix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `words` as ops at round-robin replicas, each replica applying
/// only its own effects on top of `base` — so all cross-replica effects
/// are pairwise concurrent. Returns the per-replica effect sequences.
fn concurrent_effects<C: Crdt, F: Fn(u64) -> C::Op>(
    base: &C,
    words: &[u64],
    decode: F,
) -> Vec<Vec<C::Effect>> {
    let mut locals: Vec<C> = (0..REPLICAS).map(|_| base.clone()).collect();
    let mut seqs = [0u64; REPLICAS];
    let mut out: Vec<Vec<C::Effect>> = vec![Vec::new(); REPLICAS];
    for (i, w) in words.iter().enumerate() {
        let r = i % REPLICAS;
        seqs[r] += 1;
        let op = decode(*w);
        let ctx = EffectCtx {
            replica: r,
            seq: seqs[r],
            lamport: 1 + i as u64,
        };
        let e = locals[r].prepare(&op, ctx);
        locals[r].effect(&e);
        out[r].push(e);
    }
    out
}

/// Applies the per-replica effect streams to `base` in a seeded riffle
/// that preserves per-origin order (= one causal delivery order).
fn riffle_apply<C: Crdt>(base: &C, streams: &[Vec<C::Effect>], seed: u64) -> C {
    let mut state = base.clone();
    let mut cursors = vec![0usize; streams.len()];
    let mut s = seed;
    loop {
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].len())
            .collect();
        if live.is_empty() {
            return state;
        }
        s = mix(s);
        let pick = live[(s % live.len() as u64) as usize];
        state.effect(&streams[pick][cursors[pick]]);
        cursors[pick] += 1;
    }
}

/// Builds a state by applying `words` as ops at round-robin replicas,
/// all effects applied to one shared state (a sequential history).
fn build<C: Crdt, F: Fn(u64) -> C::Op>(base: &C, words: &[u64], decode: F) -> C {
    let mut state = base.clone();
    let mut seqs = [0u64; REPLICAS];
    for (i, w) in words.iter().enumerate() {
        let r = i % REPLICAS;
        seqs[r] += 1;
        let ctx = EffectCtx {
            replica: r,
            seq: seqs[r],
            lamport: 1 + i as u64,
        };
        let e = state.prepare(&decode(*w), ctx);
        state.effect(&e);
    }
    state
}

fn lattice_laws<C: Crdt>(a: &C, b: &C, c: &C) -> Result<(), TestCaseError> {
    // Commutative: a ⊔ b == b ⊔ a.
    let mut ab = a.clone();
    ab.merge(b);
    let mut ba = b.clone();
    ba.merge(a);
    prop_assert_eq!(&ab, &ba, "merge not commutative");
    // Associative: (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
    let mut ab_c = ab.clone();
    ab_c.merge(c);
    let mut bc = b.clone();
    bc.merge(c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    prop_assert_eq!(&ab_c, &a_bc, "merge not associative");
    // Idempotent: a ⊔ a == a.
    let mut aa = a.clone();
    aa.merge(a);
    prop_assert_eq!(&aa, a, "merge not idempotent");
    Ok(())
}

fn decode_gctr(w: u64) -> u64 {
    w % 100
}

fn decode_pnctr(w: u64) -> i64 {
    (w % 200) as i64 - 100
}

fn decode_set(w: u64) -> SetOp<u64> {
    let elem = (w >> 1) % 8;
    if w & 1 == 0 {
        SetOp::Add(elem)
    } else {
        SetOp::Remove(elem)
    }
}

fn decode_map(w: u64) -> MapOp {
    MapOp::Put((w >> 8) % 4, w % 256)
}

fn decode_composite(w: u64) -> CrdtOp {
    let key = (w >> 3) % 4;
    match w % 5 {
        0 => CrdtOp::CtrAdd(key, ((w >> 5) % 40) as i64 - 20),
        1 => CrdtOp::SetAdd(key, (w >> 5) % 8),
        2 => CrdtOp::SetRemove(key, (w >> 5) % 8),
        3 => CrdtOp::MapPut(key, (w >> 5) % 4, (w >> 7) % 64),
        _ => CrdtOp::CtrAdd(key, ((w >> 5) % 7) as i64),
    }
}

proptest! {
    /// Join-semilattice laws for every state-based type, over states
    /// grown from arbitrary op histories.
    #[test]
    fn merge_laws_hold_for_all_types(
        wa in collection::vec(any::<u64>(), 0..24),
        wb in collection::vec(any::<u64>(), 0..24),
        wc in collection::vec(any::<u64>(), 0..24),
    ) {
        let g = GCounter::default();
        lattice_laws(
            &build(&g, &wa, decode_gctr),
            &build(&g, &wb, decode_gctr),
            &build(&g, &wc, decode_gctr),
        )?;
        let p = PnCounter::default();
        lattice_laws(
            &build(&p, &wa, decode_pnctr),
            &build(&p, &wb, decode_pnctr),
            &build(&p, &wc, decode_pnctr),
        )?;
        let s = OrSet::<u64>::default();
        lattice_laws(
            &build(&s, &wa, decode_set),
            &build(&s, &wb, decode_set),
            &build(&s, &wc, decode_set),
        )?;
        let m = LwwMap::default();
        lattice_laws(
            &build(&m, &wa, decode_map),
            &build(&m, &wb, decode_map),
            &build(&m, &wc, decode_map),
        )?;
        let k = CrdtState::new();
        lattice_laws(
            &build(&k, &wa, decode_composite),
            &build(&k, &wb, decode_composite),
            &build(&k, &wc, decode_composite),
        )?;
    }

    /// Op-commutativity: concurrent effect streams reach the same state
    /// under any two per-origin-order-preserving interleavings — for the
    /// composite store (which exercises every inner type at once).
    #[test]
    fn concurrent_effects_commute(
        words in collection::vec(any::<u64>(), 1..36),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        // A shared causal past everybody has delivered.
        let base = build(&CrdtState::new(), &words[..words.len() / 2], decode_composite);
        let streams = concurrent_effects(&base, &words[words.len() / 2..], decode_composite);
        let one = riffle_apply(&base, &streams, s1);
        let two = riffle_apply(&base, &streams, s2);
        prop_assert_eq!(one, two, "concurrent composite effects did not commute");
    }

    /// OR-Set add-wins: a remove and a concurrent (unobserved) re-add
    /// leave the element present, in either application order.
    #[test]
    fn or_set_add_wins(
        seed_words in collection::vec(any::<u64>(), 0..12),
        elem in 0u64..8,
        s1 in any::<u64>(),
    ) {
        let mut base = build(&OrSet::<u64>::default(), &seed_words, decode_set);
        // Make sure the element is observable, so the remove sees tags.
        let seed_add = base.prepare(&SetOp::Add(elem), EffectCtx { replica: 0, seq: 1_000, lamport: 1_000 });
        base.effect(&seed_add);
        // Concurrent: replica 1 removes what it observed, replica 2
        // re-adds with a tag the remove never saw.
        let rm = base.prepare(&SetOp::Remove(elem), EffectCtx { replica: 1, seq: 1_001, lamport: 1_001 });
        let re = base.prepare(&SetOp::Add(elem), EffectCtx { replica: 2, seq: 1_002, lamport: 1_002 });
        let streams = vec![vec![rm], vec![re]];
        let merged = riffle_apply(&base, &streams, s1);
        prop_assert!(merged.contains(&elem), "concurrent re-add lost to observed-remove");
        // And both orders agree exactly.
        let fwd = riffle_apply(&base, &streams, 0);
        let rev = riffle_apply(&base, &streams, 1);
        prop_assert_eq!(fwd, rev);
    }

    /// The negative fixture violates both obligations: shipped-total
    /// effects do not commute, and overwrite-merge is not commutative.
    /// This is the sanity check that the laws above can fail at all.
    #[test]
    fn broken_crdt_fails_the_laws(
        d1 in 1i64..100,
        d2 in 1i64..100,
    ) {
        // Distinct deltas at two replicas over the same base.
        let base = BrokenCrdt::default();
        let e1 = base.prepare(&d1, EffectCtx { replica: 0, seq: 1, lamport: 1 });
        let e2 = base.prepare(&(d1 + d2), EffectCtx { replica: 1, seq: 1, lamport: 2 });
        let mut one = base;
        one.effect(&e1);
        one.effect(&e2);
        let mut two = base;
        two.effect(&e2);
        two.effect(&e1);
        prop_assert_ne!(one.value(), two.value(), "shipped-total effects commuted");
        // Merge is order-dependent too.
        let mut m1 = one;
        m1.merge(&two);
        let mut m2 = two;
        m2.merge(&one);
        prop_assert_ne!(m1.value(), m2.value(), "overwrite merge commuted");
    }
}
