//! Simulated-deployment tests: refinement weak → strong, convergence in
//! both replication modes, the broken fixture's divergence, and the
//! escrow store's fast path / exhaustion / no-oversell behavior.

use correctables::{Client, ConsistencyLevel, State};
use icg_crdt::{CrdtOp, CrdtVal, EscrowOp, Sale, SimCrdtStore, SimEscrow};
use simnet::SimDuration;

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

#[test]
fn counter_refines_weak_then_strong() {
    let store = SimCrdtStore::ec2("IRL", 7);
    let client = Client::new(store.binding());
    for _ in 0..3 {
        client.invoke(CrdtOp::CtrAdd(5, 10));
        store.settle();
    }
    let c = client.invoke(CrdtOp::CtrGet(5));
    store.settle();
    assert_eq!(c.state(), State::Final);
    let fin = c.final_view().expect("closed");
    assert_eq!(fin.level, ConsistencyLevel::STRONG);
    assert_eq!(fin.value, CrdtVal::Int(30));
    // The weak prelim arrived first and was served locally.
    assert_eq!(c.preliminary_views().len(), 1);
    assert_eq!(c.preliminary_views()[0].level, ConsistencyLevel::WEAK);
}

#[test]
fn op_mode_replicas_converge() {
    let store = SimCrdtStore::ec2("FRK", 21);
    let client = Client::new(store.binding());
    // A racing burst across all three origins (round-robin), no settling
    // in between: genuinely concurrent effects.
    for i in 0..9u64 {
        client.invoke_weak(CrdtOp::CtrAdd(1, 1));
        client.invoke_weak(CrdtOp::SetAdd(2, i % 4));
        if i % 3 == 0 {
            client.invoke_weak(CrdtOp::SetRemove(2, i % 4));
        }
        client.invoke_weak(CrdtOp::MapPut(3, 0, i));
    }
    store.settle();
    store.advance(secs(10));
    let states = store.states();
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "op-mode replicas diverged: {states:?}"
    );
    assert_eq!(states[0].eval(&CrdtOp::CtrGet(1)), CrdtVal::Int(9));
    // All logs carry all 9 + adds/removes + puts entries.
    let logs = store.sec_logs();
    assert!(logs.windows(2).all(|w| w[0].len() == w[1].len()));
}

#[test]
fn state_mode_replicas_converge() {
    let store = SimCrdtStore::ec2_state("VRG", 3);
    let client = Client::new(store.binding());
    for i in 0..6u64 {
        client.invoke_weak(CrdtOp::CtrAdd(1, 2));
        client.invoke_weak(CrdtOp::MapPut(9, i % 2, 100 + i));
    }
    store.settle();
    store.advance(secs(10));
    let states = store.states();
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "state-mode replicas diverged: {states:?}"
    );
    assert_eq!(states[0].eval(&CrdtOp::CtrGet(1)), CrdtVal::Int(12));
}

#[test]
fn or_set_add_wins_across_origins() {
    let store = SimCrdtStore::ec2("IRL", 11);
    let client = Client::new(store.binding());
    // Seed the element and let it propagate everywhere.
    client.invoke_weak(CrdtOp::SetAdd(7, 42));
    store.settle();
    store.advance(secs(5));
    // Concurrent: one origin removes (observing the seeded tag), another
    // re-adds with a fresh tag the remove never saw. Round-robin places
    // these on different origins.
    client.invoke_weak(CrdtOp::SetRemove(7, 42));
    client.invoke_weak(CrdtOp::SetAdd(7, 42));
    store.settle();
    store.advance(secs(10));
    let states = store.states();
    assert!(states.windows(2).all(|w| w[0] == w[1]));
    // Add wins: the fresh tag survives the concurrent observed-remove.
    assert_eq!(
        states[0].eval(&CrdtOp::SetContains(7, 42)),
        CrdtVal::Bool(true)
    );
}

#[test]
fn broken_fixture_diverges_under_concurrency() {
    let store = SimCrdtStore::ec2_broken("IRL", 21);
    let client = Client::new(store.binding());
    // Concurrent adds at different origins: the shipped-total "effects"
    // overwrite each other in arrival order, which differs per replica.
    // Distinct deltas keep the shipped totals distinct, so divergence
    // is visible in the value, not just the lost updates.
    for i in 0..9i64 {
        client.invoke_weak(CrdtOp::CtrAdd(1, 1 + i));
    }
    store.settle();
    store.advance(secs(10));
    let states = store.states();
    assert!(
        states.windows(2).any(|w| w[0] != w[1]),
        "broken fixture unexpectedly converged: {states:?}"
    );
}

#[test]
fn escrow_fast_path_sells_coordination_free() {
    let store = SimEscrow::ec2(vec![4, 4, 4], "FRK", 5, false);
    let client = Client::new(store.binding());
    // 12 tickets, 12 buys round-robined: every segment covers its own
    // sales — all fast.
    let mut sales = Vec::new();
    for _ in 0..12 {
        sales.push(client.invoke(EscrowOp::Buy));
        store.settle();
    }
    for c in &sales {
        assert_eq!(
            c.final_view().expect("closed").value,
            Sale::Confirmed { fast: true }
        );
    }
    // Sold out everywhere: the 13th buy pays a transfer round and fails.
    let c = client.invoke(EscrowOp::Buy);
    store.settle();
    assert_eq!(c.final_view().expect("closed").value, Sale::SoldOut);
}

#[test]
fn escrow_transfer_refills_an_exhausted_segment() {
    // All stock at the far segments; the client's buys round-robin, so
    // one origin runs dry quickly and must pull a grant.
    let store = SimEscrow::ec2(vec![0, 6, 6], "FRK", 9, false);
    store.set_local_origin(true); // all buys at FRK, which owns nothing
    let client = Client::new(store.binding());
    let mut confirmed = 0;
    let mut slow = 0;
    for _ in 0..12 {
        let c = client.invoke(EscrowOp::Buy);
        store.settle();
        match c.final_view().expect("closed").value {
            Sale::Confirmed { fast } => {
                confirmed += 1;
                if !fast {
                    slow += 1;
                }
            }
            Sale::SoldOut => {}
            Sale::Stock(_) => panic!("Buy answered with Stock"),
        }
    }
    // Every ticket is sellable via transfers, and at least the first
    // buy had to pay a transfer round.
    assert_eq!(confirmed, 12);
    assert!(slow >= 1, "no buy used the transfer path");
    let c = client.invoke(EscrowOp::Buy);
    store.settle();
    assert_eq!(c.final_view().expect("closed").value, Sale::SoldOut);
}

#[test]
fn escrow_never_oversells() {
    for seed in [1u64, 7, 23, 99] {
        let store = SimEscrow::ec2(vec![3, 3, 3], "IRL", seed, false);
        let client = Client::new(store.binding());
        let mut confirmed = 0;
        for _ in 0..15 {
            let c = client.invoke(EscrowOp::Buy);
            store.settle();
            if matches!(
                c.final_view().expect("closed").value,
                Sale::Confirmed { .. }
            ) {
                confirmed += 1;
            }
        }
        store.advance(secs(10));
        assert_eq!(confirmed, 9, "seed {seed}: wrong sale count");
        // Merged ledgers agree and respect the invariant.
        let states = store.states();
        assert!(states.windows(2).all(|w| w[0] == w[1]));
        assert!(states[0].total_sold() <= states[0].total_initial());
    }
}

#[test]
fn escrow_strong_close_confirms_fast_sales() {
    let store = SimEscrow::ec2(vec![2, 2, 2], "VRG", 13, false);
    let client = Client::new(store.binding());
    let c = client.invoke(EscrowOp::Buy);
    store.settle();
    let prelims: Vec<_> = c.preliminary_views().iter().map(|v| v.level).collect();
    assert_eq!(prelims, vec![ConsistencyLevel::WEAK]);
    let fin = c.final_view().expect("closed");
    assert_eq!(fin.level, ConsistencyLevel::STRONG);
    // The strong view confirms the same outcome the weak path promised.
    assert_eq!(fin.value, Sale::Confirmed { fast: true });
}

#[test]
fn escrow_strong_avail_reports_global_stock() {
    let store = SimEscrow::ec2(vec![5, 0, 0], "IRL", 3, false);
    let client = Client::new(store.binding());
    for _ in 0..2 {
        client.invoke(EscrowOp::Buy);
        store.settle();
    }
    let c = client.invoke_strong(EscrowOp::Avail);
    store.settle();
    assert_eq!(c.final_view().expect("closed").value, Sale::Stock(3));
}

#[test]
fn escrow_strong_only_pays_coordination_every_buy() {
    let store = SimEscrow::ec2(vec![3, 3, 3], "FRK", 17, true);
    let client = Client::new(store.binding());
    for _ in 0..9 {
        let c = client.invoke(EscrowOp::Buy);
        store.settle();
        // Every sale goes through a transfer round: no fast confirms,
        // and no weak prelim ever fires.
        assert_eq!(
            c.final_view().expect("closed").value,
            Sale::Confirmed { fast: false }
        );
        assert!(c.preliminary_views().is_empty());
    }
    let c = client.invoke(EscrowOp::Buy);
    store.settle();
    assert_eq!(c.final_view().expect("closed").value, Sale::SoldOut);
}
