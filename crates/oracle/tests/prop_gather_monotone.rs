//! Property tests: `ShardedBinding`'s scatter/gather merge emits view
//! sequences that are themselves monotone — the merged level floor
//! never descends across emissions and the merge closes exactly once —
//! verified with the oracle's own monotonicity checker, for arbitrary
//! per-part level subsets and arbitrary interleavings of part
//! deliveries; and the same merge over CRDT-backed shards of arbitrary
//! *freshness* (each shard's weak views lag its fresh state by a
//! different depth) stays monotone, with the strong merged reads seeing
//! every prior write.

use proptest::prelude::*;

use correctables::record::History;
use correctables::ConsistencyLevel;
const CACHE: ConsistencyLevel = ConsistencyLevel::CACHE;
const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
use correctables::Correctable;
use icg_crdt::{CrdtOp, CrdtVal, LocalCrdt};
use icg_oracle::check_monotonicity;
use icg_shard::router::gather;
use icg_shard::ShardedBinding;
use simnet::DetRng;

const PRELIMS: [ConsistencyLevel; 3] = [CACHE, WEAK, CAUSAL];

proptest! {
    /// Each part delivers an ascending subset of {CACHE, WEAK, CAUSAL}
    /// then closes at STRONG; parts are interleaved randomly. The
    /// merged Correctable's recorded history must satisfy the
    /// monotonicity checker (levels strictly ascend, close exactly
    /// once, nothing after the close) and close at STRONG.
    #[test]
    fn merged_views_are_monotone_under_any_interleaving(
        masks in proptest::collection::vec(0u8..8, 1..5),
        seed in any::<u64>(),
    ) {
        let n = masks.len();
        let parts: Vec<(Correctable<u64>, correctables::Handle<u64>)> =
            (0..n).map(|_| Correctable::pending()).collect();
        let merged = gather(parts.iter().map(|(c, _)| c.clone()).collect());

        let history: History<&'static str, Vec<u64>> = History::new();
        let id = history.observe(
            "scatter",
            vec![CACHE, WEAK, CAUSAL, STRONG],
            &merged,
        );

        // Per-part delivery plans: the selected prelim levels in
        // ascending order, then the STRONG close.
        let mut plans: Vec<Vec<(ConsistencyLevel, bool)>> = masks
            .iter()
            .map(|mask| {
                let mut plan: Vec<(ConsistencyLevel, bool)> = PRELIMS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, l)| (*l, false))
                    .collect();
                plan.push((STRONG, true));
                plan
            })
            .collect();

        // Random riffle: pick a part with deliveries left, pop its head.
        let mut rng = DetRng::seed_from_u64(seed);
        let mut step = 0u64;
        while plans.iter().any(|p| !p.is_empty()) {
            let live: Vec<usize> = (0..n).filter(|&i| !plans[i].is_empty()).collect();
            let part = live[rng.below(live.len() as u64) as usize];
            let (level, closing) = plans[part].remove(0);
            let value = (part as u64) * 1_000 + step;
            step += 1;
            let h = &parts[part].1;
            if closing {
                h.close(value, level).unwrap();
            } else {
                h.update(value, level).unwrap();
            }
        }

        let invs = history.snapshot();
        let violations = check_monotonicity(&invs, true);
        prop_assert!(violations.is_empty(), "merged stream not monotone: {violations:?}");
        let inv = invs.iter().find(|i| i.id == id).unwrap();
        let (_, close_level) = inv.final_view().expect("merge must close");
        prop_assert_eq!(close_level, STRONG);
        // Every emission carries one value per part.
        for e in &inv.events {
            if let correctables::record::HistoryEvent::View { value, .. } = e {
                prop_assert_eq!(value.len(), n);
            }
        }
    }

    /// Scatter over CRDT-backed shards whose weak views lag their fresh
    /// state by *different* depths: the merged stream must still be
    /// monotone (weakest-common floor, single close at STRONG), and the
    /// strong merged reads must see every previously scattered write no
    /// matter how stale each shard's weak shadow is.
    #[test]
    fn scatter_over_crdt_shards_is_monotone_at_any_freshness(
        lags in proptest::collection::vec(0usize..5, 1..4),
        words in proptest::collection::vec(any::<u64>(), 1..16),
        ring_seed in any::<u64>(),
    ) {
        const KEYS: u64 = 6;
        let shards: Vec<LocalCrdt> = lags.iter().map(|&l| LocalCrdt::new(l)).collect();
        let router = ShardedBinding::inline(shards, 16, ring_seed);
        let history: History<&'static str, Vec<CrdtVal>> = History::new();

        // Round 1: counter bumps decoded from the words (key routes the
        // op to its owning shard; same key, same shard).
        let delta = |w: u64| ((w >> 3) % 50) as i64;
        let writes: Vec<CrdtOp> = words
            .iter()
            .map(|&w| CrdtOp::CtrAdd(w % KEYS, delta(w)))
            .collect();
        let w = router.scatter(writes);
        history.observe("scatter-writes", vec![WEAK, STRONG], &w);

        // Round 2: read every key back through the merge.
        let reads: Vec<CrdtOp> = (0..KEYS).map(CrdtOp::CtrGet).collect();
        let r = router.scatter(reads);
        let read_id = history.observe("scatter-reads", vec![WEAK, STRONG], &r);

        let invs = history.snapshot();
        let violations = check_monotonicity(&invs, true);
        prop_assert!(violations.is_empty(), "merged stream not monotone: {violations:?}");

        let inv = invs.iter().find(|i| i.id == read_id).unwrap();
        let (vals, close_level) = inv.final_view().expect("merged read must close");
        prop_assert_eq!(close_level, STRONG);
        prop_assert_eq!(vals.len(), KEYS as usize);
        // Freshness doesn't bend the strong path: each key's final read
        // is the full sum of its bumps, even on shards whose weak
        // shadow still lags behind.
        for (k, v) in vals.iter().enumerate() {
            let expected: i64 = words
                .iter()
                .filter(|&&w| w % KEYS == k as u64)
                .map(|&w| delta(w))
                .sum();
            prop_assert_eq!(v, &CrdtVal::Int(expected), "key {}", k);
        }
    }
}
