//! Property test: `ShardedBinding`'s scatter/gather merge emits view
//! sequences that are themselves monotone — the merged level floor
//! never descends across emissions and the merge closes exactly once —
//! verified with the oracle's own monotonicity checker, for arbitrary
//! per-part level subsets and arbitrary interleavings of part
//! deliveries.

use proptest::prelude::*;

use correctables::record::History;
use correctables::ConsistencyLevel;
const CACHE: ConsistencyLevel = ConsistencyLevel::CACHE;
const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
use correctables::Correctable;
use icg_oracle::check_monotonicity;
use icg_shard::router::gather;
use simnet::DetRng;

const PRELIMS: [ConsistencyLevel; 3] = [CACHE, WEAK, CAUSAL];

proptest! {
    /// Each part delivers an ascending subset of {CACHE, WEAK, CAUSAL}
    /// then closes at STRONG; parts are interleaved randomly. The
    /// merged Correctable's recorded history must satisfy the
    /// monotonicity checker (levels strictly ascend, close exactly
    /// once, nothing after the close) and close at STRONG.
    #[test]
    fn merged_views_are_monotone_under_any_interleaving(
        masks in proptest::collection::vec(0u8..8, 1..5),
        seed in any::<u64>(),
    ) {
        let n = masks.len();
        let parts: Vec<(Correctable<u64>, correctables::Handle<u64>)> =
            (0..n).map(|_| Correctable::pending()).collect();
        let merged = gather(parts.iter().map(|(c, _)| c.clone()).collect());

        let history: History<&'static str, Vec<u64>> = History::new();
        let id = history.observe(
            "scatter",
            vec![CACHE, WEAK, CAUSAL, STRONG],
            &merged,
        );

        // Per-part delivery plans: the selected prelim levels in
        // ascending order, then the STRONG close.
        let mut plans: Vec<Vec<(ConsistencyLevel, bool)>> = masks
            .iter()
            .map(|mask| {
                let mut plan: Vec<(ConsistencyLevel, bool)> = PRELIMS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, l)| (*l, false))
                    .collect();
                plan.push((STRONG, true));
                plan
            })
            .collect();

        // Random riffle: pick a part with deliveries left, pop its head.
        let mut rng = DetRng::seed_from_u64(seed);
        let mut step = 0u64;
        while plans.iter().any(|p| !p.is_empty()) {
            let live: Vec<usize> = (0..n).filter(|&i| !plans[i].is_empty()).collect();
            let part = live[rng.below(live.len() as u64) as usize];
            let (level, closing) = plans[part].remove(0);
            let value = (part as u64) * 1_000 + step;
            step += 1;
            let h = &parts[part].1;
            if closing {
                h.close(value, level).unwrap();
            } else {
                h.update(value, level).unwrap();
            }
        }

        let invs = history.snapshot();
        let violations = check_monotonicity(&invs, true);
        prop_assert!(violations.is_empty(), "merged stream not monotone: {violations:?}");
        let inv = invs.iter().find(|i| i.id == id).unwrap();
        let (_, close_level) = inv.final_view().expect("merge must close");
        prop_assert_eq!(close_level, STRONG);
        // Every emission carries one value per part.
        for e in &inv.events {
            if let correctables::record::HistoryEvent::View { value, .. } = e {
                prop_assert_eq!(value.len(), n);
            }
        }
    }
}
