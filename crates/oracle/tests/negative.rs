//! Negative tests: every checker must reject a known-bad history, and
//! a failing explorer run must print a `(seed, schedule)` pair that
//! deterministically reproduces the violation when replayed.
//!
//! Monotonicity violations are injected directly as history records —
//! the `Upcall` machinery makes them unproducible through a live
//! binding, which is itself worth pinning down (see
//! `runtime_prevents_what_the_monotonicity_checker_guards`).

use correctables::record::{History, HistoryEvent, Invocation, RecordingBinding};
use correctables::{Binding, Client, ConsistencyLevel, LevelSet, Upcall};

const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
use icg_oracle::{
    check_convergence, check_linearizable, check_monotonicity, explore, replay, ExplorerConfig,
    LinEntry, RegOp, RegisterSpec, StackKind, ViolationKind,
};

fn view(seq: u64, level: ConsistencyLevel, value: u64, closing: bool) -> HistoryEvent<u64> {
    HistoryEvent::View {
        seq,
        at_nanos: 0,
        level,
        value,
        closing,
    }
}

fn inv(id: usize, events: Vec<HistoryEvent<u64>>) -> Invocation<&'static str, u64> {
    Invocation {
        id,
        op: "injected",
        levels: vec![WEAK, CAUSAL, STRONG],
        submitted: 0,
        at_nanos: 0,
        events,
    }
}

#[test]
fn monotonicity_rejects_every_injected_corruption() {
    let cases: Vec<(Vec<HistoryEvent<u64>>, ViolationKind)> = vec![
        // Levels descend.
        (
            vec![
                view(1, CAUSAL, 1, false),
                view(2, WEAK, 2, false),
                view(3, STRONG, 3, true),
            ],
            ViolationKind::LevelRegressed,
        ),
        // Two closes.
        (
            vec![view(1, STRONG, 1, true), view(2, STRONG, 2, true)],
            ViolationKind::MultipleCloses,
        ),
        // Delivery after the close.
        (
            vec![view(1, STRONG, 1, true), view(2, WEAK, 2, false)],
            ViolationKind::EventAfterClose,
        ),
        // Never closes.
        (vec![view(1, WEAK, 1, false)], ViolationKind::NeverClosed),
        // Closes below the strongest requested level.
        (vec![view(1, WEAK, 1, true)], ViolationKind::WeakClose),
    ];
    for (events, expected) in cases {
        let h = vec![inv(0, events)];
        let violations = check_monotonicity(&h, true);
        assert!(
            violations.iter().any(|v| v.kind == expected),
            "expected {expected:?}, got {violations:?}"
        );
    }
}

#[test]
fn convergence_rejects_diverging_quiescent_views() {
    let h = vec![inv(
        0,
        vec![view(1, WEAK, 7, false), view(2, STRONG, 9, true)],
    )];
    let violations = check_convergence(&h, 0);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].kind, ViolationKind::Diverged);
}

#[test]
fn linearizability_rejects_a_stale_read_after_a_completed_write() {
    let h = vec![
        LinEntry::done(0, RegOp::Write(1, 5), 5, 0, 1),
        LinEntry::done(1, RegOp::Read(1), 0, 2, 3),
    ];
    let v = check_linearizable(&RegisterSpec::default(), &h).unwrap_err();
    assert!(!v.inconclusive);
    assert!(v.to_string().contains("not linearizable"), "{v}");
}

/// The runtime's `Upcall` machinery *prevents* the class of violations
/// the monotonicity checker guards against: a binding that over- and
/// re-delivers cannot produce a regressed or double-closed recorded
/// stream. The checker therefore guards the recording layer and any
/// future binding path that bypasses `Upcall` arbitration.
#[test]
fn runtime_prevents_what_the_monotonicity_checker_guards() {
    /// Misbehaves as hard as the `Binding` API allows: delivers strong
    /// first, then weak, then strong again.
    #[derive(Clone)]
    struct Chaotic;
    impl Binding for Chaotic {
        type Op = ();
        type Val = u64;
        fn consistency_levels(&self) -> LevelSet {
            LevelSet::of(&[WEAK, STRONG])
        }
        fn submit(&self, _op: (), _levels: &[ConsistencyLevel], upcall: Upcall<u64>) {
            upcall.deliver(1, STRONG);
            upcall.deliver(2, WEAK);
            upcall.deliver(3, STRONG);
        }
    }
    let history = History::new();
    let client = Client::new(RecordingBinding::new(Chaotic, history.clone()));
    client.invoke(());
    let invs = history.snapshot();
    // The client-visible stream is a single clean close.
    assert!(check_monotonicity(&invs, true).is_empty());
    assert_eq!(invs[0].events.len(), 1);
}

#[test]
fn buggy_binding_fails_convergence_and_linearizability() {
    let cfg = ExplorerConfig::default();
    let report = explore(StackKind::BuggyMem, 1, &cfg).expect_err("LaggyMem must be rejected");
    let all = report.violations.join("\n");
    assert!(
        all.contains("convergence"),
        "missing convergence finding:\n{all}"
    );
    assert!(
        all.contains("linearizability"),
        "missing linearizability finding:\n{all}"
    );
    // LaggyMem has no network: the shrinker must reduce the schedule to
    // nothing.
    assert!(
        report.schedule.is_fault_free(),
        "schedule not minimal: {}",
        report.schedule
    );
}

#[test]
fn arrival_order_spec_store_fails_update_consistency() {
    // The BuggySpec fixture keeps each replica's log in arrival order
    // instead of the agreed lamport order: client-visible views stay
    // plausible, but the replicas never converge to one linearization —
    // exactly (and only) the update-consistency checker's job.
    let cfg = ExplorerConfig::default();
    let report =
        explore(StackKind::BuggySpec, 1, &cfg).expect_err("arrival order must be rejected");
    let all = report.violations.join("\n");
    assert!(
        all.contains("update-consistency"),
        "missing update-consistency finding:\n{all}"
    );
    assert!(
        all.contains("OrderDiverged"),
        "divergence not attributed to the order:\n{all}"
    );
    // The healthy spec store passes the same seed and config.
    assert!(explore(StackKind::SpecRegister, 1, &cfg).is_ok());
}

#[test]
fn broken_crdt_fails_the_sec_checker() {
    // The BrokenCrdt fixture ships origin-side totals as "effects" and
    // merges by overwrite: every replica delivers every update (eventual
    // visibility holds), but replaying the differing arrival orders
    // lands on different states — exactly the commutativity obligation
    // SEC adds, and only the SEC checker catches it.
    let cfg = ExplorerConfig::default();
    let report =
        explore(StackKind::BrokenCrdt, 1, &cfg).expect_err("overwrite effects must be rejected");
    let all = report.violations.join("\n");
    assert!(
        all.contains("EffectNotCommutative") || all.contains("StateDiverged"),
        "divergence not attributed to SEC:\n{all}"
    );
    // The fixture runs fault-free: the shrinker must reduce the
    // schedule to nothing, so the report is a pure (seed, workload)
    // repro.
    assert!(
        report.schedule.is_fault_free(),
        "schedule not minimal: {}",
        report.schedule
    );
    // Replaying the shrunk pair reproduces the identical findings.
    let replayed = replay(StackKind::BrokenCrdt, report.seed, &report.schedule, &cfg)
        .expect_err("replay must reproduce the violation");
    assert_eq!(replayed.violations, report.violations);
    // The healthy CRDT store passes the same seed in both modes.
    assert!(explore(StackKind::Crdt { state_based: false }, 1, &cfg).is_ok());
    assert!(explore(StackKind::Crdt { state_based: true }, 1, &cfg).is_ok());
}

#[test]
fn failure_report_prints_a_replayable_seed_schedule_pair() {
    let cfg = ExplorerConfig::default();
    let report = explore(StackKind::BuggyMem, 7, &cfg).expect_err("LaggyMem must be rejected");
    // The report prints the pair...
    let printed = report.to_string();
    assert!(printed.contains("seed=7"), "{printed}");
    assert!(printed.contains("schedule=["), "{printed}");
    assert!(printed.contains("replay"), "{printed}");
    // ...and replaying it reproduces the identical violations.
    let replayed = replay(StackKind::BuggyMem, report.seed, &report.schedule, &cfg)
        .expect_err("replay must reproduce the violation");
    assert_eq!(replayed.violations, report.violations);
    assert_eq!(replayed.seed, report.seed);
}

#[test]
fn clean_stacks_pass_while_the_buggy_one_fails_under_the_same_seeds() {
    // The checkers' power comes from rejecting the bad while accepting
    // the good: same seeds, same config, opposite verdicts.
    let cfg = ExplorerConfig {
        ops: 24,
        ..ExplorerConfig::default()
    };
    for seed in [3, 4] {
        assert!(explore(StackKind::Store { confirm: true }, seed, &cfg).is_ok());
        assert!(explore(StackKind::BuggyMem, seed, &cfg).is_err());
    }
}
