//! The seeded fault-schedule explorer.
//!
//! One exploration = one `(stack, seed)` pair. The seed deterministically
//! derives (1) a fault schedule — partitions, node downtime, message
//! loss — via [`Faults::random`], and (2) a concurrent client workload.
//! The stack runs the workload under the schedule, heals, quiesces, and
//! then every checker runs over the recorded history:
//!
//! - view monotonicity over *all* invocations,
//! - convergence over the quiescent tail reads,
//! - linearizability of strong views against the stack's sequential spec
//!   (crashed operations treated as maybe-applied).
//!
//! On failure the schedule is **shrunk** — one-step reductions are
//! re-run and kept while they still fail — and the resulting
//! [`FailureReport`] prints the minimal `(seed, schedule)` pair, which
//! [`replay`] reruns bit-for-bit.

use std::fmt;

use correctables::record::{History, HistoryEvent, Invocation, RecordingBinding};
use correctables::{Client, ConsistencyLevel, KeyedOp};
use simnet::{DetRng, Faults, NodeId, SchedulePlan, SimDuration, SiteId};

use causalstore::{CacheOp, Item, SimCausal};
use consensusq::{seq_of, QueueOp, QueueView, ServerConfig, SimQueue};
use icg_crdt::{CrdtOp, CrdtVal, EscrowOp, Sale, SimCrdtStore, SimEscrow};
use icg_shard::{KvOp, ShardedBinding};
use quorumstore::{Key, QuorumBinding, ReplicaConfig, SimStore, StoreOp, Value, Versioned};
use specstore::SimSpecStore;

use crate::buggy::LaggyMem;
use crate::checkers::{
    check_convergence, check_escrow, check_monotonicity, check_sec, check_update_consistency,
};
use crate::lin::{check_linearizable, LinEntry};
use crate::spec::{
    CounterSpec, CtrOp, KvStoreSpec, KvsOp, QOp, QRet, QueueSpec, RegOp, RegisterSpec,
};

/// Which binding stack an exploration drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackKind {
    /// The quorum store (CC; *CC when `confirm` is set).
    Store {
        /// Enable the *CC confirmation optimization.
        confirm: bool,
    },
    /// The ZooKeeper-model replicated queue (CZK).
    Queue,
    /// The cached causal store (news-reader stack).
    Causal,
    /// A fleet of quorum stores behind the sharded router.
    ShardedStore {
        /// Number of shards.
        shards: usize,
    },
    /// The spec-generic four-level store (`weak → update → causal →
    /// strong`) over the register spec.
    SpecRegister,
    /// The spec-generic four-level store over the counter spec.
    SpecCounter,
    /// The coordination-free CRDT store, checked against strong
    /// eventual consistency ([`check_sec`]).
    Crdt {
        /// Gossip full states (CvRDT anti-entropy) instead of
        /// causally-delivered downstream effects (CmRDT).
        state_based: bool,
    },
    /// The escrow-segmented ticket store: coordination-free fast sales
    /// from per-replica segments, transfers at exhaustion — checked
    /// against the no-oversell invariant ([`check_escrow`]).
    TicketsEscrow,
    /// The deliberately buggy in-memory binding ([`LaggyMem`]) — the
    /// negative fixture proving the checkers reject real violations.
    BuggyMem,
    /// The deliberately broken spec store: replicas apply updates in
    /// arrival order instead of the agreed total order — the negative
    /// fixture for the update-consistency checker.
    BuggySpec,
    /// The deliberately broken CRDT: "effects" ship origin-side totals
    /// and merge by overwrite — the negative fixture for the SEC
    /// checker.
    BrokenCrdt,
}

impl fmt::Display for StackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackKind::Store { confirm: false } => write!(f, "store"),
            StackKind::Store { confirm: true } => write!(f, "store+confirm"),
            StackKind::Queue => write!(f, "queue"),
            StackKind::Causal => write!(f, "causal"),
            StackKind::ShardedStore { shards } => write!(f, "sharded-store({shards})"),
            StackKind::SpecRegister => write!(f, "spec-register"),
            StackKind::SpecCounter => write!(f, "spec-counter"),
            StackKind::Crdt { state_based: false } => write!(f, "crdt-op"),
            StackKind::Crdt { state_based: true } => write!(f, "crdt-state"),
            StackKind::TicketsEscrow => write!(f, "tickets-escrow"),
            StackKind::BuggyMem => write!(f, "buggy-mem"),
            StackKind::BuggySpec => write!(f, "buggy-spec"),
            StackKind::BrokenCrdt => write!(f, "broken-crdt"),
        }
    }
}

/// Exploration parameters (the defaults keep one run well under a
/// second of real time).
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Approximate number of workload operations in the faulty phase.
    pub ops: usize,
    /// Key-space size (smaller = more write/read interaction).
    pub keys: u64,
    /// Maximum operations submitted concurrently before settling.
    pub max_batch: u64,
    /// Client-side deadline per operation, virtual milliseconds.
    pub client_timeout_ms: u64,
    /// Bounds for fault-schedule generation.
    pub plan: SchedulePlan,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            ops: 48,
            keys: 4,
            max_batch: 6,
            client_timeout_ms: 1_500,
            plan: SchedulePlan::default(),
        }
    }
}

/// What a clean exploration covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunSummary {
    /// Invocations recorded (workload + quiescent tail).
    pub invocations: usize,
    /// Operations that closed by error (timeouts under faults).
    pub crashed: usize,
    /// Operations entered into the stack's semantic check —
    /// linearizability entries for the lin-checked stacks, replayed
    /// log entries for the SEC-checked CRDT stacks, confirmed sales
    /// for the escrow stack.
    pub lin_entries: usize,
}

/// A reproducible consistency violation.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The stack that misbehaved.
    pub stack: StackKind,
    /// The seed that (with `schedule`) reproduces the violation.
    pub seed: u64,
    /// The minimal (shrunk) fault schedule that still fails.
    pub schedule: Faults,
    /// The checker findings.
    pub violations: Vec<String>,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "consistency violation on stack `{}` — reproduce with seed={} schedule=[{}]",
            self.stack, self.seed, self.schedule
        )?;
        for v in self.violations.iter().take(8) {
            writeln!(f, "  - {v}")?;
        }
        if self.violations.len() > 8 {
            writeln!(f, "  … and {} more", self.violations.len() - 8)?;
        }
        write!(
            f,
            "replay: icg_oracle::replay(stack, seed, &schedule, &config) reruns this \
             deterministically"
        )
    }
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// The canonical fault targets of the simulated stacks: the three
/// replicas/servers are always the first three nodes of their engine,
/// and the FRK/IRL/VRG topology has three sites (the client gateway
/// shares one of them, so partitions can cut the client off too).
///
/// Schedules are generated *before* the stack exists (the seed must
/// fully determine them), so every driver checks this layout against
/// the stack's own id accessors via [`assert_fault_targets`] — if a
/// constructor ever reorders node registration, the explorer fails
/// loudly instead of silently targeting the wrong node.
fn fault_targets() -> (Vec<SiteId>, Vec<NodeId>) {
    ((0..3).map(SiteId).collect(), (0..3).map(NodeId).collect())
}

fn assert_fault_targets(sites: Vec<SiteId>, nodes: Vec<NodeId>) {
    let (want_sites, want_nodes) = fault_targets();
    assert_eq!(sites, want_sites, "stack site layout changed");
    assert_eq!(nodes, want_nodes, "stack replica layout changed");
}

/// Explores one `(stack, seed)` pair: generates the schedule, runs the
/// workload, checks the history, and on failure shrinks the schedule.
///
/// # Errors
///
/// Returns the shrunk, reproducible [`FailureReport`].
pub fn explore(
    stack: StackKind,
    seed: u64,
    cfg: &ExplorerConfig,
) -> Result<RunSummary, Box<FailureReport>> {
    let (sites, nodes) = fault_targets();
    let mut rng = DetRng::seed_from_u64(seed);
    let schedule = Faults::random(&cfg.plan, &sites, &nodes, &mut rng);
    run_and_report(stack, seed, schedule, cfg, true)
}

/// Reruns a previously reported `(seed, schedule)` pair verbatim (no
/// generation, no shrinking).
///
/// # Errors
///
/// Returns the same violation the original run produced.
pub fn replay(
    stack: StackKind,
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
) -> Result<RunSummary, Box<FailureReport>> {
    run_and_report(stack, seed, schedule.clone(), cfg, false)
}

fn run_and_report(
    stack: StackKind,
    seed: u64,
    schedule: Faults,
    cfg: &ExplorerConfig,
    shrink: bool,
) -> Result<RunSummary, Box<FailureReport>> {
    let (summary, violations) = run_one(stack, seed, &schedule, cfg);
    if violations.is_empty() {
        return Ok(summary);
    }
    let (schedule, violations) = if shrink {
        shrink_schedule(stack, seed, schedule, violations, cfg)
    } else {
        (schedule, violations)
    };
    Err(Box::new(FailureReport {
        stack,
        seed,
        schedule,
        violations,
    }))
}

/// Greedily keeps one-step reductions of the schedule while they still
/// fail; runs are deterministic, so the result is reproducible.
fn shrink_schedule(
    stack: StackKind,
    seed: u64,
    mut schedule: Faults,
    mut violations: Vec<String>,
    cfg: &ExplorerConfig,
) -> (Faults, Vec<String>) {
    loop {
        let mut improved = false;
        for cand in schedule.shrink_candidates() {
            let (_, v) = run_one(stack, seed, &cand, cfg);
            if !v.is_empty() {
                schedule = cand;
                violations = v;
                improved = true;
                break;
            }
        }
        if !improved {
            return (schedule, violations);
        }
    }
}

fn run_one(
    stack: StackKind,
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
) -> (RunSummary, Vec<String>) {
    match stack {
        StackKind::Store { confirm } => run_store(seed, schedule, cfg, confirm),
        StackKind::Queue => run_queue(seed, schedule, cfg),
        StackKind::Causal => run_causal(seed, schedule, cfg),
        StackKind::ShardedStore { shards } => run_sharded(seed, schedule, cfg, shards),
        StackKind::SpecRegister => run_spec_register(seed, schedule, cfg),
        StackKind::SpecCounter => run_spec_counter(seed, schedule, cfg),
        StackKind::Crdt { state_based } => run_crdt(seed, schedule, cfg, state_based),
        StackKind::TicketsEscrow => run_tickets_escrow(seed, schedule, cfg),
        StackKind::BuggyMem => run_buggy(seed, cfg),
        StackKind::BuggySpec => run_buggy_spec(seed, cfg),
        StackKind::BrokenCrdt => run_broken_crdt(seed, cfg),
    }
}

/// Salt separating the workload stream from the schedule stream, so a
/// shrunk schedule never changes which operations the workload issues.
const WORKLOAD_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

fn workload_rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed ^ WORKLOAD_SALT)
}

fn crashed_count<Op, T>(invs: &[Invocation<Op, T>]) -> usize {
    invs.iter()
        .filter(|i| matches!(i.closing_event(), Some(HistoryEvent::Failed { .. })))
        .count()
}

fn structural_violations<Op: fmt::Debug, T: PartialEq + fmt::Debug>(
    invs: &[Invocation<Op, T>],
    tail_mark: u64,
) -> Vec<String> {
    let mut out: Vec<String> = check_monotonicity(invs, true)
        .into_iter()
        .map(|v| format!("monotonicity: {v}"))
        .collect();
    out.extend(
        check_convergence(invs, tail_mark)
            .into_iter()
            .map(|v| format!("convergence: {v}")),
    );
    out
}

// ---------------------------------------------------------------------
// Quorum store
// ---------------------------------------------------------------------

fn opaque(v: &Value) -> u64 {
    match v {
        Value::Opaque(n) => u64::from(*n),
        _ => 0,
    }
}

fn store_lin_entries(invs: &[Invocation<StoreOp, Versioned>]) -> Vec<LinEntry<RegOp, u64>> {
    let strong = ConsistencyLevel::STRONG;
    let mut out = Vec::new();
    for inv in invs {
        let op = match &inv.op {
            StoreOp::Read(k) => RegOp::Read(k.id),
            StoreOp::Write(k, v) => RegOp::Write(k.id, opaque(v)),
        };
        match inv.closing_event() {
            Some(HistoryEvent::View { level, value, .. }) if level.at_least(strong) => {
                out.push(LinEntry::done(
                    inv.id,
                    op,
                    opaque(&value.value),
                    inv.submitted,
                    inv.closed_at(),
                ));
            }
            Some(HistoryEvent::Failed { .. }) => {
                // A timed-out write may still have landed; a timed-out
                // read has no effect and drops out entirely.
                if matches!(inv.op, StoreOp::Write(..)) {
                    out.push(LinEntry::crashed(inv.id, op, inv.submitted));
                }
            }
            _ => {} // weak-only closes don't partake in the strong order
        }
    }
    out
}

fn store_init_value(key: u64) -> u32 {
    100 + key as u32
}

fn run_store(
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
    confirm: bool,
) -> (RunSummary, Vec<String>) {
    let rc = ReplicaConfig {
        op_timeout: ms(1_000),
        ..ReplicaConfig::default()
    };
    let store = SimStore::ec2(rc, 2, confirm, "IRL", 0, seed);
    assert_fault_targets(store.site_ids(), store.replica_ids());
    store.preload((0..cfg.keys).map(|k| (Key::plain(k), Value::Opaque(store_init_value(k)))));
    store.set_client_timeout(ms(cfg.client_timeout_ms));
    store.set_faults(schedule.clone());

    let history: History<StoreOp, Versioned> = History::with_clock(store.clock());
    let client = Client::new(RecordingBinding::new(store.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut next_val: u32 = 10_000;
    let mut issued = 0usize;
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch);
        for _ in 0..batch {
            let k = Key::plain(wl.below(cfg.keys));
            match wl.below(10) {
                0..=3 => {
                    let v = Value::Opaque(next_val);
                    next_val += 1;
                    if wl.chance(0.5) {
                        client.invoke_strong(StoreOp::Write(k, v));
                    } else {
                        client.invoke(StoreOp::Write(k, v));
                    }
                }
                4..=7 => {
                    client.invoke(StoreOp::Read(k));
                }
                8 => {
                    client.invoke_strong(StoreOp::Read(k));
                }
                _ => {
                    client.invoke_weak(StoreOp::Read(k));
                }
            }
            issued += 1;
        }
        store.settle();
        store.advance(ms(wl.range(1, 120)));
    }

    // Heal, drain every in-flight effect and timeout, then take the
    // quiescent tail: a strong refresh round, then the checked reads.
    store.set_faults(Faults::none());
    store.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    for k in 0..cfg.keys {
        client.invoke_strong(StoreOp::Read(Key::plain(k)));
    }
    store.settle();
    store.advance(ms(300));
    let tail_mark = history.mark();
    for k in 0..cfg.keys {
        client.invoke(StoreOp::Read(Key::plain(k)));
    }
    store.settle();

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let spec = RegisterSpec {
        initial: (0..cfg.keys)
            .map(|k| (k, u64::from(store_init_value(k))))
            .collect(),
    };
    let entries = store_lin_entries(&invs);
    if let Err(v) = check_linearizable(&spec, &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: entries.len(),
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// Replicated queue
// ---------------------------------------------------------------------

fn queue_lin_entries(invs: &[Invocation<QueueOp, QueueView>]) -> Vec<LinEntry<QOp, QRet>> {
    let strong = ConsistencyLevel::STRONG;
    let mut out = Vec::new();
    for inv in invs {
        let op = match inv.op {
            QueueOp::Enqueue { .. } => QOp::Enqueue,
            QueueOp::Dequeue => QOp::Dequeue,
        };
        match inv.closing_event() {
            Some(HistoryEvent::View { level, value, .. }) if level.at_least(strong) => {
                let ret = QRet {
                    name: value.name.as_deref().and_then(seq_of),
                    remaining: value.remaining,
                };
                out.push(LinEntry::done(
                    inv.id,
                    op,
                    ret,
                    inv.submitted,
                    inv.closed_at(),
                ));
            }
            Some(HistoryEvent::Failed { .. }) => {
                // Both queue ops mutate; a timeout leaves them in
                // maybe-applied limbo.
                out.push(LinEntry::crashed(inv.id, op, inv.submitted));
            }
            _ => {} // weak-only dequeues are pure peeks
        }
    }
    out
}

fn run_queue(seed: u64, schedule: &Faults, cfg: &ExplorerConfig) -> (RunSummary, Vec<String>) {
    let q = SimQueue::ec2(ServerConfig::default(), "IRL", "IRL", "FRK", seed);
    assert_fault_targets(q.site_ids(), q.server_ids());
    let prefill = cfg.keys;
    q.prefill(prefill, 20);
    q.set_client_timeout(ms(cfg.client_timeout_ms));
    q.set_faults(schedule.clone());

    let history: History<QueueOp, QueueView> = History::new();
    let client = Client::new(RecordingBinding::new(q.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut issued = 0usize;
    // Zab coordination is heavier than a quorum read; halve the load.
    while issued < cfg.ops / 2 {
        let batch = 1 + wl.below(cfg.max_batch.min(3));
        for _ in 0..batch {
            match wl.below(10) {
                0..=4 => {
                    client.invoke(QueueOp::Enqueue { data_len: 20 });
                }
                5..=8 => {
                    client.invoke(QueueOp::Dequeue);
                }
                _ => {
                    client.invoke_weak(QueueOp::Dequeue);
                }
            }
            issued += 1;
        }
        q.settle();
        q.advance(ms(wl.range(1, 120)));
    }

    q.set_faults(Faults::none());
    q.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    let tail_mark = history.mark();
    // Sequential tail with propagation gaps so the connected follower's
    // local simulation (the preliminary) reflects a settled state.
    for i in 0..4u64 {
        if i == 3 {
            client.invoke(QueueOp::Enqueue { data_len: 20 });
        } else {
            client.invoke(QueueOp::Dequeue);
        }
        q.settle();
        q.advance(ms(300));
    }

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let entries = queue_lin_entries(&invs);
    if let Err(v) = check_linearizable(&QueueSpec { prefill }, &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: entries.len(),
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// Cached causal store
// ---------------------------------------------------------------------

/// The `(rev, items)` pair the causal spec reasons over.
type RevItems = Option<(u64, Vec<u64>)>;

fn item_pair(v: &Option<Item>) -> RevItems {
    v.as_ref().map(|i| (i.rev, i.items.clone()))
}

fn causal_lin_entries(
    invs: &[Invocation<CacheOp, Option<Item>>],
) -> Vec<LinEntry<KvsOp, RevItems>> {
    let strong = ConsistencyLevel::STRONG;
    let mut out = Vec::new();
    for inv in invs {
        let op = match &inv.op {
            CacheOp::Get(k) => KvsOp::Get(k.clone()),
            CacheOp::Put(k, items) => KvsOp::Put(k.clone(), items.clone()),
        };
        match inv.closing_event() {
            Some(HistoryEvent::View { level, value, .. }) if level.at_least(strong) => {
                out.push(LinEntry::done(
                    inv.id,
                    op,
                    item_pair(value),
                    inv.submitted,
                    inv.closed_at(),
                ));
            }
            Some(HistoryEvent::Failed { .. }) => {
                if matches!(inv.op, CacheOp::Put(..)) {
                    out.push(LinEntry::crashed(inv.id, op, inv.submitted));
                }
            }
            _ => {} // cache-level closes are local peeks
        }
    }
    out
}

fn run_causal(seed: u64, schedule: &Faults, cfg: &ExplorerConfig) -> (RunSummary, Vec<String>) {
    let s = SimCausal::ec2("VRG", "IRL", seed);
    assert_fault_targets(s.site_ids(), s.replica_ids());
    let keys: Vec<String> = (0..cfg.keys).map(|k| format!("k{k}")).collect();
    for (i, k) in keys.iter().enumerate() {
        s.seed(k, 1, vec![i as u64]);
    }
    s.set_client_timeout(ms(cfg.client_timeout_ms));
    s.set_faults(schedule.clone());

    let history: History<CacheOp, Option<Item>> = History::new();
    let client = Client::new(RecordingBinding::new(s.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut next_item: u64 = 10_000;
    let mut issued = 0usize;
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch);
        for _ in 0..batch {
            let k = keys[wl.below(cfg.keys) as usize].clone();
            match wl.below(10) {
                0..=2 => {
                    let items = vec![next_item];
                    next_item += 1;
                    client.invoke_strong(CacheOp::Put(k, items));
                }
                3..=8 => {
                    client.invoke(CacheOp::Get(k));
                }
                _ => {
                    client.invoke_weak(CacheOp::Get(k));
                }
            }
            issued += 1;
        }
        s.settle();
        s.advance(ms(wl.range(1, 120)));
    }

    s.set_faults(Faults::none());
    s.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    // One fresh write per key: triggers the backups' gap detection (and
    // thus anti-entropy) and settles the cache revision, so the checked
    // tail reads compare three genuinely converged levels.
    for k in &keys {
        let items = vec![next_item];
        next_item += 1;
        client.invoke_strong(CacheOp::Put(k.clone(), items));
        s.settle();
        s.advance(ms(600));
    }
    let tail_mark = history.mark();
    for k in &keys {
        client.invoke(CacheOp::Get(k.clone()));
        s.settle();
    }

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let spec = KvStoreSpec {
        initial: keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), (1, vec![i as u64])))
            .collect(),
    };
    let entries = causal_lin_entries(&invs);
    if let Err(v) = check_linearizable(&spec, &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: entries.len(),
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// Sharded quorum-store fleet
// ---------------------------------------------------------------------

/// Drives a fleet to quiescence (mirrors `icg::sharded::settle_fleet`,
/// which this crate cannot depend on without a cycle).
fn settle_fleet(binding: &ShardedBinding<QuorumBinding>, stores: &[SimStore]) {
    let mut before: u64 = binding.routed_per_shard().iter().sum();
    loop {
        binding.quiesce();
        for s in stores {
            s.settle();
        }
        let after: u64 = binding.routed_per_shard().iter().sum();
        if after == before {
            return;
        }
        before = after;
    }
}

fn run_sharded(
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
    shards: usize,
) -> (RunSummary, Vec<String>) {
    let rc = ReplicaConfig {
        op_timeout: ms(1_000),
        ..ReplicaConfig::default()
    };
    let stores: Vec<SimStore> = (0..shards)
        .map(|i| {
            SimStore::ec2(
                rc,
                2,
                false,
                "IRL",
                0,
                seed.wrapping_add(i as u64).wrapping_mul(WORKLOAD_SALT),
            )
        })
        .collect();
    // Faults apply to every shard: node/site ids are per-engine, and
    // each shard engine lays its nodes out identically.
    for s in &stores {
        assert_fault_targets(s.site_ids(), s.replica_ids());
        s.set_client_timeout(ms(cfg.client_timeout_ms));
        s.set_faults(schedule.clone());
    }
    let keys = cfg.keys * 2; // spread work across shards
    let bindings: Vec<QuorumBinding> = stores.iter().map(|s| s.binding()).collect();
    let router = ShardedBinding::inline(bindings, 32, seed);
    for k in 0..keys {
        let key = Key::plain(k);
        let idx = router.ring().owner_index(StoreOp::Read(key).object_id());
        stores[idx].preload([(key, Value::Opaque(store_init_value(k)))]);
    }

    let history: History<StoreOp, Versioned> = History::new();
    let client = Client::new(RecordingBinding::new(router.clone(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut next_val: u32 = 10_000;
    let mut issued = 0usize;
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch);
        for _ in 0..batch {
            let k = Key::plain(wl.below(keys));
            match wl.below(10) {
                0..=3 => {
                    let v = Value::Opaque(next_val);
                    next_val += 1;
                    client.invoke_strong(StoreOp::Write(k, v));
                }
                4..=8 => {
                    client.invoke(StoreOp::Read(k));
                }
                _ => {
                    client.invoke_weak(StoreOp::Read(k));
                }
            }
            issued += 1;
        }
        settle_fleet(&router, &stores);
        for s in &stores {
            s.advance(ms(wl.range(1, 120)));
        }
    }

    for s in &stores {
        s.set_faults(Faults::none());
        s.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    }
    for k in 0..keys {
        client.invoke_strong(StoreOp::Read(Key::plain(k)));
    }
    settle_fleet(&router, &stores);
    let tail_mark = history.mark();
    for k in 0..keys {
        client.invoke(StoreOp::Read(Key::plain(k)));
    }
    settle_fleet(&router, &stores);

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let spec = RegisterSpec {
        initial: (0..keys)
            .map(|k| (k, u64::from(store_init_value(k))))
            .collect(),
    };
    let entries = store_lin_entries(&invs);
    if let Err(v) = check_linearizable(&spec, &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: entries.len(),
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// Buggy in-memory binding (negative fixture)
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Spec-generic four-level store
// ---------------------------------------------------------------------

/// Strong closes of a spec store partake in the strong order with the
/// spec's own op type — no translation layer, the binding *is* the
/// spec. Crashed writes are maybe-applied; crashed reads drop out.
fn spec_lin_entries<Op: Clone + fmt::Debug>(
    invs: &[Invocation<Op, u64>],
    is_read: impl Fn(&Op) -> bool,
) -> Vec<LinEntry<Op, u64>> {
    let strong = ConsistencyLevel::STRONG;
    let mut out = Vec::new();
    for inv in invs {
        match inv.closing_event() {
            Some(HistoryEvent::View { level, value, .. }) if level.at_least(strong) => {
                out.push(LinEntry::done(
                    inv.id,
                    inv.op.clone(),
                    *value,
                    inv.submitted,
                    inv.closed_at(),
                ));
            }
            Some(HistoryEvent::Failed { .. }) if !is_read(&inv.op) => {
                out.push(LinEntry::crashed(inv.id, inv.op.clone(), inv.submitted));
            }
            _ => {}
        }
    }
    out
}

fn run_spec_register(
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
) -> (RunSummary, Vec<String>) {
    let store = SimSpecStore::ec2(RegisterSpec::default(), "IRL", seed);
    assert_fault_targets(store.site_ids(), store.replica_ids());
    store.set_client_timeout(ms(cfg.client_timeout_ms));
    store.set_faults(schedule.clone());

    let history: History<RegOp, u64> = History::new();
    let client = Client::new(RecordingBinding::new(store.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut next: u64 = 10_000;
    let mut issued = 0usize;
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch);
        for _ in 0..batch {
            let k = wl.below(cfg.keys);
            match wl.below(10) {
                0..=3 => {
                    client.invoke(RegOp::Write(k, next));
                    next += 1;
                }
                4..=8 => {
                    client.invoke(RegOp::Read(k));
                }
                _ => {
                    client.invoke_weak(RegOp::Read(k));
                }
            }
            issued += 1;
        }
        store.settle();
        store.advance(ms(wl.range(1, 120)));
    }

    store.set_faults(Faults::none());
    store.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    let tail_mark = history.mark();
    for k in 0..cfg.keys {
        client.invoke(RegOp::Read(k));
        store.settle();
    }
    // Let trailing acks and anti-entropy finish before sampling the
    // replicas' logs: update consistency promises convergence *at
    // quiescence*, not mid-gossip.
    store.advance(ms(2_000));

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    violations.extend(
        check_update_consistency(&store.applied_logs())
            .into_iter()
            .map(|v| format!("update-consistency: {v}")),
    );
    let entries = spec_lin_entries(&invs, |op| matches!(op, RegOp::Read(_)));
    if let Err(v) = check_linearizable(&RegisterSpec::default(), &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: entries.len(),
        },
        violations,
    )
}

fn run_spec_counter(
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
) -> (RunSummary, Vec<String>) {
    let store = SimSpecStore::ec2(CounterSpec, "IRL", seed);
    assert_fault_targets(store.site_ids(), store.replica_ids());
    store.set_client_timeout(ms(cfg.client_timeout_ms));
    store.set_faults(schedule.clone());

    let history: History<CtrOp, u64> = History::new();
    let client = Client::new(RecordingBinding::new(store.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut issued = 0usize;
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch);
        for _ in 0..batch {
            let k = wl.below(cfg.keys);
            match wl.below(10) {
                0..=3 => {
                    client.invoke(CtrOp::Add(k, 1 + wl.below(9)));
                }
                4..=8 => {
                    client.invoke(CtrOp::Get(k));
                }
                _ => {
                    client.invoke_weak(CtrOp::Get(k));
                }
            }
            issued += 1;
        }
        store.settle();
        store.advance(ms(wl.range(1, 120)));
    }

    store.set_faults(Faults::none());
    store.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    let tail_mark = history.mark();
    for k in 0..cfg.keys {
        client.invoke(CtrOp::Get(k));
        store.settle();
    }
    store.advance(ms(2_000));

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    violations.extend(
        check_update_consistency(&store.applied_logs())
            .into_iter()
            .map(|v| format!("update-consistency: {v}")),
    );
    let entries = spec_lin_entries(&invs, |op| matches!(op, CtrOp::Get(_)));
    if let Err(v) = check_linearizable(&CounterSpec, &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: entries.len(),
        },
        violations,
    )
}

// ---------------------------------------------------------------------
// CRDT store and escrow tickets
// ---------------------------------------------------------------------

/// SEC violations of the CRDT store, formatted for the report. Returns
/// the number of entries the checker inspected — replayed log entries
/// in op mode, compared states in state mode.
fn sec_violations(store: &SimCrdtStore, state_based: bool) -> (usize, Vec<String>) {
    // State-based gossip ships merged states, not effects, so the logs
    // hold only locally-originated entries — the visibility and replay
    // clauses don't apply, only state convergence does.
    let logs = if state_based {
        Vec::new()
    } else {
        store.sec_logs()
    };
    let states = store.states();
    let checked = if state_based {
        states.len()
    } else {
        logs.iter().map(Vec::len).sum()
    };
    let out = check_sec(&store.initial_state(), &logs, &states)
        .into_iter()
        .map(|v| format!("sec: {v}"))
        .collect();
    (checked, out)
}

fn run_crdt(
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
    state_based: bool,
) -> (RunSummary, Vec<String>) {
    let store = if state_based {
        SimCrdtStore::ec2_state("IRL", seed)
    } else {
        SimCrdtStore::ec2("IRL", seed)
    };
    assert_fault_targets(store.site_ids(), store.replica_ids());
    store.set_client_timeout(ms(cfg.client_timeout_ms));
    store.set_faults(schedule.clone());

    let history: History<CrdtOp, CrdtVal> = History::new();
    let client = Client::new(RecordingBinding::new(store.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut issued = 0usize;
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch);
        for _ in 0..batch {
            let k = wl.below(cfg.keys);
            match wl.below(10) {
                0..=2 => {
                    client.invoke(CrdtOp::CtrAdd(k, (1 + wl.below(9)) as i64));
                }
                3 => {
                    client.invoke(CrdtOp::SetAdd(k, wl.below(8)));
                }
                4 => {
                    client.invoke(CrdtOp::SetRemove(k, wl.below(8)));
                }
                5 => {
                    client.invoke(CrdtOp::MapPut(k, wl.below(4), wl.below(1_000)));
                }
                6..=7 => {
                    client.invoke(CrdtOp::CtrGet(k));
                }
                8 => {
                    client.invoke_weak(CrdtOp::SetContains(k, wl.below(8)));
                }
                _ => {
                    client.invoke_weak(CrdtOp::MapGet(k, wl.below(4)));
                }
            }
            issued += 1;
        }
        store.settle();
        store.advance(ms(wl.range(1, 120)));
    }

    store.set_faults(Faults::none());
    store.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    let tail_mark = history.mark();
    for k in 0..cfg.keys {
        client.invoke(CrdtOp::CtrGet(k));
        store.settle();
    }
    // Anti-entropy (or effect retransmission) must finish before the
    // SEC checker samples logs and states: SEC promises convergence at
    // quiescence, not mid-gossip.
    store.advance(ms(2_000));

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let (replayed, sec) = sec_violations(&store, state_based);
    violations.extend(sec);
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: replayed,
        },
        violations,
    )
}

fn run_tickets_escrow(
    seed: u64,
    schedule: &Faults,
    cfg: &ExplorerConfig,
) -> (RunSummary, Vec<String>) {
    // Size the stock so the workload actually exhausts segments and
    // exercises the transfer path: roughly two buys per ticket, spread
    // unevenly so one segment runs dry early.
    let stock = (cfg.ops as u64) / 2;
    let a = stock / 2;
    let b = stock / 4;
    let store = SimEscrow::ec2(vec![a, b, stock - a - b], "IRL", seed, false);
    assert_fault_targets(store.site_ids(), store.replica_ids());
    store.set_client_timeout(ms(cfg.client_timeout_ms));
    store.set_faults(schedule.clone());

    let history: History<EscrowOp, Sale> = History::new();
    let client = Client::new(RecordingBinding::new(store.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    let mut issued = 0usize;
    // Transfer rounds are heavier than quorum reads; cap the bursts.
    while issued < cfg.ops {
        let batch = 1 + wl.below(cfg.max_batch.min(3));
        for _ in 0..batch {
            match wl.below(10) {
                0..=6 => {
                    client.invoke(EscrowOp::Buy);
                }
                7..=8 => {
                    client.invoke_weak(EscrowOp::Avail);
                }
                _ => {
                    client.invoke_strong(EscrowOp::Avail);
                }
            }
            issued += 1;
        }
        store.settle();
        store.advance(ms(wl.range(1, 120)));
    }

    store.set_faults(Faults::none());
    store.advance(ms(cfg.plan.horizon_ms + cfg.client_timeout_ms + 1_000));
    let tail_mark = history.mark();
    // A weak Avail reads the *local segment* by design, so the quiescent
    // tail closes strong-only: the escrow convergence guarantee is over
    // the ledgers, which check_escrow inspects directly.
    client.invoke_strong(EscrowOp::Avail);
    store.settle();
    store.advance(ms(2_000));

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let states = store.states();
    violations.extend(
        check_escrow(&states)
            .into_iter()
            .map(|v| format!("escrow: {v}")),
    );
    // Cross-check ledgers against the client's view: every sale the
    // client saw confirmed must be recorded in the merged ledger.
    let confirmed = invs
        .iter()
        .filter(|i| {
            matches!(i.op, EscrowOp::Buy)
                && matches!(i.final_view(), Some((Sale::Confirmed { .. }, _)))
        })
        .count();
    if let Some(first) = states.first() {
        let mut merged = first.clone();
        for s in &states[1..] {
            merged.merge(s);
        }
        if (merged.total_sold() as usize) < confirmed {
            violations.push(format!(
                "escrow: client saw {confirmed} confirmed sales but the merged ledger \
                 records only {}",
                merged.total_sold()
            ));
        }
    }
    // Strong closes (sales and global Avail reads) entered the semantic
    // check; the post-heal tail Avail guarantees at least one even when
    // a hostile schedule times out every workload buy.
    let strong_closed = invs
        .iter()
        .filter(|i| {
            i.final_view()
                .is_some_and(|(_, level)| level.at_least(ConsistencyLevel::STRONG))
        })
        .count();
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: strong_closed,
        },
        violations,
    )
}

/// Like the other negative fixtures, the broken CRDT runs without
/// faults: concurrent bursts from round-robin origins already deliver
/// the overwrite "effects" in different orders at different replicas,
/// and the SEC checker must reject. Distinct deltas keep each origin's
/// shipped totals distinct, so the divergence shows in the values.
fn run_broken_crdt(seed: u64, cfg: &ExplorerConfig) -> (RunSummary, Vec<String>) {
    let store = SimCrdtStore::ec2_broken("IRL", seed);
    assert_fault_targets(store.site_ids(), store.replica_ids());

    let history: History<CrdtOp, CrdtVal> = History::new();
    let client = Client::new(RecordingBinding::new(store.binding(), history.clone()));

    let mut wl = workload_rng(seed);
    for i in 0..cfg.ops {
        let k = wl.below(cfg.keys);
        client.invoke_weak(CrdtOp::CtrAdd(k, 1 + i as i64));
        if wl.below(4) == 0 {
            store.settle();
        }
    }
    store.settle();
    store.advance(ms(5_000));

    let tail_mark = history.mark();
    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let (replayed, sec) = sec_violations(&store, false);
    violations.extend(sec);
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: replayed,
        },
        violations,
    )
}

/// The arrival-order fixture runs without faults: even on a clean
/// network, concurrent submissions reach the replicas in different
/// orders, so the per-replica linearizations diverge and the
/// update-consistency checker must reject. (Faults would only mask the
/// signal behind timeouts.)
fn run_buggy_spec(seed: u64, cfg: &ExplorerConfig) -> (RunSummary, Vec<String>) {
    let store = SimSpecStore::ec2_buggy(RegisterSpec::default(), "IRL", seed);
    assert_fault_targets(store.site_ids(), store.replica_ids());

    let history: History<RegOp, u64> = History::new();
    let client = Client::new(RecordingBinding::new(
        store.update_binding(),
        history.clone(),
    ));

    let mut wl = workload_rng(seed);
    for next in 10_000..10_000 + cfg.ops as u64 {
        // Submit in bursts without settling in between: the round-robin
        // origins then genuinely race, which is what makes arrival
        // orders differ across replicas.
        let k = wl.below(cfg.keys);
        client.invoke(RegOp::Write(k, next));
        if wl.below(4) == 0 {
            store.settle();
        }
    }
    store.settle();
    store.advance(ms(5_000));

    let tail_mark = history.mark();
    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    violations.extend(
        check_update_consistency(&store.applied_logs())
            .into_iter()
            .map(|v| format!("update-consistency: {v}")),
    );
    (
        RunSummary {
            invocations: invs.len(),
            crashed: crashed_count(&invs),
            lin_entries: 0,
        },
        violations,
    )
}

fn run_buggy(seed: u64, cfg: &ExplorerConfig) -> (RunSummary, Vec<String>) {
    let history: History<KvOp, u64> = History::new();
    let client = Client::new(RecordingBinding::new(LaggyMem::default(), history.clone()));
    let mut wl = workload_rng(seed);
    // One write per key up front so the stale shadow differs from the
    // fresh state by the time the tail reads run.
    for k in 0..cfg.keys {
        client.invoke_strong(KvOp::Put(k, 1_000 + k));
    }
    for _ in 0..cfg.ops {
        let k = wl.below(cfg.keys);
        match wl.below(3) {
            0 => {
                client.invoke_strong(KvOp::Add(k, 1 + wl.below(9)));
            }
            1 => {
                client.invoke_strong(KvOp::Get(k));
            }
            _ => {
                client.invoke(KvOp::Get(k));
            }
        }
    }
    let tail_mark = history.mark();
    for k in 0..cfg.keys {
        client.invoke(KvOp::Get(k));
    }

    let invs = history.snapshot();
    let mut violations = structural_violations(&invs, tail_mark);
    let mut entries = Vec::new();
    for inv in &invs {
        let op = match inv.op {
            KvOp::Get(k) => CtrOp::Get(k),
            KvOp::Put(k, v) => CtrOp::Put(k, v),
            KvOp::Add(k, d) => CtrOp::Add(k, d),
        };
        if let Some((value, level)) = inv.final_view() {
            if level.at_least(ConsistencyLevel::STRONG) {
                entries.push(LinEntry::done(
                    inv.id,
                    op,
                    *value,
                    inv.submitted,
                    inv.closed_at(),
                ));
            }
        }
    }
    if let Err(v) = check_linearizable(&CounterSpec, &entries) {
        violations.push(format!("linearizability: {v}"));
    }
    (
        RunSummary {
            invocations: invs.len(),
            crashed: 0,
            lin_entries: entries.len(),
        },
        violations,
    )
}
