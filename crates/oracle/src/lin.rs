//! Linearizability of strong views: a Wing & Gong-style search with
//! memoization.
//!
//! The checker takes the strong (final) views of a recorded history as
//! interval-stamped operations and searches for a total order that (a)
//! respects real-time precedence — if one operation closed before
//! another was submitted, it must come first — and (b) replays through
//! a [`SeqSpec`] reproducing every observed return value. Memoizing on
//! (set of linearized ops, spec state) keeps the search tractable for
//! the explorer's histories (≤ ~200 operations).
//!
//! **Crashed operations** (closed by error — e.g. a client timeout
//! racing a lost reply) may or may not have taken effect; the checker
//! branches on both, with their return values unconstrained and their
//! intervals never ending. This is what makes the checker sound under
//! fault injection: a timed-out write that *did* land at the replicas
//! must not turn a correct run into a false violation.

use std::collections::HashSet;
use std::fmt;

use crate::spec::SeqSpec;

/// How an operation concluded.
#[derive(Clone, Debug)]
pub enum LinOutcome<R> {
    /// Closed with a strong view carrying this return value.
    Done(R),
    /// Closed by error: it may or may not have taken effect, and no
    /// return value constrains it.
    Crashed,
}

/// One operation of a linearizability history.
#[derive(Clone, Debug)]
pub struct LinEntry<O, R> {
    /// The source invocation's id (for reporting).
    pub id: usize,
    /// The operation.
    pub op: O,
    /// Its outcome.
    pub outcome: LinOutcome<R>,
    /// Interval start (the invocation's submission sequence number).
    pub start: u64,
    /// Interval end (the close's sequence number; `u64::MAX` if crashed).
    pub end: u64,
}

impl<O, R> LinEntry<O, R> {
    /// A completed operation.
    pub fn done(id: usize, op: O, ret: R, start: u64, end: u64) -> Self {
        LinEntry {
            id,
            op,
            outcome: LinOutcome::Done(ret),
            start,
            end,
        }
    }

    /// A crashed operation (unknown effect, unconstrained return).
    pub fn crashed(id: usize, op: O, start: u64) -> Self {
        LinEntry {
            id,
            op,
            outcome: LinOutcome::Crashed,
            start,
            end: u64::MAX,
        }
    }
}

/// Why a history is not linearizable (or could not be decided).
#[derive(Clone, Debug)]
pub struct LinViolation {
    /// Most completed operations any explored order linearized.
    pub linearized: usize,
    /// Completed operations in the history.
    pub completed: usize,
    /// True if the search budget ran out before a verdict.
    pub inconclusive: bool,
    /// Sample mismatches at the deepest point reached.
    pub stuck_on: Vec<String>,
}

impl fmt::Display for LinViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inconclusive {
            write!(f, "linearizability search exhausted its budget")?;
        } else {
            write!(
                f,
                "not linearizable: best order placed {}/{} completed ops",
                self.linearized, self.completed
            )?;
        }
        for s in self.stuck_on.iter().take(3) {
            write!(f, "; {s}")?;
        }
        Ok(())
    }
}

struct Searcher<'a, S: SeqSpec> {
    spec: &'a S,
    entries: &'a [LinEntry<S::Op, S::Ret>],
    memo: HashSet<(Vec<u64>, S::State)>,
    budget: usize,
    total_done: usize,
    best: usize,
    stuck_on: Vec<String>,
}

impl<'a, S: SeqSpec> Searcher<'a, S> {
    /// Returns `Ok(true)` if every completed op can be linearized from
    /// here, `Err(())` if the budget ran out.
    fn run(&mut self, mask: &mut Vec<u64>, state: &S::State, completed: usize) -> Result<bool, ()> {
        if completed == self.total_done {
            return Ok(true);
        }
        if !self.memo.insert((mask.clone(), state.clone())) {
            return Ok(false);
        }
        if self.budget == 0 {
            return Err(());
        }
        self.budget -= 1;
        let pending = |mask: &Vec<u64>, i: usize| mask[i / 64] & (1 << (i % 64)) == 0;
        let min_end = (0..self.entries.len())
            .filter(|&i| pending(mask, i))
            .map(|i| self.entries[i].end)
            .min()
            .unwrap_or(u64::MAX);
        if completed > self.best {
            self.best = completed;
            self.stuck_on.clear();
        }
        for i in 0..self.entries.len() {
            if !pending(mask, i) || self.entries[i].start > min_end {
                continue;
            }
            let e = &self.entries[i];
            match &e.outcome {
                LinOutcome::Done(ret) => {
                    let (next, got) = self.spec.apply(state, &e.op);
                    if got == *ret {
                        mask[i / 64] |= 1 << (i % 64);
                        if self.run(mask, &next, completed + 1)? {
                            return Ok(true);
                        }
                        mask[i / 64] &= !(1 << (i % 64));
                    } else if completed >= self.best && self.stuck_on.len() < 3 {
                        self.stuck_on.push(format!(
                            "inv {}: {:?} returned {:?}, sequentially expected {:?}",
                            e.id, e.op, ret, got
                        ));
                    }
                }
                LinOutcome::Crashed => {
                    mask[i / 64] |= 1 << (i % 64);
                    // Branch 1: the crashed op took effect here.
                    let (next, _) = self.spec.apply(state, &e.op);
                    if self.run(mask, &next, completed)? {
                        return Ok(true);
                    }
                    // Branch 2: it never took effect at all.
                    if self.run(mask, state, completed)? {
                        return Ok(true);
                    }
                    mask[i / 64] &= !(1 << (i % 64));
                }
            }
        }
        Ok(false)
    }
}

/// Checks that `entries` is linearizable w.r.t. `spec`.
///
/// # Errors
///
/// Returns a [`LinViolation`] describing the deepest prefix any order
/// reached (or that the search budget was exhausted).
pub fn check_linearizable<S: SeqSpec>(
    spec: &S,
    entries: &[LinEntry<S::Op, S::Ret>],
) -> Result<(), LinViolation> {
    let total_done = entries
        .iter()
        .filter(|e| matches!(e.outcome, LinOutcome::Done(_)))
        .count();
    let mut searcher = Searcher {
        spec,
        entries,
        memo: HashSet::new(),
        budget: 2_000_000,
        total_done,
        best: 0,
        stuck_on: Vec::new(),
    };
    let mut mask = vec![0u64; entries.len().div_ceil(64).max(1)];
    match searcher.run(&mut mask, &spec.initial(), 0) {
        Ok(true) => Ok(()),
        Ok(false) => Err(LinViolation {
            linearized: searcher.best,
            completed: total_done,
            inconclusive: false,
            stuck_on: searcher.stuck_on,
        }),
        Err(()) => Err(LinViolation {
            linearized: searcher.best,
            completed: total_done,
            inconclusive: true,
            stuck_on: searcher.stuck_on,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{QOp, QRet, QueueSpec, RegOp, RegisterSpec};

    fn reg() -> RegisterSpec {
        RegisterSpec::default()
    }

    #[test]
    fn sequential_reads_after_write_must_see_it() {
        // W(1,5) completes, then R(1) starts: returning 0 is a violation.
        let bad = vec![
            LinEntry::done(0, RegOp::Write(1, 5), 5, 0, 1),
            LinEntry::done(1, RegOp::Read(1), 0, 2, 3),
        ];
        let v = check_linearizable(&reg(), &bad).unwrap_err();
        assert!(!v.inconclusive);
        assert_eq!(v.linearized, 1);
        assert!(v.to_string().contains("expected"), "{v}");
        let good = vec![
            LinEntry::done(0, RegOp::Write(1, 5), 5, 0, 1),
            LinEntry::done(1, RegOp::Read(1), 5, 2, 3),
        ];
        assert!(check_linearizable(&reg(), &good).is_ok());
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        // R overlaps W: both old and new values linearize.
        for ret in [0u64, 5] {
            let h = vec![
                LinEntry::done(0, RegOp::Write(1, 5), 5, 0, 10),
                LinEntry::done(1, RegOp::Read(1), ret, 1, 9),
            ];
            assert!(check_linearizable(&reg(), &h).is_ok(), "ret {ret}");
        }
    }

    #[test]
    fn crashed_write_may_or_may_not_take_effect() {
        // A timed-out write followed by reads observing it (or not):
        // both histories are linearizable.
        for ret in [0u64, 5] {
            let h = vec![
                LinEntry::crashed(0, RegOp::Write(1, 5), 0),
                LinEntry::done(1, RegOp::Read(1), ret, 2, 3),
            ];
            assert!(check_linearizable(&reg(), &h).is_ok(), "ret {ret}");
        }
        // But it cannot take effect twice: 5 then 0 then 5 again is not
        // explainable by one crashed write.
        let h = vec![
            LinEntry::crashed(0, RegOp::Write(1, 5), 0),
            LinEntry::done(1, RegOp::Read(1), 5, 2, 3),
            LinEntry::done(2, RegOp::Read(1), 0, 4, 5),
            LinEntry::done(3, RegOp::Read(1), 5, 6, 7),
        ];
        assert!(check_linearizable(&reg(), &h).is_err());
    }

    #[test]
    fn real_time_order_is_respected_even_when_values_agree() {
        // R1 sees 7, completes; then W(1,9) completes; then R2 sees 7
        // again — stale read after a completed overwrite.
        let h = vec![
            LinEntry::done(0, RegOp::Write(1, 7), 7, 0, 1),
            LinEntry::done(1, RegOp::Read(1), 7, 2, 3),
            LinEntry::done(2, RegOp::Write(1, 9), 9, 4, 5),
            LinEntry::done(3, RegOp::Read(1), 7, 6, 7),
        ];
        assert!(check_linearizable(&reg(), &h).is_err());
    }

    #[test]
    fn queue_double_pop_of_same_element_rejected() {
        let spec = QueueSpec { prefill: 2 };
        let pop = |name: u64, remaining: u64| QRet {
            name: Some(name),
            remaining,
        };
        let bad = vec![
            LinEntry::done(0, QOp::Dequeue, pop(0, 1), 0, 1),
            LinEntry::done(1, QOp::Dequeue, pop(0, 1), 2, 3),
        ];
        assert!(check_linearizable(&spec, &bad).is_err());
        let good = vec![
            LinEntry::done(0, QOp::Dequeue, pop(0, 1), 0, 1),
            LinEntry::done(1, QOp::Dequeue, pop(1, 0), 2, 3),
        ];
        assert!(check_linearizable(&spec, &good).is_ok());
    }

    #[test]
    fn memoized_search_handles_wide_concurrency() {
        // 16 fully concurrent writes to distinct keys + a read per key
        // afterwards: naive search is 16! orders; memoization makes it
        // instant.
        let mut h = Vec::new();
        for k in 0..16u64 {
            h.push(LinEntry::done(
                k as usize,
                RegOp::Write(k, k + 100),
                k + 100,
                0,
                100,
            ));
        }
        for k in 0..16u64 {
            h.push(LinEntry::done(
                16 + k as usize,
                RegOp::Read(k),
                k + 100,
                200 + k,
                300 + k,
            ));
        }
        assert!(check_linearizable(&reg(), &h).is_ok());
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(&reg(), &[]).is_ok());
    }
}
