//! # icg-oracle — history-recording consistency oracle
//!
//! The paper's value proposition rests on guarantees this workspace
//! previously asserted only in hand-picked scenarios: preliminary views
//! never regress in consistency level, weak views converge to the
//! strong view, and the strongest view closes exactly once and is
//! linearizable. This crate checks those guarantees **mechanically**
//! over recorded histories, against every binding, under randomized
//! fault schedules:
//!
//! - [`checkers`] — view **monotonicity** and quiescent **convergence**
//!   over [`correctables::History`] snapshots, **update consistency**
//!   over replica logs, **strong eventual consistency** of the CRDT
//!   stacks (eventual visibility, effect commutativity, convergence),
//!   and the escrow **no-oversell** invariant;
//! - [`lin`] + [`spec`] — **linearizability** of strong views (Wing &
//!   Gong search with memoization and maybe-applied crashed ops)
//!   against pluggable sequential specs (register, counter, queue,
//!   revisioned KV);
//! - [`explorer`] — the seeded **fault-schedule explorer**: one seed
//!   derives a fault schedule (partitions, downtime, drops) and a
//!   concurrent workload, drives a full simulated stack, runs every
//!   checker, and shrinks failures to a minimal reproducible
//!   `(seed, schedule)` pair;
//! - [`buggy`] — a deliberately broken binding proving the checkers
//!   actually reject.
//!
//! Bugs this oracle already caught (fixed in their crates, regression
//! tests left behind): the *CC confirmation fabricating an absent
//! strong view when the preliminary was lost
//! (`quorumstore/tests/confirm_fault.rs`), and causal backups stalling
//! forever after a lost replication message
//! (`causalstore::store` anti-entropy).

pub mod buggy;
pub mod checkers;
pub mod explorer;
pub mod lin;
/// Sequential specifications (re-exported from `correctables::spec`, where
/// the spec-driven bindings also build on them).
pub mod spec {
    pub use correctables::spec::*;
}

pub use buggy::LaggyMem;
pub use checkers::{
    check_convergence, check_escrow, check_monotonicity, check_sec, check_update_consistency,
    Violation, ViolationKind,
};
pub use explorer::{explore, replay, ExplorerConfig, FailureReport, RunSummary, StackKind};
pub use lin::{check_linearizable, LinEntry, LinOutcome, LinViolation};
pub use spec::{
    CounterSpec, CtrOp, KvStoreSpec, KvsOp, QOp, QRet, QueueSpec, QueueState, RegOp, RegisterSpec,
    SeqSpec,
};
