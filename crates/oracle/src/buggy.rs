//! A deliberately buggy in-memory binding: the oracle's negative-test
//! fixture.
//!
//! [`LaggyMem`] looks like `icg_shard::MemBinding` but serves views
//! from a one-write-stale shadow copy: weak views are *always* stale
//! (so quiescent weak views never converge to the strong result), and
//! every [`LaggyMem::STALE_EVERY`]-th strong read is answered from the
//! shadow too (a non-linearizable stale strong view). The runtime-level
//! guarantees (level monotonicity, close-once) are upheld — those are
//! enforced by the `Upcall` machinery and *cannot* be broken by a
//! binding — which is exactly the point: the value-level bugs are the
//! ones only a history checker can catch.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::{Binding, ConsistencyLevel, LevelSet, Upcall};
use icg_shard::KvOp;

struct LaggyState {
    fresh: HashMap<u64, u64>,
    /// Value each key held *before* its most recent write.
    stale: HashMap<u64, u64>,
    strong_reads: u64,
}

/// The buggy counter store (see module docs).
#[derive(Clone)]
pub struct LaggyMem {
    state: Arc<Mutex<LaggyState>>,
}

impl Default for LaggyMem {
    fn default() -> Self {
        LaggyMem {
            state: Arc::new(Mutex::new(LaggyState {
                fresh: HashMap::new(),
                stale: HashMap::new(),
                strong_reads: 0,
            })),
        }
    }
}

impl LaggyMem {
    /// Every n-th strong read is served stale.
    pub const STALE_EVERY: u64 = 4;
}

impl Binding for LaggyMem {
    type Op = KvOp;
    type Val = u64;

    fn consistency_levels(&self) -> LevelSet {
        LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::STRONG])
    }

    fn submit(&self, op: KvOp, levels: &[ConsistencyLevel], upcall: Upcall<u64>) {
        let (weak_val, strong_val) = {
            let mut g = self.state.lock();
            match op {
                KvOp::Get(k) => {
                    g.strong_reads += 1;
                    let fresh = g.fresh.get(&k).copied().unwrap_or(0);
                    let stale = g.stale.get(&k).copied().unwrap_or(0);
                    let strong = if g.strong_reads.is_multiple_of(Self::STALE_EVERY) {
                        stale // BUG: a stale value sold as strong.
                    } else {
                        fresh
                    };
                    (stale, strong)
                }
                KvOp::Put(k, v) => {
                    let old = g.fresh.insert(k, v).unwrap_or(0);
                    g.stale.insert(k, old);
                    (v, v)
                }
                KvOp::Add(k, d) => {
                    let old = g.fresh.get(&k).copied().unwrap_or(0);
                    let new = old.wrapping_add(d);
                    g.fresh.insert(k, new);
                    g.stale.insert(k, old);
                    (new, new)
                }
            }
        };
        for l in levels {
            let v = if *l == ConsistencyLevel::STRONG {
                strong_val
            } else {
                weak_val // BUG for reads: quiescent weak views stay stale.
            };
            upcall.deliver(v, *l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::Client;

    #[test]
    fn strong_reads_eventually_serve_stale_values() {
        let b = LaggyMem::default();
        let client = Client::new(b.clone());
        client.invoke_strong(KvOp::Put(1, 10));
        client.invoke_strong(KvOp::Put(1, 20));
        let mut saw_stale = false;
        for _ in 0..LaggyMem::STALE_EVERY + 1 {
            let c = client.invoke_strong(KvOp::Get(1));
            if c.final_view().unwrap().value == 10 {
                saw_stale = true;
            }
        }
        assert!(saw_stale, "the bug must actually fire");
    }
}
