//! History checkers for the paper's two structural guarantees:
//!
//! - **View monotonicity** (§3.1): within one invocation, views arrive
//!   at strictly ascending consistency levels, the invocation closes
//!   exactly once (final view at the strongest requested level, or an
//!   error), and nothing is delivered after the close.
//! - **Convergence** (§3.1): in a quiescent system, the preliminary
//!   (weak) views of an operation carry the same value as its final
//!   (strong) view — weak views *converge* to the strong result.
//!
//! Both checkers work over [`Invocation`] records snapshot from a
//! [`correctables::History`]; they interpret nothing about the
//! operations themselves, so they apply to every binding uniformly.
//! (Linearizability — the *value* guarantee of strong views — lives in
//! [`crate::lin`], which does need a sequential specification.)
//!
//! Two further checkers inspect replica state rather than client
//! histories: [`check_update_consistency`] (a single converged total
//! order) and [`check_sec`] / [`check_escrow`] (strong eventual
//! consistency of the CRDT stacks and the escrow no-oversell
//! invariant).

use std::collections::BTreeSet;
use std::fmt;

use correctables::record::{HistoryEvent, Invocation};
use icg_crdt::{Crdt, CrdtState, EscrowState, SecEntry};

/// What a structural checker found wrong with one invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A view's level did not strictly exceed the previous view's.
    LevelRegressed,
    /// More than one closing event was recorded.
    MultipleCloses,
    /// An event was recorded after the invocation closed.
    EventAfterClose,
    /// The invocation never closed (and the checker required closure).
    NeverClosed,
    /// A preliminary view arrived at a level that was never requested.
    UnrequestedLevel,
    /// The final view's level was below the strongest requested level.
    WeakClose,
    /// A preliminary view's value differs from the final view's value
    /// (convergence check).
    Diverged,
    /// Two replicas' applied-update logs disagree on the total order
    /// (update-consistency check).
    OrderDiverged,
    /// A replica's applied-update log violates some origin's local
    /// submission order (update-consistency check).
    LocalOrderViolated,
    /// An accepted update is missing from some replica's delivered log
    /// at quiescence (SEC eventual-visibility check).
    NotEventuallyVisible,
    /// Two replicas delivered the same update set but replaying their
    /// delivery orders yields different states — the downstream effects
    /// do not commute (SEC check).
    EffectNotCommutative,
    /// Two replicas' quiescent states differ (SEC convergence check, or
    /// escrow ledger convergence).
    StateDiverged,
    /// The merged escrow ledgers sold more than the initial allocation —
    /// the invariant that segmentation was supposed to preserve.
    EscrowOversold,
}

/// One checker finding, tied to an invocation of the history.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The invocation's id in the history.
    pub invocation: usize,
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable details (op, levels, values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invocation {}: {:?} — {}",
            self.invocation, self.kind, self.detail
        )
    }
}

/// Checks per-invocation view monotonicity over a history snapshot.
///
/// With `require_closed`, an invocation that never closed is itself a
/// violation — pass `true` when the snapshot was taken after the system
/// settled, `false` for mid-run snapshots.
pub fn check_monotonicity<Op: fmt::Debug, T: fmt::Debug>(
    invocations: &[Invocation<Op, T>],
    require_closed: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for inv in invocations {
        let mut push = |kind: ViolationKind, detail: String| {
            out.push(Violation {
                invocation: inv.id,
                kind,
                detail: format!("op {:?}: {detail}", inv.op),
            })
        };
        let strongest = inv.strongest();
        let mut last_rank: Option<u8> = None;
        let mut closed = false;
        for e in &inv.events {
            if closed {
                push(
                    ViolationKind::EventAfterClose,
                    format!("event {e:?} after the close"),
                );
                continue;
            }
            match e {
                HistoryEvent::View {
                    level,
                    value,
                    closing,
                    ..
                } => {
                    if let Some(prev) = last_rank {
                        if level.rank() <= prev {
                            push(
                                ViolationKind::LevelRegressed,
                                format!(
                                    "view at {level} (rank {}) after rank {prev}",
                                    level.rank()
                                ),
                            );
                        }
                    }
                    last_rank = Some(level.rank());
                    if *closing {
                        closed = true;
                        if let Some(s) = strongest {
                            if level.rank() < s.rank() {
                                push(
                                    ViolationKind::WeakClose,
                                    format!("closed at {level} but {s} was requested"),
                                );
                            }
                        }
                    } else if !inv.levels.contains(level) {
                        push(
                            ViolationKind::UnrequestedLevel,
                            format!("preliminary {value:?} at unrequested level {level}"),
                        );
                    }
                }
                HistoryEvent::Failed { .. } => {
                    closed = true;
                }
            }
        }
        // Count closes directly so "two closing views" is reported as
        // MultipleCloses (the loop above reports them as after-close
        // events too, which is accurate but less specific).
        let closes = inv.events.iter().filter(|e| e.is_closing()).count();
        if closes > 1 {
            push(
                ViolationKind::MultipleCloses,
                format!("{closes} closing events"),
            );
        }
        if closes == 0 && require_closed {
            push(
                ViolationKind::NeverClosed,
                format!("{} events, none closing", inv.events.len()),
            );
        }
    }
    out
}

/// Checks convergence over the quiescent suffix of a history: for every
/// invocation submitted at or after `from_seq` that closed with a final
/// view, all preliminary views must carry the same value as the final
/// view.
///
/// Scoping matters: mid-run, weak views are *allowed* to be stale —
/// that staleness is the latency the paper trades against. The promise
/// is that they converge once the system quiesces, so callers mark the
/// history after quiescing and check only the reads issued after that.
pub fn check_convergence<Op: fmt::Debug, T: PartialEq + fmt::Debug>(
    invocations: &[Invocation<Op, T>],
    from_seq: u64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for inv in invocations {
        if inv.submitted < from_seq {
            continue;
        }
        let Some((final_value, final_level)) = inv.final_view() else {
            continue;
        };
        for e in &inv.events {
            if let HistoryEvent::View {
                level,
                value,
                closing: false,
                ..
            } = e
            {
                if value != final_value {
                    out.push(Violation {
                        invocation: inv.id,
                        kind: ViolationKind::Diverged,
                        detail: format!(
                            "op {:?}: quiescent {level} view {value:?} != final {final_level} \
                             view {final_value:?}",
                            inv.op
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Checks *update consistency* (Perrin, Mostéfaoui & Jard) over the
/// replicas' applied-update logs at quiescence: all replicas must have
/// converged to a **single** total order of updates, and that order must
/// respect every origin's local submission order (each origin's `seq`s
/// appear ascending and gapless).
///
/// Unlike the view checkers above, this one inspects replica state, not
/// client histories — convergence *of the order* is exactly the
/// guarantee update consistency adds over eventual consistency, and it
/// is invisible from any single client's views. `Violation::invocation`
/// carries the index of the offending replica (the detail string says
/// so too).
pub fn check_update_consistency(logs: &[Vec<specstore::UpdateId>]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(reference) = logs.first() else {
        return out;
    };
    for (i, log) in logs.iter().enumerate().skip(1) {
        if log != reference {
            let at = reference
                .iter()
                .zip(log.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| reference.len().min(log.len()));
            out.push(Violation {
                invocation: i,
                kind: ViolationKind::OrderDiverged,
                detail: format!(
                    "replica {i} log ({} updates) diverges from replica 0 ({} updates) \
                     at position {at}: {:?} vs {:?}",
                    log.len(),
                    reference.len(),
                    log.get(at),
                    reference.get(at),
                ),
            });
        }
    }
    for (i, log) in logs.iter().enumerate() {
        let mut last_seq: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for u in log {
            let prev = last_seq.insert(u.origin, u.seq);
            let expected = prev.map_or(1, |p| p + 1);
            if u.seq != expected {
                out.push(Violation {
                    invocation: i,
                    kind: ViolationKind::LocalOrderViolated,
                    detail: format!(
                        "replica {i}: origin {} seq {} follows seq {:?} (expected {expected})",
                        u.origin, u.seq, prev
                    ),
                });
            }
        }
    }
    out
}

/// Checks *strong eventual consistency* (Shapiro et al.) over the CRDT
/// replicas' delivered-effect logs and quiescent states:
///
/// 1. **Eventual visibility** — every update accepted anywhere appears
///    in every replica's delivered log at quiescence;
/// 2. **Commutativity** — replaying each replica's log (its own
///    delivery order) from `initial` yields the same state on every
///    replica that delivered the same update set. Unlike update
///    consistency, the *orders* may differ — SEC demands the effects
///    absorb the difference;
/// 3. **Convergence** — the replicas' live states are pairwise equal
///    (this also catches in-place divergence the replay can't see).
///
/// State-based deployments gossip full states rather than effects, so
/// their logs carry only locally-originated entries: pass `logs = &[]`
/// there and the checker reduces to the convergence clause.
///
/// `Violation::invocation` carries the offending replica's index, as in
/// [`check_update_consistency`].
pub fn check_sec(
    initial: &CrdtState,
    logs: &[Vec<SecEntry>],
    states: &[CrdtState],
) -> Vec<Violation> {
    let mut out = Vec::new();
    if !logs.is_empty() {
        let all_ids: BTreeSet<(usize, u64)> = logs.iter().flatten().map(SecEntry::id).collect();
        let mut visible_everywhere = true;
        for (i, log) in logs.iter().enumerate() {
            let ids: BTreeSet<(usize, u64)> = log.iter().map(SecEntry::id).collect();
            let missing: Vec<(usize, u64)> = all_ids.difference(&ids).copied().collect();
            if !missing.is_empty() {
                visible_everywhere = false;
                out.push(Violation {
                    invocation: i,
                    kind: ViolationKind::NotEventuallyVisible,
                    detail: format!(
                        "replica {i} delivered {} of {} updates; missing e.g. \
                         (origin, seq) = {:?}",
                        ids.len(),
                        all_ids.len(),
                        missing.first(),
                    ),
                });
            }
        }
        // Replay only when every replica saw the full set: with gaps the
        // replays differ trivially and visibility is the real finding.
        if visible_everywhere {
            let replayed: Vec<CrdtState> = logs
                .iter()
                .map(|log| {
                    let mut s = initial.clone();
                    for e in log {
                        s.effect(&e.effect);
                    }
                    s
                })
                .collect();
            for (i, s) in replayed.iter().enumerate().skip(1) {
                if s != &replayed[0] {
                    out.push(Violation {
                        invocation: i,
                        kind: ViolationKind::EffectNotCommutative,
                        detail: format!(
                            "replica {i} replayed its delivery order of the same {} \
                             updates to a different state than replica 0",
                            all_ids.len(),
                        ),
                    });
                }
            }
        }
    }
    for (i, s) in states.iter().enumerate().skip(1) {
        if s != &states[0] {
            out.push(Violation {
                invocation: i,
                kind: ViolationKind::StateDiverged,
                detail: format!("replica {i} quiescent state differs from replica 0"),
            });
        }
    }
    out
}

/// Checks the escrow deployment's invariant and convergence over the
/// replicas' quiescent ledgers: the pointwise-max merge of all ledgers
/// must not record more sales than the initial allocation (tickets are
/// never oversold, no matter how the segments raced), and at quiescence
/// the ledgers themselves must agree.
///
/// `Violation::invocation` carries the offending replica's index (0 for
/// the merged-ledger invariant, which is global).
pub fn check_escrow(states: &[EscrowState]) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(first) = states.first() else {
        return out;
    };
    let mut merged = first.clone();
    for s in &states[1..] {
        merged.merge(s);
    }
    if merged.total_sold() > merged.total_initial() {
        out.push(Violation {
            invocation: 0,
            kind: ViolationKind::EscrowOversold,
            detail: format!(
                "merged ledgers sold {} of {} allocated tickets",
                merged.total_sold(),
                merged.total_initial(),
            ),
        });
    }
    for (i, s) in states.iter().enumerate().skip(1) {
        if s != first {
            out.push(Violation {
                invocation: i,
                kind: ViolationKind::StateDiverged,
                detail: format!(
                    "replica {i} ledger (sold {}) differs from replica 0 (sold {})",
                    s.total_sold(),
                    first.total_sold(),
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::ConsistencyLevel;
    const CAUSAL: ConsistencyLevel = ConsistencyLevel::CAUSAL;
    const STRONG: ConsistencyLevel = ConsistencyLevel::STRONG;
    const WEAK: ConsistencyLevel = ConsistencyLevel::WEAK;
    use correctables::Error;

    fn view<T>(
        seq: u64,
        level: correctables::ConsistencyLevel,
        value: T,
        closing: bool,
    ) -> HistoryEvent<T> {
        HistoryEvent::View {
            seq,
            at_nanos: 0,
            level,
            value,
            closing,
        }
    }

    fn inv(id: usize, events: Vec<HistoryEvent<u64>>) -> Invocation<&'static str, u64> {
        Invocation {
            id,
            op: "op",
            levels: vec![WEAK, STRONG],
            submitted: 0,
            at_nanos: 0,
            events,
        }
    }

    #[test]
    fn clean_history_passes() {
        let h = vec![inv(
            0,
            vec![view(1, WEAK, 1, false), view(2, STRONG, 2, true)],
        )];
        assert!(check_monotonicity(&h, true).is_empty());
    }

    #[test]
    fn descending_levels_rejected() {
        let h = vec![inv(
            0,
            vec![
                view(1, CAUSAL, 1, false),
                view(2, WEAK, 2, false),
                view(3, STRONG, 3, true),
            ],
        )];
        let v = check_monotonicity(&h, true);
        assert_eq!(v.len(), 2, "{v:?}"); // regression + unrequested CAUSAL
        assert!(v.iter().any(|x| x.kind == ViolationKind::LevelRegressed));
    }

    #[test]
    fn event_after_close_rejected() {
        let h = vec![inv(
            0,
            vec![view(1, STRONG, 1, true), view(2, WEAK, 2, false)],
        )];
        let v = check_monotonicity(&h, true);
        assert!(v.iter().any(|x| x.kind == ViolationKind::EventAfterClose));
    }

    #[test]
    fn double_close_rejected() {
        let h = vec![inv(
            0,
            vec![view(1, STRONG, 1, true), view(2, STRONG, 2, true)],
        )];
        let v = check_monotonicity(&h, true);
        assert!(v.iter().any(|x| x.kind == ViolationKind::MultipleCloses));
    }

    #[test]
    fn never_closed_rejected_only_when_required() {
        let h = vec![inv(0, vec![view(1, WEAK, 1, false)])];
        assert!(check_monotonicity(&h, false).is_empty());
        let v = check_monotonicity(&h, true);
        assert_eq!(v[0].kind, ViolationKind::NeverClosed);
    }

    #[test]
    fn weak_close_rejected() {
        let h = vec![inv(0, vec![view(1, WEAK, 1, true)])];
        let v = check_monotonicity(&h, true);
        assert_eq!(v[0].kind, ViolationKind::WeakClose);
    }

    #[test]
    fn error_close_is_a_valid_close() {
        let mut i = inv(0, vec![view(1, WEAK, 1, false)]);
        i.events.push(HistoryEvent::Failed {
            seq: 2,
            at_nanos: 0,
            error: Error::Timeout,
        });
        assert!(check_monotonicity(&[i], true).is_empty());
    }

    #[test]
    fn convergence_rejects_diverging_prelims_in_scope_only() {
        let mut a = inv(0, vec![view(1, WEAK, 7, false), view(2, STRONG, 9, true)]);
        a.submitted = 0;
        let mut b = inv(1, vec![view(4, WEAK, 7, false), view(5, STRONG, 9, true)]);
        b.submitted = 3;
        let h = vec![a, b];
        // Scoped after `a`: only `b` is checked.
        let v = check_convergence(&h, 3);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invocation, 1);
        assert_eq!(v[0].kind, ViolationKind::Diverged);
        // Converged history passes.
        let ok = vec![inv(
            0,
            vec![view(1, WEAK, 9, false), view(2, STRONG, 9, true)],
        )];
        assert!(check_convergence(&ok, 0).is_empty());
    }

    fn uid(origin: usize, seq: u64) -> specstore::UpdateId {
        specstore::UpdateId { origin, seq }
    }

    #[test]
    fn update_consistency_accepts_one_converged_order() {
        let order = vec![uid(0, 1), uid(1, 1), uid(0, 2), uid(2, 1)];
        let logs = vec![order.clone(), order.clone(), order];
        assert!(check_update_consistency(&logs).is_empty());
    }

    #[test]
    fn update_consistency_rejects_diverged_orders() {
        let a = vec![uid(0, 1), uid(1, 1)];
        let b = vec![uid(1, 1), uid(0, 1)];
        let v = check_update_consistency(&[a.clone(), a, b]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::OrderDiverged);
        assert_eq!(v[0].invocation, 2);
    }

    fn sec_entry(origin: usize, seq: u64, delta: i64) -> SecEntry {
        let state = CrdtState::new();
        let op = icg_crdt::CrdtOp::CtrAdd(0, delta);
        let ctx = icg_crdt::types::EffectCtx {
            replica: origin,
            seq,
            lamport: seq,
        };
        let effect = state.prepare(&op, ctx);
        let mut vc = causalstore::VectorClock::zero(3);
        vc.bump(origin);
        SecEntry {
            origin,
            seq,
            ts: seq,
            vc,
            effect,
        }
    }

    fn replay(initial: &CrdtState, log: &[SecEntry]) -> CrdtState {
        let mut s = initial.clone();
        for e in log {
            s.effect(&e.effect);
        }
        s
    }

    #[test]
    fn sec_accepts_commuting_logs_in_any_order() {
        let initial = CrdtState::new();
        let a = sec_entry(0, 1, 5);
        let b = sec_entry(1, 1, 7);
        let logs = vec![vec![a.clone(), b.clone()], vec![b, a]];
        let states: Vec<CrdtState> = logs.iter().map(|l| replay(&initial, l)).collect();
        assert!(check_sec(&initial, &logs, &states).is_empty());
    }

    #[test]
    fn sec_rejects_missing_updates() {
        let initial = CrdtState::new();
        let a = sec_entry(0, 1, 5);
        let b = sec_entry(1, 1, 7);
        let logs = vec![vec![a.clone(), b], vec![a]];
        let states: Vec<CrdtState> = logs.iter().map(|l| replay(&initial, l)).collect();
        let v = check_sec(&initial, &logs, &states);
        assert!(
            v.iter()
                .any(|x| x.kind == ViolationKind::NotEventuallyVisible),
            "{v:?}"
        );
        // The lagging replica's state also diverges.
        assert!(v.iter().any(|x| x.kind == ViolationKind::StateDiverged));
        // But no commutativity finding: the replay gap explains it all.
        assert!(v
            .iter()
            .all(|x| x.kind != ViolationKind::EffectNotCommutative));
    }

    #[test]
    fn sec_rejects_non_commuting_effects() {
        // Broken-counter effects ship origin-side totals: same update
        // set, different delivery orders, different replayed states.
        fn broken_entry(origin: usize, seq: u64, delta: i64) -> SecEntry {
            let mut e = sec_entry(origin, seq, delta);
            e.effect =
                icg_crdt::CrdtEffect::BrokenCtr(0, icg_crdt::types::BrokenSet { total: delta });
            e
        }
        let initial = CrdtState::new_broken();
        let a = broken_entry(0, 1, 5);
        let b = broken_entry(1, 1, 7);
        let logs = vec![vec![a.clone(), b.clone()], vec![b, a]];
        let states: Vec<CrdtState> = logs.iter().map(|l| replay(&initial, l)).collect();
        let v = check_sec(&initial, &logs, &states);
        assert!(
            v.iter()
                .any(|x| x.kind == ViolationKind::EffectNotCommutative),
            "{v:?}"
        );
        assert!(v.iter().any(|x| x.kind == ViolationKind::StateDiverged));
    }

    #[test]
    fn sec_state_mode_checks_convergence_only() {
        let initial = CrdtState::new();
        let diverged = replay(&initial, &[sec_entry(0, 1, 3)]);
        let v = check_sec(&initial, &[], &[initial.clone(), diverged]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, ViolationKind::StateDiverged);
        assert_eq!(v[0].invocation, 1);
    }

    #[test]
    fn escrow_accepts_converged_ledgers_within_allocation() {
        let mut s = EscrowState::new(vec![2, 2, 2]);
        assert!(s.sell(0));
        assert!(s.sell(1));
        let states = vec![s.clone(), s.clone(), s];
        assert!(check_escrow(&states).is_empty());
    }

    #[test]
    fn escrow_rejects_oversold_merge() {
        // Replica 0 and replica 1 each sold the whole of segment 0 —
        // only possible if the single-writer rule was broken, and the
        // merged ledger shows it even though each ledger looks fine.
        let mut a = EscrowState::new(vec![1, 0]);
        assert!(a.sell(0));
        let mut b = EscrowState::new(vec![1, 0]);
        b.grant(0, 1, 1);
        assert!(b.sell(1));
        let v = check_escrow(&[a, b]);
        assert!(
            v.iter().any(|x| x.kind == ViolationKind::EscrowOversold),
            "{v:?}"
        );
        assert!(v.iter().any(|x| x.kind == ViolationKind::StateDiverged));
    }

    #[test]
    fn update_consistency_rejects_local_order_violations() {
        // Converged, but origin 0's seq 2 precedes its seq 1 — the
        // common order breaks process-local order on every replica.
        let order = vec![uid(0, 2), uid(0, 1)];
        let v = check_update_consistency(&[order.clone(), order]);
        // Two findings per replica: the gap (2 where 1 was expected) and
        // the regression (1 after 2).
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v
            .iter()
            .all(|x| x.kind == ViolationKind::LocalOrderViolated));
    }
}
