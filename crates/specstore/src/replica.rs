//! The per-replica protocol node of the spec store.
//!
//! Every client operation is an *update* in the sense of Perrin,
//! Mostéfaoui & Jard: it is stamped `(lamport ts, origin, seq)` at its
//! origin replica, applied locally at once (wait-free), and gossiped to
//! the peers, which merge it into the same totally-ordered log. Three
//! orthogonal mechanisms produce the three non-weak levels:
//!
//! - the **lamport log** — kept sorted by `(ts, origin, seq)`; replaying
//!   it through the spec realizes update consistency's single eventual
//!   linearization;
//! - the **CBCAST buffer** — updates carry vector clocks and are
//!   causally delivered in dependency order (reusing `causalstore`'s
//!   [`VectorClock`] delivery rule); the causally delivered prefix,
//!   replayed in log order (an order consistent with causality), backs
//!   the causal views;
//! - **ack stability** — each peer acknowledges an update when it
//!   causally delivers it, reporting its own submission count. Once
//!   every peer has acked update `u` and the origin has causally
//!   delivered each peer's reported submissions, no update with a
//!   timestamp below `u.ts` can still arrive anywhere, so `u`'s position
//!   in the total order — and therefore its replayed return value — is
//!   final. That is the strong (linearizable) close, with no primary.
//!
//! Lost gossip and acks are repaired by per-origin anti-entropy: every
//! replica periodically re-broadcasts its own not-fully-acked updates,
//! and re-acks retransmissions of updates it has already delivered.

use std::any::Any;
use std::collections::HashMap;

use causalstore::VectorClock;
use correctables::spec::SeqSpec;
use correctables::ConsistencyLevel;
use simnet::{Ctx, NodeId, SimDuration, Timer, Wire};

/// Identity of one update: which replica accepted it, and where it sits
/// in that replica's local submission order (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UpdateId {
    /// Index of the origin replica.
    pub origin: usize,
    /// 1-based position in the origin's local submission order.
    pub seq: u64,
}

/// One update as it travels between replicas.
#[derive(Clone, Debug)]
pub struct Update<Op> {
    /// Origin replica and per-origin sequence number.
    pub id: UpdateId,
    /// Lamport timestamp; `(ts, origin, seq)` is the total order.
    pub ts: u64,
    /// Vector clock at the origin when the update was accepted (its own
    /// entry already bumped) — the CBCAST causal stamp.
    pub vc: VectorClock,
    /// The operation itself.
    pub op: Op,
}

impl<Op> Update<Op> {
    /// The total-order key.
    fn key(&self) -> (u64, usize, u64) {
        (self.ts, self.id.origin, self.id.seq)
    }
}

/// Which levels one submission wants served.
#[derive(Clone, Copy, Debug, Default)]
pub struct Wants {
    /// Deliver a weak view.
    pub weak: bool,
    /// Deliver an update-consistency view.
    pub update: bool,
    /// Deliver a causal view.
    pub causal: bool,
    /// Deliver a strong view.
    pub strong: bool,
}

impl Wants {
    /// The strongest requested level (the one that closes the upcall).
    pub fn strongest(&self) -> ConsistencyLevel {
        if self.strong {
            ConsistencyLevel::STRONG
        } else if self.causal {
            ConsistencyLevel::CAUSAL
        } else if self.update {
            ConsistencyLevel::UPDATE
        } else {
            ConsistencyLevel::WEAK
        }
    }
}

/// Client-operation identity at the gateway (its own sequence space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpId(pub u64);

/// Protocol messages of the spec store.
#[derive(Clone, Debug)]
pub enum SpecMsg<S: SeqSpec> {
    /// Gateway → replica: accept `op` as a new update.
    Submit {
        /// Client operation id (scoped to the gateway).
        op: OpId,
        /// The operation.
        client_op: S::Op,
        /// Levels to serve.
        wants: Wants,
    },
    /// Replica → gateway: the wait-free views (weak and/or update),
    /// emitted synchronously at accept time.
    Immediate {
        /// Client operation id.
        op: OpId,
        /// `(level, return value)` in level order.
        views: Vec<(ConsistencyLevel, S::Ret)>,
        /// Whether the strongest requested level is among `views`.
        closing: bool,
    },
    /// Replica → gateway: a causal or strong view that needed peer acks.
    Later {
        /// Client operation id.
        op: OpId,
        /// The level of this view.
        level: ConsistencyLevel,
        /// The replayed return value.
        ret: S::Ret,
        /// Whether this is the strongest requested level.
        closing: bool,
    },
    /// Replica → replica: one update (also used for retransmission).
    Gossip {
        /// The update.
        update: Update<S::Op>,
    },
    /// Replica → origin replica: `acker` causally delivered `of`.
    Ack {
        /// The acknowledged update.
        of: UpdateId,
        /// Index of the acknowledging replica.
        acker: usize,
        /// The acker's own submission count at delivery time; the origin
        /// must causally deliver that many of the acker's updates before
        /// `of` counts as stable.
        acker_seq: u64,
    },
}

impl<S: SeqSpec> Wire for SpecMsg<S> {
    fn wire_size(&self) -> usize {
        // A coarse model: fixed framing plus the causal stamp; op bodies
        // are spec-dependent and modeled as one machine word.
        match self {
            SpecMsg::Submit { .. } => 32,
            SpecMsg::Immediate { views, .. } => 16 + 16 * views.len(),
            SpecMsg::Later { .. } => 32,
            SpecMsg::Gossip { update } => 40 + 8 * update.vc.len(),
            SpecMsg::Ack { .. } => 32,
        }
    }

    fn category(&self) -> &'static str {
        match self {
            SpecMsg::Submit { .. } => "submit",
            SpecMsg::Immediate { .. } | SpecMsg::Later { .. } => "reply",
            SpecMsg::Gossip { .. } => "gossip",
            SpecMsg::Ack { .. } => "ack",
        }
    }
}

/// Ack/stability bookkeeping for one locally accepted update.
struct OwnUpdate {
    /// The client op to answer, if this update came through the binding
    /// (anti-entropy applies to every update regardless).
    client: Option<(OpId, NodeId, Wants)>,
    /// Per-peer `acker_seq`, `None` until that peer acks.
    acks: Vec<Option<u64>>,
    causal_sent: bool,
    strong_sent: bool,
}

impl OwnUpdate {
    fn fully_acked(&self, me: usize) -> bool {
        self.acks
            .iter()
            .enumerate()
            .all(|(i, a)| i == me || a.is_some())
    }
}

/// One replica of the spec store.
pub struct SpecReplica<S: SeqSpec> {
    spec: S,
    /// This replica's index.
    id: usize,
    /// Replica count.
    n: usize,
    /// Node ids of all replicas, index-aligned; set via
    /// [`SpecReplica::set_peers`] after construction.
    peers: Vec<NodeId>,
    /// Lamport clock.
    lamport: u64,
    /// Own submission count (the next update gets `seq = next_seq + 1`).
    next_seq: u64,
    /// Causally delivered count per origin (CBCAST state).
    vc: VectorClock,
    /// The update log. Sorted by `(ts, origin, seq)` — unless
    /// `arrival_order` is set, which keeps raw arrival order: the
    /// deliberately buggy fixture the update-consistency checker must
    /// catch.
    log: Vec<Update<S::Op>>,
    /// Updates received but not yet causally deliverable.
    buffer: Vec<Update<S::Op>>,
    /// Ack state of every update accepted here, by seq.
    own: HashMap<u64, OwnUpdate>,
    /// Apply updates in arrival order instead of the lamport order.
    arrival_order: bool,
    /// Anti-entropy period.
    retransmit_every: SimDuration,
    /// Generation token of the live retransmit timer. The engine drops
    /// timer fires for a node that is down when they come due, so a
    /// plain "armed" flag would wedge shut after downtime; instead every
    /// message receipt arms a fresh generation (invalidating the old
    /// one) and [`SpecReplica::on_timer`] ignores stale generations.
    timer_gen: u64,
}

impl<S> SpecReplica<S>
where
    S: SeqSpec + Send + 'static,
    S::Op: Send,
    S::Ret: Send,
{
    /// A replica with index `id` out of `n`.
    pub fn new(spec: S, id: usize, n: usize) -> Self {
        SpecReplica {
            spec,
            id,
            n,
            peers: Vec::new(),
            lamport: 0,
            next_seq: 0,
            vc: VectorClock::zero(n),
            log: Vec::new(),
            buffer: Vec::new(),
            own: HashMap::new(),
            arrival_order: false,
            retransmit_every: SimDuration::from_millis(200),
            timer_gen: 0,
        }
    }

    /// Switches this replica to the buggy arrival-order log (the
    /// negative fixture for the update-consistency checker).
    pub fn set_arrival_order(&mut self, buggy: bool) {
        self.arrival_order = buggy;
    }

    /// Registers the node ids of all replicas (index-aligned).
    pub fn set_peers(&mut self, peers: Vec<NodeId>) {
        assert_eq!(peers.len(), self.n, "peer list must cover all replicas");
        self.peers = peers;
    }

    /// The log as applied by this replica, in its current order.
    pub fn applied_log(&self) -> Vec<UpdateId> {
        self.log.iter().map(|u| u.id).collect()
    }

    /// Whether every peer has acknowledged every update accepted here.
    pub fn fully_acked(&self) -> bool {
        self.own.values().all(|o| o.fully_acked(self.id))
    }

    fn insert(&mut self, update: Update<S::Op>) {
        if self.arrival_order {
            self.log.push(update);
            return;
        }
        let key = update.key();
        let pos = self
            .log
            .binary_search_by(|u| u.key().cmp(&key))
            .unwrap_err();
        self.log.insert(pos, update);
    }

    /// Replays the log through the spec and returns the return value of
    /// update `id`. With `causal_only`, restricts the replay to the
    /// causally delivered prefix (log order is consistent with
    /// causality, so this is a valid causal serialization).
    fn replay_ret(&self, id: UpdateId, causal_only: bool) -> Option<S::Ret> {
        let mut state = self.spec.initial();
        let mut found = None;
        for u in &self.log {
            if causal_only && u.id.seq > self.vc.0[u.id.origin] {
                continue;
            }
            let (next, ret) = self.spec.apply(&state, &u.op);
            state = next;
            if u.id == id {
                found = Some(ret);
            }
        }
        found
    }

    /// The current fully-merged state with `op` applied on top — the
    /// weak view: local, wait-free, no ordering promise.
    fn weak_ret(&self, op: &S::Op) -> S::Ret {
        let mut state = self.spec.initial();
        for u in &self.log {
            state = self.spec.apply(&state, &u.op).0;
        }
        self.spec.apply(&state, op).1
    }

    /// Arms a fresh retransmit-timer generation if any own update still
    /// lacks acks. Safe to call on every message: the newest generation
    /// supersedes all pending ones.
    fn arm_timer(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>) {
        let unacked = self.own.values().any(|e| !e.fully_acked(self.id));
        if unacked && self.n > 1 {
            self.timer_gen += 1;
            ctx.set_timer(self.retransmit_every, Timer(self.timer_gen));
        }
    }

    fn accept(
        &mut self,
        ctx: &mut Ctx<'_, SpecMsg<S>>,
        from: NodeId,
        op: OpId,
        client_op: S::Op,
        wants: Wants,
    ) {
        // Weak view: computed against the pre-accept state.
        let weak = wants.weak.then(|| self.weak_ret(&client_op));
        // Stamp and log the update.
        self.lamport += 1;
        self.next_seq += 1;
        self.vc.bump(self.id);
        let id = UpdateId {
            origin: self.id,
            seq: self.next_seq,
        };
        let update = Update {
            id,
            ts: self.lamport,
            vc: self.vc.clone(),
            op: client_op,
        };
        for (i, peer) in self.peers.clone().into_iter().enumerate() {
            if i != self.id {
                ctx.send(
                    peer,
                    SpecMsg::Gossip {
                        update: update.clone(),
                    },
                );
            }
        }
        self.insert(update);
        self.own.insert(
            id.seq,
            OwnUpdate {
                client: Some((op, from, wants)),
                acks: vec![None; self.n],
                causal_sent: false,
                strong_sent: false,
            },
        );
        // Wait-free views go straight back.
        let mut views = Vec::new();
        if let Some(ret) = weak {
            views.push((ConsistencyLevel::WEAK, ret));
        }
        if wants.update {
            let ret = self.replay_ret(id, false).expect("own update is logged");
            views.push((ConsistencyLevel::UPDATE, ret));
        }
        let closing = !wants.causal && !wants.strong;
        if !views.is_empty() || closing {
            ctx.send(from, SpecMsg::Immediate { op, views, closing });
        }
        // Single-replica deployments have no peers to wait for.
        self.settle_pending(ctx);
        self.arm_timer(ctx);
    }

    /// Drains the CBCAST buffer, delivering (and acking) every update
    /// whose causal dependencies are satisfied.
    fn deliver_causal(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>) {
        loop {
            let Some(pos) = self
                .buffer
                .iter()
                .position(|u| self.vc.deliverable(&u.vc, u.id.origin))
            else {
                return;
            };
            let u = self.buffer.swap_remove(pos);
            self.vc.bump(u.id.origin);
            ctx.send(
                self.peers[u.id.origin],
                SpecMsg::Ack {
                    of: u.id,
                    acker: self.id,
                    acker_seq: self.next_seq,
                },
            );
        }
    }

    /// Fires causal/strong replies for own updates whose conditions now
    /// hold.
    fn settle_pending(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>) {
        let mut replies: Vec<(NodeId, SpecMsg<S>)> = Vec::new();
        let mut done: Vec<u64> = Vec::new();
        let me = self.id;
        let seqs: Vec<u64> = self.own.keys().copied().collect();
        for seq in seqs {
            let id = UpdateId { origin: me, seq };
            let entry = self.own.get(&seq).expect("listed");
            let acked = entry.fully_acked(me) || self.n == 1;
            let any_ack = self.n == 1 || entry.acks.iter().any(|a| a.is_some());
            // Stable: all peers acked, and each peer's reported
            // submissions are causally delivered here — nothing with a
            // smaller timestamp is still in flight.
            let stable = acked
                && entry
                    .acks
                    .iter()
                    .enumerate()
                    .all(|(i, a)| i == me || a.is_some_and(|s| self.vc.0[i] >= s));
            let (causal_due, strong_due, client) = {
                let e = self.own.get(&seq).expect("listed");
                let Some((op, gw, wants)) = e.client else {
                    if e.fully_acked(me) {
                        done.push(seq);
                    }
                    continue;
                };
                (
                    wants.causal && !e.causal_sent && any_ack,
                    wants.strong && !e.strong_sent && stable,
                    (op, gw, wants),
                )
            };
            let (op, gw, wants) = client;
            if causal_due {
                let ret = self.replay_ret(id, true).expect("own update is delivered");
                replies.push((
                    gw,
                    SpecMsg::Later {
                        op,
                        level: ConsistencyLevel::CAUSAL,
                        ret,
                        closing: !wants.strong,
                    },
                ));
                self.own.get_mut(&seq).expect("listed").causal_sent = true;
            }
            if strong_due {
                let ret = self.replay_ret(id, false).expect("own update is logged");
                replies.push((
                    gw,
                    SpecMsg::Later {
                        op,
                        level: ConsistencyLevel::STRONG,
                        ret,
                        closing: true,
                    },
                ));
                self.own.get_mut(&seq).expect("listed").strong_sent = true;
            }
            let e = self.own.get_mut(&seq).expect("listed");
            let served = (!e.client.expect("set above").2.causal || e.causal_sent)
                && (!e.client.expect("set above").2.strong || e.strong_sent);
            if served && e.fully_acked(me) {
                e.client = None;
                done.push(seq);
            }
        }
        for seq in done {
            self.own.remove(&seq);
        }
        for (to, msg) in replies {
            ctx.send(to, msg);
        }
    }
}

impl<S> simnet::Node<SpecMsg<S>> for SpecReplica<S>
where
    S: SeqSpec + Send + 'static,
    S::Op: Send,
    S::Ret: Send,
{
    fn on_message(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>, from: NodeId, msg: SpecMsg<S>) {
        match msg {
            SpecMsg::Submit {
                op,
                client_op,
                wants,
            } => self.accept(ctx, from, op, client_op, wants),
            SpecMsg::Gossip { update } => {
                let origin = update.id.origin;
                let seq = update.id.seq;
                if seq <= self.vc.0[origin] {
                    // Retransmission of something already delivered: the
                    // origin must have lost our ack — re-ack.
                    ctx.send(
                        self.peers[origin],
                        SpecMsg::Ack {
                            of: update.id,
                            acker: self.id,
                            acker_seq: self.next_seq,
                        },
                    );
                    return;
                }
                if self.buffer.iter().any(|u| u.id == update.id) {
                    return; // buffered duplicate
                }
                self.lamport = self.lamport.max(update.ts) + 1;
                self.buffer.push(update.clone());
                self.insert(update);
                self.deliver_causal(ctx);
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            SpecMsg::Ack {
                of,
                acker,
                acker_seq,
            } => {
                debug_assert_eq!(of.origin, self.id, "ack routed to the wrong origin");
                if let Some(e) = self.own.get_mut(&of.seq) {
                    let slot = &mut e.acks[acker];
                    // Keep the largest report; retransmitted acks carry
                    // fresher submission counts.
                    *slot = Some(slot.unwrap_or(0).max(acker_seq));
                }
                self.settle_pending(ctx);
                self.arm_timer(ctx);
            }
            SpecMsg::Immediate { .. } | SpecMsg::Later { .. } => {
                debug_assert!(false, "replies are addressed to the gateway");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>, timer: Timer) {
        if timer.0 != self.timer_gen {
            return; // superseded generation
        }
        // Anti-entropy: re-broadcast own updates that some peer has not
        // acked yet (covers lost gossip and lost acks alike).
        let unacked: Vec<(u64, Vec<usize>)> = self
            .own
            .iter()
            .filter_map(|(seq, e)| {
                let missing: Vec<usize> = (0..self.n)
                    .filter(|&i| i != self.id && e.acks[i].is_none())
                    .collect();
                (!missing.is_empty()).then_some((*seq, missing))
            })
            .collect();
        for (seq, missing) in &unacked {
            if let Some(u) = self
                .log
                .iter()
                .find(|u| u.id.origin == self.id && u.id.seq == *seq)
            {
                let u = u.clone();
                for &i in missing {
                    ctx.send(self.peers[i], SpecMsg::Gossip { update: u.clone() });
                }
            }
        }
        if !unacked.is_empty() {
            self.arm_timer(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
