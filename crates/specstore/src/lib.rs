//! # specstore — one replicated object, four consistency levels, any spec
//!
//! The generalized-lattice stack: a replicated object defined by nothing
//! but a sequential specification ([`correctables::spec::SeqSpec`]),
//! served at four consistency levels in one incremental `invoke`:
//!
//! - **weak** — the op applied to the origin replica's current local
//!   state; wait-free, eventually consistent.
//! - **update** — *update consistency* (Perrin, Mostéfaoui & Jard):
//!   wait-free like weak, but every replica additionally converges to a
//!   **single linearization** of all updates — a total `(lamport ts,
//!   origin, seq)` order that each replica replays through the spec. The
//!   view is the op's return value at its place in that linearization as
//!   currently known; the order (and thus the value) is revised toward
//!   agreement as gossip arrives.
//! - **causal** — *causal consistency for any spec'd object*
//!   (Mostéfaoui, Perrin & Raynal, generalizing the `causalstore`
//!   stack's baked-in store semantics): updates carry vector clocks and
//!   are delivered CBCAST-style; the view closes once at least one peer
//!   replica has causally delivered the update, and reflects exactly the
//!   causally delivered prefix.
//! - **strong** — linearizable without a primary: the view closes once
//!   the op's position in the total order is **stable** (every peer has
//!   acknowledged it and no earlier-timestamped update can still arrive),
//!   so the returned value is final.
//!
//! Internals:
//!
//! - [`replica::SpecReplica`] — the per-replica protocol node: lamport
//!   log, CBCAST buffer, ack/stability tracking, anti-entropy
//!   retransmission;
//! - [`binding::SimSpecStore`] — the simulated deployment (three
//!   replicas on the paper's EC2 sites plus a client gateway) and its
//!   [`binding::SpecBinding`] / [`binding::UpdateBinding`] /
//!   [`binding::CausalSpec`] Correctables bindings.

pub mod binding;
pub mod replica;

pub use binding::{CausalSpec, SimSpecStore, SpecBinding, UpdateBinding};
pub use replica::{SpecReplica, Update, UpdateId};
