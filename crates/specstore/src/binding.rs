//! The simulated deployment and its Correctables bindings.
//!
//! [`SimSpecStore`] places three [`SpecReplica`]s on the paper's EC2
//! sites (FRK/IRL/VRG) plus a client gateway, and round-robins
//! submissions across the replicas — each replica is one "process" in
//! update consistency's sense, so the explorer exercises genuinely
//! concurrent multi-origin histories.
//!
//! Three bindings expose the same deployment at different slices of the
//! lattice:
//!
//! - [`SpecBinding`] — the full `weak → update → causal → strong`
//!   refinement;
//! - [`UpdateBinding`] — the wait-free slice (`weak`, `update`): every
//!   view returns without waiting for any other replica;
//! - [`CausalSpec`] — the `causalstore`-shaped slice (`weak`, `causal`,
//!   `strong`) for any spec'd object.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use correctables::spec::SeqSpec;
use correctables::{Binding, ConsistencyLevel, Error, LevelSet, Upcall};
use simnet::{Ctx, Engine, Faults, Node, NodeId, SimDuration, SiteId, Timer, Topology};

use crate::replica::{OpId, SpecMsg, SpecReplica, UpdateId, Wants};

/// The four-level lattice slice of the full binding.
fn full_levels() -> LevelSet {
    LevelSet::of(&[
        ConsistencyLevel::WEAK,
        ConsistencyLevel::UPDATE,
        ConsistencyLevel::CAUSAL,
        ConsistencyLevel::STRONG,
    ])
}

struct Queued<S: SeqSpec> {
    op: S::Op,
    wants: Wants,
    upcall: Upcall<S::Ret>,
}

type OpQueue<S> = Arc<Mutex<VecDeque<Queued<S>>>>;

const KICK: u64 = u64::MAX - 1;

struct GwPending<S: SeqSpec> {
    upcall: Upcall<S::Ret>,
}

struct Gateway<S: SeqSpec> {
    replicas: Vec<NodeId>,
    /// Round-robin cursor over the replicas — each submission originates
    /// at the next replica, modeling independent client processes.
    rr: usize,
    queue: OpQueue<S>,
    next_seq: u64,
    pending: HashMap<OpId, GwPending<S>>,
    client_timeout: Option<SimDuration>,
    timer_ops: HashMap<u64, OpId>,
    next_timer: u64,
}

impl<S> Gateway<S>
where
    S: SeqSpec + Send + 'static,
    S::Op: Send,
    S::Ret: Send,
{
    fn drain(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>) {
        loop {
            let Some(q) = self.queue.lock().pop_front() else {
                return;
            };
            let op = OpId(self.next_seq);
            self.next_seq += 1;
            let target = self.replicas[self.rr % self.replicas.len()];
            self.rr += 1;
            ctx.send(
                target,
                SpecMsg::Submit {
                    op,
                    client_op: q.op,
                    wants: q.wants,
                },
            );
            self.pending.insert(op, GwPending { upcall: q.upcall });
            if let Some(d) = self.client_timeout {
                let token = self.next_timer;
                self.next_timer += 1;
                self.timer_ops.insert(token, op);
                ctx.set_timer(d, Timer(token));
            }
        }
    }
}

impl<S> Node<SpecMsg<S>> for Gateway<S>
where
    S: SeqSpec + Send + 'static,
    S::Op: Send,
    S::Ret: Send,
{
    fn on_message(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>, _from: NodeId, msg: SpecMsg<S>) {
        match msg {
            SpecMsg::Immediate { op, views, closing } => {
                if let Some(p) = self.pending.get(&op) {
                    for (level, ret) in views {
                        p.upcall.deliver(ret, level);
                    }
                    if closing {
                        self.pending.remove(&op);
                    }
                }
            }
            SpecMsg::Later {
                op,
                level,
                ret,
                closing,
            } => {
                if let Some(p) = self.pending.get(&op) {
                    p.upcall.deliver(ret, level);
                    if closing {
                        self.pending.remove(&op);
                    }
                }
            }
            _ => debug_assert!(false, "protocol messages are addressed to replicas"),
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SpecMsg<S>>, timer: Timer) {
        if timer.0 == KICK {
            self.drain(ctx);
        } else if let Some(op) = self.timer_ops.remove(&timer.0) {
            // A view was lost to faults: fail the close. Views already
            // delivered stand (the paper's exceptional close).
            if let Some(p) = self.pending.remove(&op) {
                p.upcall.fail(Error::Timeout);
            }
            self.drain(ctx);
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

struct NState<S: SeqSpec> {
    engine: Engine<SpecMsg<S>>,
    gateway: NodeId,
    replicas: Vec<NodeId>,
}

/// A simulated spec store: three replicas plus a client gateway.
pub struct SimSpecStore<S: SeqSpec> {
    state: Arc<Mutex<NState<S>>>,
    queue: OpQueue<S>,
    spec: S,
}

impl<S: SeqSpec + Clone> Clone for SimSpecStore<S> {
    fn clone(&self) -> Self {
        SimSpecStore {
            state: Arc::clone(&self.state),
            queue: Arc::clone(&self.queue),
            spec: self.spec.clone(),
        }
    }
}

impl<S> SimSpecStore<S>
where
    S: SeqSpec + Clone + Send + 'static,
    S::Op: Send,
    S::Ret: Send,
{
    /// Builds the deployment: one replica per paper site, gateway at
    /// `client_site`, all driven by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `client_site` is unknown.
    pub fn ec2(spec: S, client_site: &str, seed: u64) -> Self {
        Self::build(spec, client_site, seed, false)
    }

    /// The deliberately broken deployment: replicas apply updates in
    /// arrival order instead of the lamport total order, so their
    /// linearizations diverge — the fixture the update-consistency
    /// checker must catch.
    pub fn ec2_buggy(spec: S, client_site: &str, seed: u64) -> Self {
        Self::build(spec, client_site, seed, true)
    }

    fn build(spec: S, client_site: &str, seed: u64, buggy: bool) -> Self {
        let topo = Topology::ec2_frk_irl_vrg();
        let sites = ["FRK", "IRL", "VRG"];
        let client_site_id = topo.site_named(client_site).expect("known client site");
        let mut engine = Engine::new(topo, seed);
        let n = sites.len();
        let replicas: Vec<NodeId> = sites
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let site = engine.topology().site_named(s).expect("site");
                let mut r = SpecReplica::new(spec.clone(), i, n);
                r.set_arrival_order(buggy);
                engine.add_node(site, Box::new(r))
            })
            .collect();
        for id in &replicas {
            engine
                .node_as::<SpecReplica<S>>(*id)
                .set_peers(replicas.clone());
        }
        let queue: OpQueue<S> = Arc::new(Mutex::new(VecDeque::new()));
        let gateway = engine.add_node(
            client_site_id,
            Box::new(Gateway::<S> {
                replicas: replicas.clone(),
                rr: 0,
                queue: Arc::clone(&queue),
                next_seq: 0,
                pending: HashMap::new(),
                client_timeout: None,
                timer_ops: HashMap::new(),
                next_timer: 0,
            }),
        );
        SimSpecStore {
            state: Arc::new(Mutex::new(NState {
                engine,
                gateway,
                replicas,
            })),
            queue,
            spec,
        }
    }

    /// The full four-level binding.
    pub fn binding(&self) -> SpecBinding<S> {
        SpecBinding {
            store: self.clone(),
            levels: full_levels(),
        }
    }

    /// The wait-free slice: weak and update views only.
    pub fn update_binding(&self) -> UpdateBinding<S> {
        UpdateBinding(SpecBinding {
            store: self.clone(),
            levels: LevelSet::of(&[ConsistencyLevel::WEAK, ConsistencyLevel::UPDATE]),
        })
    }

    /// The `causalstore`-shaped slice: weak, causal, and strong views.
    pub fn causal_binding(&self) -> CausalSpec<S> {
        CausalSpec(SpecBinding {
            store: self.clone(),
            levels: LevelSet::of(&[
                ConsistencyLevel::WEAK,
                ConsistencyLevel::CAUSAL,
                ConsistencyLevel::STRONG,
            ]),
        })
    }

    /// Installs a fault plan.
    pub fn set_faults(&self, faults: Faults) {
        self.state.lock().engine.set_faults(faults);
    }

    /// Sets a client-side deadline per operation (fails the close with
    /// `Error::Timeout`; already delivered views stand).
    pub fn set_client_timeout(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let gw = st.gateway;
        st.engine.node_as::<Gateway<S>>(gw).client_timeout = Some(d);
    }

    /// The replica node ids (FRK/IRL/VRG order).
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.state.lock().replicas.clone()
    }

    /// All site ids of the deployment's topology.
    pub fn site_ids(&self) -> Vec<SiteId> {
        let st = self.state.lock();
        (0..st.engine.topology().len()).map(SiteId).collect()
    }

    /// Every replica's applied update log, in its current order — the
    /// input to the oracle's update-consistency checker.
    pub fn applied_logs(&self) -> Vec<Vec<UpdateId>> {
        let mut st = self.state.lock();
        let ids = st.replicas.clone();
        ids.into_iter()
            .map(|id| st.engine.node_as::<SpecReplica<S>>(id).applied_log())
            .collect()
    }

    /// Drives the simulation until every submitted operation resolves.
    ///
    /// Runs in bounded virtual-time slices: the replicas'
    /// anti-entropy timers keep the event queue busy while gossip is
    /// lost (e.g. under an active partition), so "no events left" is
    /// not a usable stop condition.
    ///
    /// # Panics
    ///
    /// Panics if operations cannot resolve within a very large horizon
    /// (faults active without a client timeout, or a protocol bug).
    pub fn settle(&self) {
        let mut st = self.state.lock();
        let slice = SimDuration::from_millis(5);
        for _ in 0..2_000_000 {
            let gw = st.gateway;
            st.engine.schedule_timer(gw, SimDuration::ZERO, Timer(KICK));
            let limit = st.engine.now() + slice;
            st.engine.run_until(limit);
            let pending_empty = st.engine.node_as::<Gateway<S>>(gw).pending.is_empty();
            if pending_empty && self.queue.lock().is_empty() {
                return;
            }
        }
        panic!(
            "spec-store operations cannot settle (lost replies without a \
             client timeout? see SimSpecStore::set_client_timeout)"
        );
    }

    /// Runs the simulation for `d` without submitting anything (lets
    /// gossip and anti-entropy progress).
    pub fn advance(&self, d: SimDuration) {
        let mut st = self.state.lock();
        let until = st.engine.now() + d;
        st.engine.run_until(until);
    }
}

/// The full four-level `Binding` over a [`SimSpecStore`].
pub struct SpecBinding<S: SeqSpec> {
    store: SimSpecStore<S>,
    levels: LevelSet,
}

impl<S: SeqSpec + Clone> Clone for SpecBinding<S> {
    fn clone(&self) -> Self {
        SpecBinding {
            store: self.store.clone(),
            levels: self.levels.clone(),
        }
    }
}

impl<S> Binding for SpecBinding<S>
where
    S: SeqSpec + Clone + Send + 'static,
    S::Op: Send + 'static,
    S::Ret: Send + 'static,
{
    type Op = S::Op;
    type Val = S::Ret;

    fn consistency_levels(&self) -> LevelSet {
        self.levels.clone()
    }

    fn submit(&self, op: S::Op, levels: &[ConsistencyLevel], upcall: Upcall<S::Ret>) {
        let wants = Wants {
            weak: levels.contains(&ConsistencyLevel::WEAK),
            update: levels.contains(&ConsistencyLevel::UPDATE),
            causal: levels.contains(&ConsistencyLevel::CAUSAL),
            strong: levels.contains(&ConsistencyLevel::STRONG),
        };
        self.store
            .queue
            .lock()
            .push_back(Queued { op, wants, upcall });
    }
}

/// The wait-free slice of a [`SimSpecStore`]: weak and update only.
pub struct UpdateBinding<S: SeqSpec>(SpecBinding<S>);

impl<S: SeqSpec + Clone> Clone for UpdateBinding<S> {
    fn clone(&self) -> Self {
        UpdateBinding(self.0.clone())
    }
}

impl<S> Binding for UpdateBinding<S>
where
    S: SeqSpec + Clone + Send + 'static,
    S::Op: Send + 'static,
    S::Ret: Send + 'static,
{
    type Op = S::Op;
    type Val = S::Ret;

    fn consistency_levels(&self) -> LevelSet {
        self.0.levels.clone()
    }

    fn submit(&self, op: S::Op, levels: &[ConsistencyLevel], upcall: Upcall<S::Ret>) {
        self.0.submit(op, levels, upcall);
    }
}

/// The causal slice of a [`SimSpecStore`] — `causalstore`'s shape
/// (weak/causal/strong) for any spec'd object.
pub struct CausalSpec<S: SeqSpec>(SpecBinding<S>);

impl<S: SeqSpec + Clone> Clone for CausalSpec<S> {
    fn clone(&self) -> Self {
        CausalSpec(self.0.clone())
    }
}

impl<S> Binding for CausalSpec<S>
where
    S: SeqSpec + Clone + Send + 'static,
    S::Op: Send + 'static,
    S::Ret: Send + 'static,
{
    type Op = S::Op;
    type Val = S::Ret;

    fn consistency_levels(&self) -> LevelSet {
        self.0.levels.clone()
    }

    fn submit(&self, op: S::Op, levels: &[ConsistencyLevel], upcall: Upcall<S::Ret>) {
        self.0.submit(op, levels, upcall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctables::spec::{CounterSpec, CtrOp, RegOp, RegisterSpec};
    use correctables::{Client, State};

    #[test]
    fn register_refines_through_all_four_levels() {
        let store = SimSpecStore::ec2(RegisterSpec::default(), "IRL", 7);
        let client = Client::new(store.binding());
        let w = client.invoke(RegOp::Write(1, 42));
        store.settle();
        assert_eq!(w.state(), State::Final);
        let c = client.invoke(RegOp::Read(1));
        store.settle();
        assert_eq!(c.state(), State::Final);
        let seen: Vec<ConsistencyLevel> = c
            .preliminary_views()
            .iter()
            .map(|v| v.level)
            .chain(c.final_view().map(|v| v.level))
            .collect();
        assert_eq!(
            seen,
            vec![
                ConsistencyLevel::WEAK,
                ConsistencyLevel::UPDATE,
                ConsistencyLevel::CAUSAL,
                ConsistencyLevel::STRONG
            ]
        );
        assert_eq!(c.final_view().unwrap().value, 42);
    }

    #[test]
    fn counter_refines_through_all_four_levels() {
        let store = SimSpecStore::ec2(CounterSpec, "FRK", 9);
        let client = Client::new(store.binding());
        for _ in 0..3 {
            client.invoke(CtrOp::Add(5, 10));
            store.settle();
        }
        let c = client.invoke(CtrOp::Get(5));
        store.settle();
        assert_eq!(c.preliminary_views().len(), 3);
        assert_eq!(c.final_view().unwrap().value, 30);
        assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::STRONG);
    }

    #[test]
    fn update_binding_is_wait_free_and_converges() {
        let store = SimSpecStore::ec2(CounterSpec, "IRL", 3);
        let client = Client::new(store.update_binding());
        // Wait-free: both views arrive without settling the simulation
        // past the submit round-trip.
        let c = client.invoke(CtrOp::Add(1, 5));
        store.settle();
        assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::UPDATE);
        // All replicas converge to one linearization.
        store.advance(SimDuration::from_secs(5));
        let logs = store.applied_logs();
        assert!(
            logs.windows(2).all(|w| w[0] == w[1]),
            "logs diverged: {logs:?}"
        );
    }

    #[test]
    fn causal_binding_serves_causalstore_shape() {
        let store = SimSpecStore::ec2(RegisterSpec::default(), "VRG", 5);
        let client = Client::new(store.causal_binding());
        assert_eq!(
            client.consistency_levels().to_vec(),
            vec![
                ConsistencyLevel::WEAK,
                ConsistencyLevel::CAUSAL,
                ConsistencyLevel::STRONG
            ]
        );
        let c = client.invoke(RegOp::Write(9, 1));
        store.settle();
        assert_eq!(c.final_view().unwrap().level, ConsistencyLevel::STRONG);
    }

    #[test]
    fn concurrent_origins_converge_to_one_linearization() {
        let store = SimSpecStore::ec2(RegisterSpec::default(), "IRL", 21);
        let client = Client::new(store.binding());
        // Round-robin spreads these across all three origins; the writes
        // race, but the logs must still agree everywhere.
        let mut ops = Vec::new();
        for i in 0..9u64 {
            ops.push(client.invoke(RegOp::Write(1, 100 + i)));
        }
        store.settle();
        store.advance(SimDuration::from_secs(10));
        for c in &ops {
            assert_eq!(c.state(), State::Final);
        }
        let logs = store.applied_logs();
        assert_eq!(logs[0].len(), 9);
        assert!(
            logs.windows(2).all(|w| w[0] == w[1]),
            "logs diverged: {logs:?}"
        );
        // Quiescent read: all four levels agree on the winner.
        let r = client.invoke(RegOp::Read(1));
        store.settle();
        let fin = r.final_view().unwrap();
        for v in r.preliminary_views() {
            assert_eq!(v.value, fin.value, "level {} diverged", v.level);
        }
    }

    #[test]
    fn buggy_arrival_order_diverges() {
        let store = SimSpecStore::ec2_buggy(RegisterSpec::default(), "IRL", 21);
        let client = Client::new(store.update_binding());
        for i in 0..9u64 {
            client.invoke(RegOp::Write(1, 100 + i));
        }
        store.settle();
        store.advance(SimDuration::from_secs(10));
        let logs = store.applied_logs();
        assert!(
            logs.windows(2).any(|w| w[0] != w[1]),
            "arrival-order fixture unexpectedly produced identical logs: {logs:?}"
        );
    }
}
