//! Integration tests for the epoll reactor transport (PR 8 tentpole):
//! partial frames across readiness events, write-queue backpressure,
//! connection churn, peer death mid-frame, multi-loop forwarding, and
//! the blocking engine staying selectable. Everything here runs over
//! real loopback sockets against real `ReplicaServer`s.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use correctables::Client;
use icg_net::frame::{encode_frame, read_frame};
use icg_net::{
    spawn_local_cluster, ReplicaHandle, ServerConfig, TcpBinding, TcpConfig, Transport,
    WIRE_VERSION,
};
use quorumstore::types::ReadKind;
use quorumstore::{Key, Msg, OpId, Phase, StoreOp, Value};
use simnet::NodeId;

/// Raw-socket client ids live far above binding client ids.
const RAW_CLIENT: u64 = 50_000;

fn cluster(n: usize) -> Vec<ReplicaHandle> {
    spawn_local_cluster(n, |id| ServerConfig {
        id,
        op_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    })
}

fn config(replicas: &[ReplicaHandle], client_id: u64) -> TcpConfig {
    let addrs = replicas.iter().map(|r| r.addr()).collect();
    let mut cfg = TcpConfig::new(addrs, client_id);
    cfg.r_strong = replicas.len().min(2) as u8;
    cfg
}

fn op(client: u64, seq: u64) -> OpId {
    OpId {
        client: NodeId(client as usize),
        seq,
    }
}

fn frame_bytes(msg: &Msg) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(msg, &mut out);
    out
}

fn shutdown(replicas: Vec<ReplicaHandle>) {
    for r in &replicas {
        r.shutdown();
    }
}

/// A write and a read dribbled onto the socket one byte at a time: the
/// frame spans many edge-triggered readiness events and the reactor
/// must buffer partial prefixes and bodies without losing its place.
#[test]
fn partial_frames_across_readiness_events() {
    let replicas = cluster(1);
    let mut sock = TcpStream::connect(replicas[0].addr()).expect("connect");

    let write = frame_bytes(&Msg::ClientWrite {
        op: op(RAW_CLIENT, 1),
        key: Key::plain(10),
        value: Value::Opaque(64),
        w: 1,
    });
    for b in &write {
        sock.write_all(std::slice::from_ref(b)).expect("dribble");
        thread::sleep(Duration::from_millis(1));
    }
    let mut scratch = Vec::new();
    let reply = read_frame::<Msg>(&mut sock, &mut scratch)
        .expect("read reply")
        .expect("reply frame");
    assert_eq!(
        reply,
        Msg::WriteReply {
            op: op(RAW_CLIENT, 1)
        }
    );

    // Read it back, split into two arbitrary chunks.
    let read = frame_bytes(&Msg::ClientRead {
        op: op(RAW_CLIENT, 2),
        key: Key::plain(10),
        kind: ReadKind::Single { r: 1 },
    });
    let (a, b) = read.split_at(7);
    sock.write_all(a).expect("first half");
    thread::sleep(Duration::from_millis(10));
    sock.write_all(b).expect("second half");
    match read_frame::<Msg>(&mut sock, &mut scratch)
        .expect("read reply")
        .expect("reply frame")
    {
        Msg::ReadReply { op: o, phase, data } => {
            assert_eq!(o, op(RAW_CLIENT, 2));
            assert_eq!(phase, Phase::Single);
            assert_eq!(data.value, Value::Opaque(64));
        }
        other => panic!("want ReadReply, got {other:?}"),
    }
    shutdown(replicas);
}

/// Two requests coalesced into one TCP segment: a single readiness
/// event must dispatch both frames, in order.
#[test]
fn coalesced_frames_dispatch_in_order() {
    let replicas = cluster(1);
    let mut sock = TcpStream::connect(replicas[0].addr()).expect("connect");

    let mut batch = frame_bytes(&Msg::ClientWrite {
        op: op(RAW_CLIENT + 1, 1),
        key: Key::plain(11),
        value: Value::Opaque(32),
        w: 1,
    });
    batch.extend(frame_bytes(&Msg::ClientRead {
        op: op(RAW_CLIENT + 1, 2),
        key: Key::plain(11),
        kind: ReadKind::Single { r: 1 },
    }));
    sock.write_all(&batch).expect("batch");

    let mut scratch = Vec::new();
    let first = read_frame::<Msg>(&mut sock, &mut scratch)
        .expect("read")
        .expect("frame");
    assert_eq!(
        first,
        Msg::WriteReply {
            op: op(RAW_CLIENT + 1, 1)
        }
    );
    match read_frame::<Msg>(&mut sock, &mut scratch)
        .expect("read")
        .expect("frame")
    {
        Msg::ReadReply { op: o, data, .. } => {
            assert_eq!(o, op(RAW_CLIENT + 1, 2));
            assert_eq!(data.value, Value::Opaque(32));
        }
        other => panic!("want ReadReply, got {other:?}"),
    }
    shutdown(replicas);
}

/// A client that pipelines reads of a ~1 MiB record without ever
/// draining replies. The write queue must hit its cap and the server
/// must shed the connection instead of buffering without bound — and
/// keep serving everyone else afterwards.
#[test]
fn write_queue_backpressure_sheds_slow_reader() {
    let replicas = cluster(1);

    // Store a record whose read replies are ~1 MiB each.
    let big = Value::Ids(vec![7; 128 * 1024]);
    let mut sock = TcpStream::connect(replicas[0].addr()).expect("connect");
    sock.write_all(&frame_bytes(&Msg::ClientWrite {
        op: op(RAW_CLIENT + 2, 1),
        key: Key::plain(12),
        value: big.clone(),
        w: 1,
    }))
    .expect("write big");
    let mut scratch = Vec::new();
    read_frame::<Msg>(&mut sock, &mut scratch)
        .expect("ack")
        .expect("ack frame");

    // 24 pipelined reads -> ~24 MiB of replies against a 4 MiB cap.
    const READS: u64 = 24;
    for seq in 0..READS {
        sock.write_all(&frame_bytes(&Msg::ClientRead {
            op: op(RAW_CLIENT + 2, 100 + seq),
            key: Key::plain(12),
            kind: ReadKind::Single { r: 1 },
        }))
        .expect("pipelined read");
    }
    // Let the server run into the cap before we drain anything.
    thread::sleep(Duration::from_millis(300));
    let mut delivered = 0u64;
    loop {
        match read_frame::<Msg>(&mut sock, &mut scratch) {
            Ok(Some(_)) => delivered += 1,
            Ok(None) => break,
            Err(_) => break,
        }
    }
    assert!(
        delivered < READS,
        "server delivered all {READS} pipelined replies — backpressure cap never fired"
    );

    // The shed connection must not take the server down.
    let binding = TcpBinding::connect(config(&replicas, 1500)).expect("connect");
    let client = Client::new(binding.clone());
    let view = client
        .invoke_strong(StoreOp::Read(Key::plain(12)))
        .wait_final(Duration::from_secs(5))
        .expect("server still serves");
    assert_eq!(view.value.value, big);
    binding.shutdown();
    shutdown(replicas);
}

/// A peer that dies mid-frame (length prefix promises more than it ever
/// sends) and a peer that sends a wrong version byte: both connections
/// are dropped without disturbing the replica.
#[test]
fn death_mid_frame_and_bad_version_are_contained() {
    let replicas = cluster(1);

    // Half a frame, then a hard close.
    let mut truncated = TcpStream::connect(replicas[0].addr()).expect("connect");
    let mut partial = 100u32.to_le_bytes().to_vec();
    partial.push(WIRE_VERSION);
    partial.extend_from_slice(&[1, 2, 3, 4, 5]);
    truncated.write_all(&partial).expect("partial frame");
    drop(truncated);

    // A well-formed length prefix around an unknown protocol version.
    let mut wrong_ver = TcpStream::connect(replicas[0].addr()).expect("connect");
    let mut bad = 4u32.to_le_bytes().to_vec();
    bad.push(WIRE_VERSION.wrapping_add(1));
    bad.extend_from_slice(&[0, 0, 0]);
    wrong_ver.write_all(&bad).expect("bad version frame");
    // The server must close on us (read returns EOF/reset), not reply.
    wrong_ver
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    match wrong_ver.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server answered a bad-version frame with {n} bytes"),
    }

    // The replica still serves well-behaved traffic.
    let binding = TcpBinding::connect(config(&replicas, 1501)).expect("connect");
    let client = Client::new(binding.clone());
    client
        .invoke_strong(StoreOp::Write(Key::plain(13), Value::Opaque(8)))
        .wait_final(Duration::from_secs(5))
        .expect("write after garbage");
    binding.shutdown();
    shutdown(replicas);
}

/// Mass connect/disconnect churn — sudden drops, half frames, and full
/// request/reply cycles interleaved from several threads — must leave
/// the replica fully functional.
#[test]
fn connection_churn_leaves_the_server_healthy() {
    let replicas = cluster(1);
    let addr = replicas[0].addr();

    let churners: Vec<_> = (0..3)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..50u64 {
                    let Ok(mut sock) = TcpStream::connect(addr) else {
                        panic!("churn connect failed");
                    };
                    match i % 3 {
                        0 => {} // connect and vanish
                        1 => {
                            // die mid-frame
                            let _ = sock.write_all(&[40, 0, 0, 0, WIRE_VERSION, 9]);
                        }
                        _ => {
                            // full request/reply cycle
                            sock.write_all(&frame_bytes(&Msg::ClientRead {
                                op: op(RAW_CLIENT + 10 + t, i),
                                key: Key::plain(1),
                                kind: ReadKind::Single { r: 1 },
                            }))
                            .expect("churn read");
                            let mut scratch = Vec::new();
                            read_frame::<Msg>(&mut sock, &mut scratch)
                                .expect("churn reply")
                                .expect("churn reply frame");
                        }
                    }
                }
            })
        })
        .collect();
    for c in churners {
        c.join().expect("churner");
    }

    let binding = TcpBinding::connect(config(&replicas, 1502)).expect("connect");
    let client = Client::new(binding.clone());
    client
        .invoke_strong(StoreOp::Write(Key::plain(14), Value::Opaque(8)))
        .wait_final(Duration::from_secs(5))
        .expect("write after churn");
    let view = client
        .invoke_strong(StoreOp::Read(Key::plain(14)))
        .wait_final(Duration::from_secs(5))
        .expect("read after churn");
    assert_eq!(view.value.value, Value::Opaque(8));
    binding.shutdown();
    shutdown(replicas);
}

/// `loops > 1`: client connections round-robin across event loops and
/// the forwarding loops relay decoded frames to the protocol loop.
/// Several clients running full write/strong-read cycles must see
/// exactly their own data back.
#[test]
fn multi_loop_forwarding_round_trips() {
    let replicas = spawn_local_cluster(3, |id| ServerConfig {
        id,
        op_timeout: Duration::from_secs(2),
        loops: 2,
        ..ServerConfig::default()
    });

    let handles: Vec<_> = (0..4u64)
        .map(|c| {
            let cfg = config(&replicas, 1600 + c);
            thread::spawn(move || {
                let binding = TcpBinding::connect(cfg).expect("connect");
                let client = Client::new(binding.clone());
                for k in 0..6u64 {
                    let key = Key::plain(1000 + c * 100 + k);
                    client
                        .invoke_strong(StoreOp::Write(key, Value::Opaque(16 + c as u32)))
                        .wait_final(Duration::from_secs(5))
                        .expect("write");
                    let view = client
                        .invoke_strong(StoreOp::Read(key))
                        .wait_final(Duration::from_secs(5))
                        .expect("strong read");
                    assert_eq!(view.value.value, Value::Opaque(16 + c as u32));
                }
                binding.shutdown();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    shutdown(replicas);
}

/// The blocking engine stays selectable end to end: a cluster and a
/// binding both pinned to `Transport::Blocking` still round-trip.
#[test]
fn blocking_transport_remains_selectable() {
    let replicas = spawn_local_cluster(3, |id| ServerConfig {
        id,
        op_timeout: Duration::from_secs(2),
        transport: Transport::Blocking,
        ..ServerConfig::default()
    });
    let mut cfg = config(&replicas, 1700);
    cfg.transport = Transport::Blocking;
    let binding = TcpBinding::connect(cfg).expect("connect");
    let client = Client::new(binding.clone());
    client
        .invoke_strong(StoreOp::Write(Key::plain(15), Value::Opaque(24)))
        .wait_final(Duration::from_secs(5))
        .expect("write");
    let view = client
        .invoke_strong(StoreOp::Read(Key::plain(15)))
        .wait_final(Duration::from_secs(5))
        .expect("read");
    assert_eq!(view.value.value, Value::Opaque(24));
    binding.shutdown();
    shutdown(replicas);
}

/// A reactor binding pointed at dead addresses fails fast with a
/// connect error instead of hanging.
#[test]
fn reactor_binding_fails_fast_on_dead_replicas() {
    // Bind-then-drop to get a port nobody is listening on.
    let dead: SocketAddr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };
    let mut cfg = TcpConfig::new(vec![dead], 1800);
    cfg.connect_timeout = Duration::from_millis(200);
    assert!(
        TcpBinding::connect(cfg).is_err(),
        "connect to a dead replica set must error"
    );
}
