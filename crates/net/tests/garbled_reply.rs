//! Regression tests for the lost/garbled strong-reply bug (PR 8
//! satellite 1), over real sockets.
//!
//! The bug: `TcpBinding` used to close a final reply that carried no
//! view with `Versioned::absent()` — telling the caller "this key does
//! not exist" at Strong confidence the binding never actually obtained.
//! A misrouted, truncated, or garbled reply from a buggy or hostile
//! coordinator must fail the operation with [`Error::Unavailable`]
//! (or [`Error::Timeout`] if nothing arrives at all), never fabricate
//! a view.
//!
//! These tests stand up a *fake coordinator* on a raw `TcpListener`
//! so they can reply with exactly the wrong bytes, and run each
//! scenario against both transports — the reply-matching state machine
//! is shared, and both engines must stay fail-closed.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use correctables::{Client, Error};
use icg_net::frame::{encode_frame, read_frame};
use icg_net::{TcpBinding, TcpConfig, Transport, WIRE_VERSION};
use quorumstore::{Key, Msg, OpId, StoreOp, Value};
use simnet::NodeId;

const TRANSPORTS: [Transport; 2] = [Transport::Reactor, Transport::Blocking];

fn config(addr: SocketAddr, client_id: u64, transport: Transport) -> TcpConfig {
    let mut cfg = TcpConfig::new(vec![addr], client_id);
    cfg.transport = transport;
    cfg.op_timeout = Duration::from_millis(500);
    cfg
}

/// A fake coordinator: accepts connections forever and answers every
/// decodable request with `reply(request)`; `None` drops the request
/// silently. Runs until the process exits (tests leak the thread).
fn fake_coordinator(reply: impl Fn(&Msg) -> Option<Msg> + Send + Clone + 'static) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake coordinator");
    let addr = listener.local_addr().expect("local addr");
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            let reply = reply.clone();
            thread::spawn(move || {
                let mut scratch = Vec::new();
                let mut out = Vec::new();
                while let Ok(Some(msg)) = read_frame::<Msg>(&mut stream, &mut scratch) {
                    if let Some(resp) = reply(&msg) {
                        encode_frame(&resp, &mut out);
                        if std::io::Write::write_all(&mut stream, &out).is_err() {
                            return;
                        }
                    }
                }
            });
        }
    });
    addr
}

/// A strong read answered by a `WriteReply` bearing the read's own op
/// id — a garbled/misrouted final. The op must fail `Unavailable`; the
/// old code delivered a fabricated `Versioned::absent()` at Strong.
#[test]
fn misrouted_final_reply_fails_unavailable_never_fabricates_absent() {
    let addr = fake_coordinator(|msg| match msg {
        Msg::ClientRead { op, .. } => Some(Msg::WriteReply { op: *op }),
        _ => None,
    });
    for (i, transport) in TRANSPORTS.into_iter().enumerate() {
        let binding =
            TcpBinding::connect(config(addr, 7000 + i as u64, transport)).expect("connect");
        let client = Client::new(binding.clone());
        let read = client.invoke_strong(StoreOp::Read(Key::plain(1)));
        match read.wait_final(Duration::from_secs(5)) {
            Err(Error::Unavailable(_)) => {}
            other => panic!("{transport:?}: want Unavailable, got {other:?}"),
        }
        assert!(
            read.preliminary_views().is_empty(),
            "{transport:?}: no view of any kind may surface from a garbled final"
        );
        binding.shutdown();
    }
}

/// A reply frame whose body is garbage (undecodable). The client must
/// tear the connection down and fail the pending op — not deliver
/// anything, not wedge until the deadline.
#[test]
fn garbage_reply_body_fails_the_op_closed() {
    // Raw responder: echo a well-formed frame header around trash.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { continue };
            thread::spawn(move || {
                let mut scratch = Vec::new();
                while let Ok(Some(_)) = read_frame::<Msg>(&mut stream, &mut scratch) {
                    let body = [0xFFu8; 8];
                    let mut frame = (1 + body.len() as u32).to_le_bytes().to_vec();
                    frame.push(WIRE_VERSION);
                    frame.extend_from_slice(&body);
                    if std::io::Write::write_all(&mut stream, &frame).is_err() {
                        return;
                    }
                }
            });
        }
    });
    for (i, transport) in TRANSPORTS.into_iter().enumerate() {
        let binding =
            TcpBinding::connect(config(addr, 7100 + i as u64, transport)).expect("connect");
        let client = Client::new(binding.clone());
        let read = client.invoke_strong(StoreOp::Read(Key::plain(2)));
        match read.wait_final(Duration::from_secs(5)) {
            Err(Error::Unavailable(_)) | Err(Error::Timeout) => {}
            other => panic!("{transport:?}: want Unavailable/Timeout, got {other:?}"),
        }
        binding.shutdown();
    }
}

/// A coordinator that swallows strong replies entirely. The op must
/// fail `Timeout` at the client-side deadline — the binding holds no
/// view and must not invent one to close the Correctable.
#[test]
fn lost_strong_reply_times_out_instead_of_closing_absent() {
    let addr = fake_coordinator(|_| None);
    for (i, transport) in TRANSPORTS.into_iter().enumerate() {
        let binding =
            TcpBinding::connect(config(addr, 7200 + i as u64, transport)).expect("connect");
        let client = Client::new(binding.clone());
        let read = client.invoke_strong(StoreOp::Read(Key::plain(3)));
        match read.wait_final(Duration::from_secs(5)) {
            Err(Error::Timeout) => {}
            other => panic!("{transport:?}: want Timeout, got {other:?}"),
        }
        binding.shutdown();
    }
}

/// The legitimate fallback still works: a write whose `WriteReply`
/// arrives closes with the locally written record, not an error —
/// fail-closed must not overreach into the write path.
#[test]
fn write_reply_still_closes_with_the_written_record() {
    let addr = fake_coordinator(|msg| match msg {
        Msg::ClientWrite { op, .. } => Some(Msg::WriteReply { op: *op }),
        _ => None,
    });
    for (i, transport) in TRANSPORTS.into_iter().enumerate() {
        let binding =
            TcpBinding::connect(config(addr, 7300 + i as u64, transport)).expect("connect");
        let client = Client::new(binding.clone());
        let write = client.invoke_strong(StoreOp::Write(Key::plain(4), Value::Opaque(16)));
        let view = write
            .wait_final(Duration::from_secs(5))
            .expect("write closes");
        assert_eq!(view.value.value, Value::Opaque(16));
        binding.shutdown();
    }
}

/// Sanity: the fake-coordinator plumbing itself round-trips — a raw
/// socket can speak a frame to a real frame reader.
#[test]
fn raw_socket_frame_roundtrip() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let t = thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut scratch = Vec::new();
        read_frame::<Msg>(&mut stream, &mut scratch).expect("read")
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = Msg::PeerRead {
        op: OpId {
            client: NodeId(9),
            seq: 42,
        },
        key: Key::plain(5),
    };
    let mut out = Vec::new();
    encode_frame(&msg, &mut out);
    std::io::Write::write_all(&mut stream, &out).expect("write");
    let got = t.join().expect("join").expect("frame");
    assert_eq!(got, msg);
}
