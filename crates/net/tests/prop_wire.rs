//! Property tests of every [`Wire`] impl: encode→decode identity over
//! generated values, and rejection (never a panic) of truncated frames
//! and corrupt tag bytes.
//!
//! These properties are the codec's entire contract — a transport that
//! silently misparses one frame corrupts protocol state in ways the
//! consistency oracle can only catch much later, so the codec itself is
//! held to round-trip identity under generation.

use proptest::prelude::*;

use correctables::spec::{CtrOp, RegOp};
use icg_net::wire::{from_bytes, to_bytes, MAX_IDS};
use icg_net::wire::{MAX_LEVELS, MAX_REPLICAS};
use icg_net::{LevelInfo, NetMsg, Reader, SpecOp, Wire, WireError};
use quorumstore::messages::{FailReason, Msg, Phase};
use quorumstore::types::{Key, OpId, ReadKind, Value, Version, Versioned};
use quorumstore::StoreOp;
use simnet::NodeId;

fn arb_key() -> impl Strategy<Value = Key> {
    (0u64..u64::MAX, 0u64..256).prop_map(|(id, ns)| Key { ns: ns as u8, id })
}

fn arb_version() -> impl Strategy<Value = Version> {
    (0u64..u64::MAX, 0u64..1 << 32).prop_map(|(ts, writer)| Version {
        ts,
        writer: writer as u32,
    })
}

fn arb_op_id() -> impl Strategy<Value = OpId> {
    (0u64..1 << 48, 0u64..u64::MAX).prop_map(|(client, seq)| OpId {
        client: NodeId(client as usize),
        seq,
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u64..1 << 32).prop_map(|n| Value::Opaque(n as u32)),
        proptest::collection::vec(0u64..u64::MAX, 0..16).prop_map(Value::Ids),
        (0u64..1 << 32, 0u64..1 << 32).prop_map(|(f, r)| Value::Delta {
            field_len: f as u32,
            record_len: r as u32,
        }),
    ]
}

fn arb_versioned() -> impl Strategy<Value = Versioned> {
    (arb_value(), arb_version()).prop_map(|(value, version)| Versioned { value, version })
}

fn arb_read_kind() -> impl Strategy<Value = ReadKind> {
    prop_oneof![
        (0u64..8).prop_map(|r| ReadKind::Single { r: r as u8 }),
        (0u64..8, any::<bool>()).prop_map(|(r, confirm)| ReadKind::Icg {
            r: r as u8,
            confirm,
        }),
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (arb_op_id(), arb_key(), arb_read_kind()).prop_map(|(op, key, kind)| Msg::ClientRead {
            op,
            key,
            kind
        }),
        (arb_op_id(), arb_key(), arb_value(), 0u64..4).prop_map(|(op, key, value, w)| {
            Msg::ClientWrite {
                op,
                key,
                value,
                w: w as u8,
            }
        }),
        (arb_op_id(), arb_key()).prop_map(|(op, key)| Msg::PeerRead { op, key }),
        (arb_op_id(), arb_versioned()).prop_map(|(op, data)| Msg::PeerReadResp { op, data }),
        (arb_key(), arb_versioned(), arb_op_id(), any::<bool>()).prop_map(
            |(key, data, op, ack)| Msg::PeerWrite {
                key,
                data,
                ack_op: ack.then_some(op),
            }
        ),
        arb_op_id().prop_map(|op| Msg::PeerWriteAck { op }),
        (arb_op_id(), 0u64..3, arb_versioned()).prop_map(|(op, phase, data)| Msg::ReadReply {
            op,
            phase: match phase {
                0 => Phase::Single,
                1 => Phase::Preliminary,
                _ => Phase::Final,
            },
            data,
        }),
        (arb_op_id(), arb_version()).prop_map(|(op, version)| Msg::ReadConfirm { op, version }),
        arb_op_id().prop_map(|op| Msg::WriteReply { op }),
        arb_op_id().prop_map(|op| Msg::OpFailed {
            op,
            reason: FailReason::Timeout,
        }),
    ]
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        arb_key().prop_map(StoreOp::Read),
        (arb_key(), arb_value()).prop_map(|(k, v)| StoreOp::Write(k, v)),
    ]
}

fn arb_spec_op() -> impl Strategy<Value = SpecOp> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(|k| SpecOp::Reg(RegOp::Read(k))),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(k, v)| SpecOp::Reg(RegOp::Write(k, v))),
        (0u64..u64::MAX).prop_map(|k| SpecOp::Ctr(CtrOp::Get(k))),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(k, v)| SpecOp::Ctr(CtrOp::Put(k, v))),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(k, d)| SpecOp::Ctr(CtrOp::Add(k, d))),
    ]
}

fn arb_level_info() -> impl Strategy<Value = LevelInfo> {
    let name = proptest::collection::vec(0u64..26, 1..32)
        .prop_map(|cs| cs.into_iter().map(|c| (b'a' + c as u8) as char).collect());
    (name, 0u64..256, 0u64..256).prop_map(|(name, id, rank): (String, u64, u64)| LevelInfo {
        id: id as u8,
        rank: rank as u8,
        name,
    })
}

fn arb_net_msg() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        arb_msg().prop_map(NetMsg::Store),
        (0u64..u64::MAX).prop_map(|client| NetMsg::Hello { client }),
        (1u64..3, proptest::collection::vec(arb_level_info(), 0..8)).prop_map(
            |(version, levels)| NetMsg::HelloAck {
                version: version as u8,
                levels,
            }
        ),
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            arb_spec_op(),
            proptest::collection::vec(0u64..256, 0..6)
        )
            .prop_map(|(client, seq, op, wants)| NetMsg::SpecSubmit {
                client,
                seq,
                op,
                wants: wants.into_iter().map(|w| w as u8).collect(),
            }),
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..256,
            0u64..u64::MAX,
            any::<bool>()
        )
            .prop_map(|(client, seq, level, val, closing)| NetMsg::SpecReply {
                client,
                seq,
                level: level as u8,
                val,
                closing,
            }),
        (
            0u64..1 << 32,
            0u64..u64::MAX,
            0u64..u64::MAX,
            proptest::collection::vec(0u64..u64::MAX, 0..8),
            arb_spec_op()
        )
            .prop_map(|(origin, seq, ts, vc, op)| NetMsg::SpecGossip {
                origin: origin as u32,
                seq,
                ts,
                vc,
                op,
            }),
        (0u64..1 << 32, 0u64..u64::MAX, 0u64..1 << 32, 0u64..u64::MAX).prop_map(
            |(origin, seq, acker, acker_seq)| NetMsg::SpecAck {
                origin: origin as u32,
                seq,
                acker: acker as u32,
                acker_seq,
            }
        ),
        (0u64..u64::MAX, 0u64..u64::MAX)
            .prop_map(|(client, seq)| NetMsg::SpecFailed { client, seq }),
    ]
}

/// Round-trip + truncation + garbage-tag, for one encodable value.
fn codec_contract<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = to_bytes(v);
    // Identity.
    let back: T = from_bytes(&bytes).expect("well-formed encoding decodes");
    prop_assert_eq!(&back, v);
    // Every strict prefix must be rejected as an error, not a panic.
    for cut in 0..bytes.len() {
        prop_assert!(
            from_bytes::<T>(&bytes[..cut]).is_err(),
            "prefix of {} bytes decoded",
            cut
        );
    }
    // Trailing garbage must be rejected (exact-length consumption).
    let mut extended = bytes.clone();
    extended.push(0xAB);
    prop_assert!(from_bytes::<T>(&extended).is_err());
    Ok(())
}

proptest! {
    #[test]
    fn msg_codec_contract(m in arb_msg()) {
        codec_contract(&m)?;
    }

    #[test]
    fn store_op_codec_contract(op in arb_store_op()) {
        codec_contract(&op)?;
    }

    #[test]
    fn versioned_codec_contract(v in arb_versioned()) {
        codec_contract(&v)?;
    }

    #[test]
    fn op_id_and_key_codec_contract(op in arb_op_id(), key in arb_key()) {
        codec_contract(&op)?;
        codec_contract(&key)?;
    }

    /// A corrupt leading tag byte either decodes to a *different* valid
    /// message (tags overlap the value space of other variants) or
    /// errors — it must never panic and never decode to the original.
    #[test]
    fn corrupt_tag_never_panics(m in arb_msg(), tag in 11u64..256) {
        let mut bytes = to_bytes(&m);
        bytes[0] = tag as u8; // 0x0B.. are unassigned Msg tags
        match from_bytes::<Msg>(&bytes) {
            Ok(other) => prop_assert_ne!(other, m),
            Err(e) => {
                let structured = matches!(
                    e,
                    WireError::BadTag { .. }
                        | WireError::Truncated
                        | WireError::TrailingBytes { .. }
                        | WireError::TooLarge { .. }
                );
                prop_assert!(structured, "unexpected decode error {:?}", e);
            }
        }
    }

    /// Random bytes fed to the decoder: any outcome but a panic.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u64..256, 0..64)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = from_bytes::<Msg>(&bytes);
        let _ = from_bytes::<StoreOp>(&bytes);
        let _ = from_bytes::<Versioned>(&bytes);
    }

    /// Length prefixes beyond MAX_IDS are rejected before allocating.
    #[test]
    fn oversized_id_lists_rejected(extra in 1u64..1 << 30) {
        let mut buf = vec![1u8];
        let n = MAX_IDS as u64 + extra;
        buf.extend_from_slice(&(n as u32).to_le_bytes());
        let r = Reader::new(&buf).finish::<Value>();
        let rejected = matches!(r, Err(WireError::TooLarge { .. }) | Err(WireError::Truncated));
        prop_assert!(rejected, "oversized list accepted: {:?}", r);
    }

    /// The version-2 envelope and its component types hold the same
    /// contract as the version-1 set: round-trip identity, every strict
    /// prefix rejected, trailing bytes rejected — never a panic.
    #[test]
    fn net_msg_codec_contract(m in arb_net_msg()) {
        codec_contract(&m)?;
    }

    #[test]
    fn spec_op_and_level_info_codec_contract(op in arb_spec_op(), info in arb_level_info()) {
        codec_contract(&op)?;
        codec_contract(&info)?;
    }

    /// The `Store` envelope is byte-identical to the bare message: a
    /// version-1 peer's frames decode as envelopes, and envelope frames
    /// decode on a version-1 reader.
    #[test]
    fn store_envelope_is_byte_identical_to_bare_msg(m in arb_msg()) {
        let bare = to_bytes(&m);
        let wrapped = to_bytes(&NetMsg::Store(m.clone()));
        prop_assert_eq!(&bare, &wrapped);
        prop_assert_eq!(from_bytes::<NetMsg>(&bare).expect("v1 bytes decode as envelope"),
            NetMsg::Store(m.clone()));
        prop_assert_eq!(from_bytes::<Msg>(&wrapped).expect("envelope bytes decode as v1"), m);
    }

    /// Random bytes fed to the envelope decoder: any outcome but a panic.
    #[test]
    fn random_bytes_never_panic_net(bytes in proptest::collection::vec(0u64..256, 0..64)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = from_bytes::<NetMsg>(&bytes);
        let _ = from_bytes::<SpecOp>(&bytes);
        let _ = from_bytes::<LevelInfo>(&bytes);
    }

    /// Level-directory and wants lists beyond MAX_LEVELS, and vector
    /// clocks beyond MAX_REPLICAS, are rejected before allocating.
    #[test]
    fn oversized_level_and_vc_lists_rejected(extra in 1u64..200) {
        // HelloAck with too many advertised levels.
        let mut buf = vec![0x0C, 2];
        buf.push((MAX_LEVELS as u64 + extra).min(255) as u8);
        let r = from_bytes::<NetMsg>(&buf);
        prop_assert!(
            matches!(r, Err(WireError::TooLarge { .. }) | Err(WireError::Truncated)),
            "oversized directory accepted: {:?}", r
        );
        // SpecGossip with an oversized vector clock.
        let mut buf = vec![0x0F];
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0; 16]); // seq + ts
        buf.extend_from_slice(&((MAX_REPLICAS as u64 + extra) as u32).to_le_bytes());
        let r = from_bytes::<NetMsg>(&buf);
        prop_assert!(
            matches!(r, Err(WireError::TooLarge { .. }) | Err(WireError::Truncated)),
            "oversized vector clock accepted: {:?}", r
        );
    }
}
