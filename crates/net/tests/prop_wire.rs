//! Property tests of every [`Wire`] impl: encode→decode identity over
//! generated values, and rejection (never a panic) of truncated frames
//! and corrupt tag bytes.
//!
//! These properties are the codec's entire contract — a transport that
//! silently misparses one frame corrupts protocol state in ways the
//! consistency oracle can only catch much later, so the codec itself is
//! held to round-trip identity under generation.

use proptest::prelude::*;

use icg_net::wire::{from_bytes, to_bytes, MAX_IDS};
use icg_net::{Reader, Wire, WireError};
use quorumstore::messages::{FailReason, Msg, Phase};
use quorumstore::types::{Key, OpId, ReadKind, Value, Version, Versioned};
use quorumstore::StoreOp;
use simnet::NodeId;

fn arb_key() -> impl Strategy<Value = Key> {
    (0u64..u64::MAX, 0u64..256).prop_map(|(id, ns)| Key { ns: ns as u8, id })
}

fn arb_version() -> impl Strategy<Value = Version> {
    (0u64..u64::MAX, 0u64..1 << 32).prop_map(|(ts, writer)| Version {
        ts,
        writer: writer as u32,
    })
}

fn arb_op_id() -> impl Strategy<Value = OpId> {
    (0u64..1 << 48, 0u64..u64::MAX).prop_map(|(client, seq)| OpId {
        client: NodeId(client as usize),
        seq,
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u64..1 << 32).prop_map(|n| Value::Opaque(n as u32)),
        proptest::collection::vec(0u64..u64::MAX, 0..16).prop_map(Value::Ids),
        (0u64..1 << 32, 0u64..1 << 32).prop_map(|(f, r)| Value::Delta {
            field_len: f as u32,
            record_len: r as u32,
        }),
    ]
}

fn arb_versioned() -> impl Strategy<Value = Versioned> {
    (arb_value(), arb_version()).prop_map(|(value, version)| Versioned { value, version })
}

fn arb_read_kind() -> impl Strategy<Value = ReadKind> {
    prop_oneof![
        (0u64..8).prop_map(|r| ReadKind::Single { r: r as u8 }),
        (0u64..8, any::<bool>()).prop_map(|(r, confirm)| ReadKind::Icg {
            r: r as u8,
            confirm,
        }),
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (arb_op_id(), arb_key(), arb_read_kind()).prop_map(|(op, key, kind)| Msg::ClientRead {
            op,
            key,
            kind
        }),
        (arb_op_id(), arb_key(), arb_value(), 0u64..4).prop_map(|(op, key, value, w)| {
            Msg::ClientWrite {
                op,
                key,
                value,
                w: w as u8,
            }
        }),
        (arb_op_id(), arb_key()).prop_map(|(op, key)| Msg::PeerRead { op, key }),
        (arb_op_id(), arb_versioned()).prop_map(|(op, data)| Msg::PeerReadResp { op, data }),
        (arb_key(), arb_versioned(), arb_op_id(), any::<bool>()).prop_map(
            |(key, data, op, ack)| Msg::PeerWrite {
                key,
                data,
                ack_op: ack.then_some(op),
            }
        ),
        arb_op_id().prop_map(|op| Msg::PeerWriteAck { op }),
        (arb_op_id(), 0u64..3, arb_versioned()).prop_map(|(op, phase, data)| Msg::ReadReply {
            op,
            phase: match phase {
                0 => Phase::Single,
                1 => Phase::Preliminary,
                _ => Phase::Final,
            },
            data,
        }),
        (arb_op_id(), arb_version()).prop_map(|(op, version)| Msg::ReadConfirm { op, version }),
        arb_op_id().prop_map(|op| Msg::WriteReply { op }),
        arb_op_id().prop_map(|op| Msg::OpFailed {
            op,
            reason: FailReason::Timeout,
        }),
    ]
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        arb_key().prop_map(StoreOp::Read),
        (arb_key(), arb_value()).prop_map(|(k, v)| StoreOp::Write(k, v)),
    ]
}

/// Round-trip + truncation + garbage-tag, for one encodable value.
fn codec_contract<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = to_bytes(v);
    // Identity.
    let back: T = from_bytes(&bytes).expect("well-formed encoding decodes");
    prop_assert_eq!(&back, v);
    // Every strict prefix must be rejected as an error, not a panic.
    for cut in 0..bytes.len() {
        prop_assert!(
            from_bytes::<T>(&bytes[..cut]).is_err(),
            "prefix of {} bytes decoded",
            cut
        );
    }
    // Trailing garbage must be rejected (exact-length consumption).
    let mut extended = bytes.clone();
    extended.push(0xAB);
    prop_assert!(from_bytes::<T>(&extended).is_err());
    Ok(())
}

proptest! {
    #[test]
    fn msg_codec_contract(m in arb_msg()) {
        codec_contract(&m)?;
    }

    #[test]
    fn store_op_codec_contract(op in arb_store_op()) {
        codec_contract(&op)?;
    }

    #[test]
    fn versioned_codec_contract(v in arb_versioned()) {
        codec_contract(&v)?;
    }

    #[test]
    fn op_id_and_key_codec_contract(op in arb_op_id(), key in arb_key()) {
        codec_contract(&op)?;
        codec_contract(&key)?;
    }

    /// A corrupt leading tag byte either decodes to a *different* valid
    /// message (tags overlap the value space of other variants) or
    /// errors — it must never panic and never decode to the original.
    #[test]
    fn corrupt_tag_never_panics(m in arb_msg(), tag in 11u64..256) {
        let mut bytes = to_bytes(&m);
        bytes[0] = tag as u8; // 0x0B.. are unassigned Msg tags
        match from_bytes::<Msg>(&bytes) {
            Ok(other) => prop_assert_ne!(other, m),
            Err(e) => {
                let structured = matches!(
                    e,
                    WireError::BadTag { .. }
                        | WireError::Truncated
                        | WireError::TrailingBytes { .. }
                        | WireError::TooLarge { .. }
                );
                prop_assert!(structured, "unexpected decode error {:?}", e);
            }
        }
    }

    /// Random bytes fed to the decoder: any outcome but a panic.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(0u64..256, 0..64)) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = from_bytes::<Msg>(&bytes);
        let _ = from_bytes::<StoreOp>(&bytes);
        let _ = from_bytes::<Versioned>(&bytes);
    }

    /// Length prefixes beyond MAX_IDS are rejected before allocating.
    #[test]
    fn oversized_id_lists_rejected(extra in 1u64..1 << 30) {
        let mut buf = vec![1u8];
        let n = MAX_IDS as u64 + extra;
        buf.extend_from_slice(&(n as u32).to_le_bytes());
        let r = Reader::new(&buf).finish::<Value>();
        let rejected = matches!(r, Err(WireError::TooLarge { .. }) | Err(WireError::Truncated));
        prop_assert!(rejected, "oversized list accepted: {:?}", r);
    }
}
