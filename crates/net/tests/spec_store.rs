//! End-to-end tests of the version-2 spec store: the full incremental
//! refinement *weak → update → causal → strong* on a single
//! Correctable, against a real 3-replica TCP cluster, on both I/O
//! engines — plus the level-directory handshake, custom-level
//! round-tripping, and version-1/version-2 coexistence on one port.

use std::time::Duration;

use correctables::spec::{CtrOp, RegOp};
use correctables::{Client, ConsistencyLevel, Error};
use icg_net::{
    spawn_local_cluster, ReplicaHandle, ServerConfig, SpecOp, SpecTcpConfig, TcpBinding, TcpConfig,
    TcpSpecBinding, Transport,
};
use quorumstore::{Key, StoreOp, Value};

const TRANSPORTS: [Transport; 2] = [Transport::Reactor, Transport::Blocking];

fn cluster(transport: Transport) -> Vec<ReplicaHandle> {
    spawn_local_cluster(3, |id| ServerConfig {
        id,
        transport,
        ..ServerConfig::default()
    })
}

fn connect(cluster: &[ReplicaHandle], client_id: u64) -> TcpSpecBinding {
    TcpSpecBinding::connect(SpecTcpConfig::new(cluster[0].addr(), client_id))
        .expect("connect spec binding")
}

/// Collects the level names of every view an invocation delivered, in
/// delivery order (preliminaries then the final).
fn level_trace(c: &correctables::Correctable<u64>) -> Vec<&'static str> {
    let fin = c
        .wait_final(Duration::from_secs(10))
        .expect("refinement closes");
    let mut names: Vec<&'static str> = c
        .preliminary_views()
        .iter()
        .map(|v| v.level.name())
        .collect();
    names.push(fin.level.name());
    names
}

/// The acceptance scenario: one invocation refines through all four
/// levels on Register *and* Counter, on both transports.
#[test]
fn refinement_runs_weak_update_causal_strong_on_register_and_counter() {
    for (i, transport) in TRANSPORTS.into_iter().enumerate() {
        let replicas = cluster(transport);
        let binding = connect(&replicas, 9000 + i as u64);
        let client = Client::new(binding.clone());

        // Register: a write refines through all four levels, every view
        // agreeing on the written value (no concurrent writers).
        let write = client.invoke(SpecOp::Reg(RegOp::Write(1, 42)));
        assert_eq!(
            level_trace(&write),
            ["weak", "update", "causal", "strong"],
            "{transport:?}: register write must refine through all four levels"
        );
        for v in write.preliminary_views() {
            assert_eq!(v.value, 42, "{transport:?}: register view diverged");
        }

        // A read through the same refinement sees the settled write.
        let read = client.invoke(SpecOp::Reg(RegOp::Read(1)));
        assert_eq!(level_trace(&read), ["weak", "update", "causal", "strong"]);
        let fin = read.final_view().expect("closed above");
        assert_eq!(fin.value, 42, "{transport:?}: strong register read");

        // Counter: same refinement, arithmetic semantics.
        let add = client.invoke(SpecOp::Ctr(CtrOp::Add(5, 7)));
        assert_eq!(
            level_trace(&add),
            ["weak", "update", "causal", "strong"],
            "{transport:?}: counter add must refine through all four levels"
        );
        let get = client.invoke(SpecOp::Ctr(CtrOp::Get(5)));
        assert_eq!(level_trace(&get), ["weak", "update", "causal", "strong"]);
        assert_eq!(get.final_view().expect("closed above").value, 7);

        binding.shutdown();
        for r in &replicas {
            r.shutdown();
        }
    }
}

/// `invoke_at` collapses the refinement to a single level: a weak-only
/// submission closes at Weak without waiting for any coordination, an
/// update-only submission closes at Update without acks.
#[test]
fn single_level_submissions_close_at_that_level() {
    let replicas = cluster(Transport::Reactor);
    let binding = connect(&replicas, 9100);
    let client = Client::new(binding.clone());

    let weak = client.invoke_at(SpecOp::Ctr(CtrOp::Add(1, 1)), ConsistencyLevel::WEAK);
    let v = weak
        .wait_final(Duration::from_secs(5))
        .expect("weak closes");
    assert_eq!(v.level, ConsistencyLevel::WEAK);
    assert!(weak.preliminary_views().is_empty());

    let update = client.invoke_at(SpecOp::Ctr(CtrOp::Add(1, 1)), ConsistencyLevel::UPDATE);
    let v = update
        .wait_final(Duration::from_secs(5))
        .expect("update closes");
    assert_eq!(v.level, ConsistencyLevel::UPDATE);
    assert_eq!(v.value, 2, "update view replays the agreed order");

    binding.shutdown();
    for r in &replicas {
        r.shutdown();
    }
}

/// Sequential counter increments through the strong level observe
/// strictly increasing values — each strong view is stable in the total
/// order before the next submission starts.
#[test]
fn sequential_strong_counter_increments_are_exact() {
    let replicas = cluster(Transport::Reactor);
    let binding = connect(&replicas, 9200);
    let client = Client::new(binding.clone());
    for expect in 1..=5u64 {
        let add = client.invoke(SpecOp::Ctr(CtrOp::Add(3, 1)));
        let fin = add.wait_final(Duration::from_secs(10)).expect("closes");
        assert_eq!(fin.level, ConsistencyLevel::STRONG);
        assert_eq!(fin.value, expect, "strong add #{expect}");
    }
    binding.shutdown();
    for r in &replicas {
        r.shutdown();
    }
}

/// A custom fifth level registered before startup rides the handshake
/// directory to the client with zero changes anywhere in the stack: the
/// client learns it by name and rank, and a submission at it is refused
/// cleanly — by the client-side level arbitration (the binding does not
/// serve it), and by the server with `SpecFailed` when the request is
/// forced onto the wire anyway — never silently downgraded, never a
/// crash.
#[test]
fn custom_level_rides_the_handshake_directory() {
    use icg_net::frame::{read_frame, write_frame};
    use icg_net::NetMsg;
    use std::net::TcpStream;

    let audit = ConsistencyLevel::register("audit-spec-net", 30).expect("register a fifth level");
    let replicas = cluster(Transport::Reactor);
    let binding = connect(&replicas, 9300);
    assert!(
        binding.server_levels().contains(&audit),
        "handshake directory must carry the custom level"
    );
    // Through the stack: the Upcall arbitration refuses the level the
    // binding never offered.
    let client = Client::new(binding.clone());
    let c = client.invoke_at(SpecOp::Reg(RegOp::Read(1)), audit);
    match c.wait_final(Duration::from_secs(5)) {
        Err(Error::UnsupportedLevel(l)) => assert_eq!(l, audit),
        other => panic!("unserved level must fail UnsupportedLevel, got {other:?}"),
    }
    // On the wire: a raw submission at the custom level (and at a wire
    // id nobody registered) draws a clean SpecFailed, not a hang or a
    // torn connection.
    let mut stream = TcpStream::connect(replicas[0].addr()).expect("raw connect");
    let mut scratch = Vec::new();
    for bogus in [audit.wire_id(), 200] {
        write_frame(
            &mut stream,
            &NetMsg::SpecSubmit {
                client: 9301,
                seq: bogus as u64,
                op: SpecOp::Reg(RegOp::Read(1)),
                wants: vec![bogus],
            },
            &mut scratch,
        )
        .expect("raw submit");
        let reply = read_frame::<NetMsg>(&mut stream, &mut scratch)
            .expect("reply frame")
            .expect("reply");
        assert_eq!(
            reply,
            NetMsg::SpecFailed {
                client: 9301,
                seq: bogus as u64
            }
        );
    }
    binding.shutdown();
    for r in &replicas {
        r.shutdown();
    }
}

/// Version-1 and version-2 clients coexist on the same listener: the
/// legacy store binding (bare `Msg` frames, version byte 1) and the
/// spec binding (version-2 envelope) run side by side against one
/// cluster, neither disturbing the other.
#[test]
fn v1_store_client_and_v2_spec_client_share_a_cluster() {
    for (i, transport) in TRANSPORTS.into_iter().enumerate() {
        let replicas = cluster(transport);
        let addrs = replicas.iter().map(|r| r.addr()).collect();

        let mut store_cfg = TcpConfig::new(addrs, 9400 + i as u64);
        store_cfg.transport = transport;
        let store = TcpBinding::connect(store_cfg).expect("connect v1 store binding");
        let spec = connect(&replicas, 9500 + i as u64);

        let store_client = Client::new(store.clone());
        let spec_client = Client::new(spec.clone());

        let w = store_client.invoke_strong(StoreOp::Write(Key::plain(9), Value::Opaque(1)));
        w.wait_final(Duration::from_secs(5)).expect("v1 write");
        let s = spec_client.invoke(SpecOp::Reg(RegOp::Write(9, 2)));
        s.wait_final(Duration::from_secs(10)).expect("v2 write");
        let r = store_client.invoke_strong(StoreOp::Read(Key::plain(9)));
        let view = r.wait_final(Duration::from_secs(5)).expect("v1 read");
        assert_eq!(
            view.value.value,
            Value::Opaque(1),
            "{transport:?}: the stores are distinct — the spec write must not leak"
        );

        store.shutdown();
        spec.shutdown();
        for rep in &replicas {
            rep.shutdown();
        }
    }
}
